#include "src/bpf/jit/jit.h"

#include <chrono>
#include <vector>

#include "src/bpf/ir/ir_map.h"
#include "src/cache_ext/eviction_list.h"
#include "src/fault/fault_injector.h"

namespace cache_ext::bpf::jit {

namespace {

using ir::AluOp;
using ir::Cond;
using ir::CtxField;
using ir::HookCtx;
using ir::Inst;
using ir::IrMap;
using ir::Op;
using ir::Program;
using verifier::Hook;
using verifier::Kfunc;

struct Step;

// The per-invocation execution context: registers live on the caller's
// stack, never in the runtime, so invocations from different threads
// cannot observe each other (satellite of the global-mutex removal).
struct ExecSt {
  std::array<uint64_t, ir::kNumRegs> regs = {};
  CacheExtApi* api = nullptr;
  const HookCtx* hctx = nullptr;
  const Step* steps = nullptr;
};

// Each StepFn executes one pre-decoded instruction and returns the next
// pc. Branches are resolved by returning `target`; everything else
// returns the precomputed `next` (usually pc + 1, but constant folding
// may have skipped an always-resolved null check).
using StepFn = size_t (*)(const Step&, ExecSt&);

struct Step {
  StepFn fn = nullptr;
  uint8_t dst = 0;
  uint8_t src = 0;
  bool bound_is_reg = false;
  IterPlacement on_skip = IterPlacement::kKeepInPlace;
  IterPlacement on_evict = IterPlacement::kKeepInPlace;
  uint32_t next = 0;
  uint32_t target = 0;
  uint32_t word = 0;         // kLoad/kStore: off / 8
  uint32_t max_entries = 0;  // array lookup bound (constant-folded)
  uint32_t words = 0;        // array value stride in u64 words
  uint32_t body_begin = 0;   // loop forms
  uint32_t body_end = 0;
  IrMap* map = nullptr;
  uint64_t* base = nullptr;  // array backing store
  uint64_t imm = 0;          // immediate / folded value pointer
};

inline uint64_t ValueLoad(const uint64_t* p) {
  return std::atomic_ref<const uint64_t>(*p).load(std::memory_order_relaxed);
}

inline void ValueStore(uint64_t* p, uint64_t v) {
  std::atomic_ref<uint64_t>(*p).store(v, std::memory_order_relaxed);
}

// ---- step functions ----------------------------------------------------

size_t StMovImm(const Step& s, ExecSt& st) {
  st.regs[s.dst] = s.imm;
  return s.next;
}

size_t StMovReg(const Step& s, ExecSt& st) {
  st.regs[s.dst] = st.regs[s.src];
  return s.next;
}

template <AluOp op>
size_t StAluImm(const Step& s, ExecSt& st) {
  st.regs[s.dst] = ir::EvalAluT<op>(st.regs[s.dst], s.imm);
  return s.next;
}

template <AluOp op>
size_t StAluReg(const Step& s, ExecSt& st) {
  st.regs[s.dst] = ir::EvalAluT<op>(st.regs[s.dst], st.regs[s.src]);
  return s.next;
}

size_t StJmp(const Step& s, ExecSt&) { return s.target; }

template <Cond cond>
size_t StJmpImm(const Step& s, ExecSt& st) {
  return ir::EvalCondT<cond>(st.regs[s.dst], s.imm) ? s.target : s.next;
}

template <Cond cond>
size_t StJmpReg(const Step& s, ExecSt& st) {
  return ir::EvalCondT<cond>(st.regs[s.dst], st.regs[s.src]) ? s.target
                                                             : s.next;
}

template <CtxField field>
size_t StCtxLoad(const Step& s, ExecSt& st) {
  st.regs[s.dst] = ir::LoadCtxT<field>(*st.hctx);
  return s.next;
}

size_t StHashLookup(const Step& s, ExecSt& st) {
  st.regs[ir::R0] = static_cast<uint64_t>(
      reinterpret_cast<uintptr_t>(s.map->Lookup(st.regs[s.src])));
  return s.next;
}

// Array lookup with the bounds check and address computation inlined —
// no IrMap call at all, just the probe accounting.
size_t StArrayLookup(const Step& s, ExecSt& st) {
  s.map->CountLookup();
  const uint64_t key = st.regs[s.src];
  st.regs[ir::R0] =
      key < s.max_entries
          ? static_cast<uint64_t>(
                reinterpret_cast<uintptr_t>(s.base + key * s.words))
          : 0;
  return s.next;
}

// Verifier-proven constant key: the value pointer was computed at lower
// time (s.imm). `next` may already skip the following null-check branch.
size_t StConstArrayLookup(const Step& s, ExecSt& st) {
  s.map->CountLookup();
  st.regs[ir::R0] = s.imm;
  return s.next;
}

size_t StMapUpdate(const Step& s, ExecSt& st) {
  st.regs[ir::R0] = s.map->Update(st.regs[s.dst], st.regs[s.src]);
  return s.next;
}

size_t StMapDelete(const Step& s, ExecSt& st) {
  st.regs[ir::R0] = s.map->Delete(st.regs[s.dst]);
  return s.next;
}

size_t StLoad(const Step& s, ExecSt& st) {
  const uint64_t* p = reinterpret_cast<const uint64_t*>(
      static_cast<uintptr_t>(st.regs[s.src]));
  st.regs[s.dst] = p == nullptr ? 0 : ValueLoad(&p[s.word]);
  return s.next;
}

size_t StStore(const Step& s, ExecSt& st) {
  uint64_t* p =
      reinterpret_cast<uint64_t*>(static_cast<uintptr_t>(st.regs[s.dst]));
  if (p != nullptr) {
    ValueStore(&p[s.word], st.regs[s.src]);
  }
  return s.next;
}

size_t StStoreImm(const Step& s, ExecSt& st) {
  uint64_t* p =
      reinterpret_cast<uint64_t*>(static_cast<uintptr_t>(st.regs[s.dst]));
  if (p != nullptr) {
    ValueStore(&p[s.word], s.imm);
  }
  return s.next;
}

size_t StFolioKey(const Step& s, ExecSt& st) {
  const Folio* folio =
      reinterpret_cast<const Folio*>(static_cast<uintptr_t>(st.regs[s.src]));
  st.regs[s.dst] = folio == nullptr ? 0 : ir::FolioIdentityKey(folio);
  return s.next;
}

template <Kfunc kfunc>
size_t StCall(const Step& s, ExecSt& st) {
  ir::DoKfuncCallT<kfunc>(*st.api, st.regs.data());
  return s.next;
}

void RunRange(ExecSt& st, size_t begin, size_t end) {
  size_t pc = begin;
  while (pc < end) {
    const Step& s = st.steps[pc];
    pc = s.fn(s, st);
  }
}

template <bool kScore>
size_t StLoop(const Step& s, ExecSt& st) {
  IterOpts opts;
  opts.nr_scan = s.bound_is_reg ? st.regs[s.src] : s.imm;
  opts.on_skip = s.on_skip;
  opts.on_evict = s.on_evict;
  const uint64_t list_id = st.regs[s.dst];
  Status status;
  if constexpr (!kScore) {
    status = st.api->ListIterate(
        list_id, opts, st.hctx->evict, [&s, &st](Folio* folio) {
          st.regs[ir::R1] =
              static_cast<uint64_t>(reinterpret_cast<uintptr_t>(folio));
          RunRange(st, s.body_begin, s.body_end);
          return ir::VerdictFromR0(st.regs[ir::R0]);
        });
  } else {
    status = st.api->ListIterateScore(
        list_id, opts, st.hctx->evict, [&s, &st](Folio* folio) {
          st.regs[ir::R1] =
              static_cast<uint64_t>(reinterpret_cast<uintptr_t>(folio));
          RunRange(st, s.body_begin, s.body_end);
          return static_cast<int64_t>(st.regs[ir::R0]);
        });
  }
  st.regs[ir::R0] = status.ok() ? 0 : 1;
  st.regs[ir::R1] = st.regs[ir::R2] = st.regs[ir::R3] = st.regs[ir::R4] =
      st.regs[ir::R5] = 0;
  return s.body_end + 1;
}

// kLoopEnd / kExit both terminate the enclosing range; `next` is set to
// the program size at lower time.
size_t StEnd(const Step& s, ExecSt&) { return s.next; }

// ---- template-instantiation tables -------------------------------------

StepFn AluImmFn(AluOp op) {
  switch (op) {
    case AluOp::kAdd: return &StAluImm<AluOp::kAdd>;
    case AluOp::kSub: return &StAluImm<AluOp::kSub>;
    case AluOp::kMul: return &StAluImm<AluOp::kMul>;
    case AluOp::kDiv: return &StAluImm<AluOp::kDiv>;
    case AluOp::kMod: return &StAluImm<AluOp::kMod>;
    case AluOp::kAnd: return &StAluImm<AluOp::kAnd>;
    case AluOp::kOr:  return &StAluImm<AluOp::kOr>;
    case AluOp::kXor: return &StAluImm<AluOp::kXor>;
    case AluOp::kLsh: return &StAluImm<AluOp::kLsh>;
    case AluOp::kRsh: return &StAluImm<AluOp::kRsh>;
  }
  return nullptr;
}

StepFn AluRegFn(AluOp op) {
  switch (op) {
    case AluOp::kAdd: return &StAluReg<AluOp::kAdd>;
    case AluOp::kSub: return &StAluReg<AluOp::kSub>;
    case AluOp::kMul: return &StAluReg<AluOp::kMul>;
    case AluOp::kDiv: return &StAluReg<AluOp::kDiv>;
    case AluOp::kMod: return &StAluReg<AluOp::kMod>;
    case AluOp::kAnd: return &StAluReg<AluOp::kAnd>;
    case AluOp::kOr:  return &StAluReg<AluOp::kOr>;
    case AluOp::kXor: return &StAluReg<AluOp::kXor>;
    case AluOp::kLsh: return &StAluReg<AluOp::kLsh>;
    case AluOp::kRsh: return &StAluReg<AluOp::kRsh>;
  }
  return nullptr;
}

StepFn JmpImmFn(Cond cond) {
  switch (cond) {
    case Cond::kEq: return &StJmpImm<Cond::kEq>;
    case Cond::kNe: return &StJmpImm<Cond::kNe>;
    case Cond::kLt: return &StJmpImm<Cond::kLt>;
    case Cond::kLe: return &StJmpImm<Cond::kLe>;
    case Cond::kGt: return &StJmpImm<Cond::kGt>;
    case Cond::kGe: return &StJmpImm<Cond::kGe>;
  }
  return nullptr;
}

StepFn JmpRegFn(Cond cond) {
  switch (cond) {
    case Cond::kEq: return &StJmpReg<Cond::kEq>;
    case Cond::kNe: return &StJmpReg<Cond::kNe>;
    case Cond::kLt: return &StJmpReg<Cond::kLt>;
    case Cond::kLe: return &StJmpReg<Cond::kLe>;
    case Cond::kGt: return &StJmpReg<Cond::kGt>;
    case Cond::kGe: return &StJmpReg<Cond::kGe>;
  }
  return nullptr;
}

StepFn CtxLoadFn(CtxField field) {
  switch (field) {
    case CtxField::kFolio: return &StCtxLoad<CtxField::kFolio>;
    case CtxField::kNrRequested: return &StCtxLoad<CtxField::kNrRequested>;
    case CtxField::kIndex: return &StCtxLoad<CtxField::kIndex>;
    case CtxField::kPrevIndex: return &StCtxLoad<CtxField::kPrevIndex>;
    case CtxField::kDefaultWindow:
      return &StCtxLoad<CtxField::kDefaultWindow>;
    case CtxField::kPid: return &StCtxLoad<CtxField::kPid>;
    case CtxField::kTid: return &StCtxLoad<CtxField::kTid>;
    case CtxField::kIsWrite: return &StCtxLoad<CtxField::kIsWrite>;
    case CtxField::kTier: return &StCtxLoad<CtxField::kTier>;
    case CtxField::kNrPages: return &StCtxLoad<CtxField::kNrPages>;
    case CtxField::kNrDirty: return &StCtxLoad<CtxField::kNrDirty>;
    case CtxField::kForSync: return &StCtxLoad<CtxField::kForSync>;
  }
  return nullptr;
}

// Devirtualized kfunc thunks: resolved here at lower time, checked
// against the verifier's derived allowlist by the caller. The structured
// iterators are only reachable through the loop forms.
StepFn CallFn(Kfunc kfunc) {
  switch (kfunc) {
    case Kfunc::kListCreate: return &StCall<Kfunc::kListCreate>;
    case Kfunc::kListAdd: return &StCall<Kfunc::kListAdd>;
    case Kfunc::kListMove: return &StCall<Kfunc::kListMove>;
    case Kfunc::kListDel: return &StCall<Kfunc::kListDel>;
    case Kfunc::kListSize: return &StCall<Kfunc::kListSize>;
    case Kfunc::kListIdOf: return &StCall<Kfunc::kListIdOf>;
    case Kfunc::kCurrentTask: return &StCall<Kfunc::kCurrentTask>;
    case Kfunc::kListIterate:
    case Kfunc::kListIterateScore:
      return nullptr;
  }
  return nullptr;
}

}  // namespace

// ---- compiled program --------------------------------------------------

struct JitRuntime::CompiledProg {
  enum class Kind : uint8_t {
    kConstReturn,  // straight-line MovImm-R0/Exit program
    kFreqBump,     // LFU folio_accessed: key + hash lookup + counter add
    kListOp,       // FIFO/LRU folio hook: const state slot + list kfunc
    kSteps,        // token-threaded general form
  };

  Kind kind = Kind::kSteps;

  int64_t const_ret = 0;

  IrMap* bump_map = nullptr;
  uint64_t bump_delta = 0;

  Kfunc list_kfunc = Kfunc::kListAdd;
  bool list_tail = false;
  IrMap* state_map = nullptr;
  uint64_t* state_slot = nullptr;

  std::vector<Step> steps;
};

namespace {

using CompiledProg = JitRuntime::CompiledProg;

// ---- per-kind dispatch thunks ------------------------------------------
//
// One static function per lowered form, registered into JitRuntime::fns_
// at lower time. Dispatch is then a single devirtualized indirect call
// from the inline Execute — no kind switch, no out-of-line trampoline.

int64_t RunConstReturn(void* ctx, CacheExtApi&, const HookCtx&) {
  return static_cast<const CompiledProg*>(ctx)->const_ret;
}

int64_t RunFreqBump(void* ctx, CacheExtApi&, const HookCtx& hctx) {
  // ctx_load folio; folio_key; map_lookup; null check; load/add/store —
  // fused. The bump is a relaxed load + relaxed store, the exact
  // semantics of the kLoad/kAluImm/kStore sequence it replaces (not a
  // stronger atomic RMW); R0 leaves holding the value pointer, exactly
  // as the instruction sequence would.
  const auto* prog = static_cast<const CompiledProg*>(ctx);
  const uint64_t key =
      hctx.folio == nullptr ? 0 : ir::FolioIdentityKey(hctx.folio);
  uint64_t* value = prog->bump_map->Lookup(key);
  if (value == nullptr) {
    return 0;
  }
  ValueStore(&value[0], ValueLoad(&value[0]) + prog->bump_delta);
  return static_cast<int64_t>(reinterpret_cast<uintptr_t>(value));
}

int64_t RunListOp(void* ctx, CacheExtApi& api, const HookCtx& hctx) {
  // Const-folded state-slot lookup (probe still counted) + one
  // devirtualized list kfunc on the hook's folio.
  const auto* prog = static_cast<const CompiledProg*>(ctx);
  prog->state_map->CountLookup();
  const uint64_t list_id = ValueLoad(&prog->state_slot[0]);
  const Status st =
      prog->list_kfunc == Kfunc::kListAdd
          ? api.ListAdd(list_id, hctx.folio, prog->list_tail)
          : api.ListMove(list_id, hctx.folio, prog->list_tail);
  return st.ok() ? 0 : 1;
}

int64_t RunSteps(void* ctx, CacheExtApi& api, const HookCtx& hctx) {
  const auto* prog = static_cast<const CompiledProg*>(ctx);
  ExecSt st;
  st.api = &api;
  st.hctx = &hctx;
  st.steps = prog->steps.data();
  size_t pc = 0;
  const size_t n = prog->steps.size();
  while (pc < n) {
    const Step& s = st.steps[pc];
    pc = s.fn(s, st);
  }
  return static_cast<int64_t>(st.regs[ir::R0]);
}

JitRuntime::HookFn ThunkFor(CompiledProg::Kind kind) {
  switch (kind) {
    case CompiledProg::Kind::kConstReturn: return &RunConstReturn;
    case CompiledProg::Kind::kFreqBump: return &RunFreqBump;
    case CompiledProg::Kind::kListOp: return &RunListOp;
    case CompiledProg::Kind::kSteps: return &RunSteps;
  }
  return nullptr;
}

// ---- whole-shape matchers ----------------------------------------------

// [MovImm R0, k]* ending in kExit with no other ops: constant return.
// Covers ir_fifo's folio_accessed ([Exit] -> 0) and any pure-verdict hook.
std::unique_ptr<CompiledProg> MatchConstReturn(const Program& prog) {
  int64_t r0 = 0;
  for (const Inst& ins : prog) {
    if (ins.op == Op::kMovImm && ins.dst == ir::R0) {
      r0 = ins.imm;
      continue;
    }
    if (ins.op == Op::kExit) {
      auto out = std::make_unique<CompiledProg>();
      out->kind = CompiledProg::Kind::kConstReturn;
      out->const_ret = r0;
      return out;
    }
    return nullptr;
  }
  return nullptr;
}

// ir_lfu folio_accessed:
//   ctx_load rf, folio / folio_key rk, rf / map_lookup hash[rk] /
//   jmp_imm ne r0, 0 -> L / exit / L: load rv, r0[0] / alu_imm add rv, d /
//   store r0[0], rv / exit
std::unique_ptr<CompiledProg> MatchFreqBump(const Program& prog,
                                            const ir::IrRuntime& interp) {
  if (prog.size() != 9) {
    return nullptr;
  }
  const Inst& ld = prog[0];
  const Inst& key = prog[1];
  const Inst& lku = prog[2];
  const Inst& chk = prog[3];
  const Inst& miss = prog[4];
  const Inst& load = prog[5];
  const Inst& add = prog[6];
  const Inst& store = prog[7];
  const Inst& done = prog[8];
  if (ld.op != Op::kCtxLoad || ld.ctx != CtxField::kFolio) return nullptr;
  if (key.op != Op::kFolioKey || key.src != ld.dst) return nullptr;
  if (lku.op != Op::kMapLookup || lku.src != key.dst ||
      lku.map >= interp.nr_maps() ||
      interp.map(lku.map)->decl().kind != ir::IrMapKind::kHash) {
    return nullptr;
  }
  if (chk.op != Op::kJmpImm || chk.cond != Cond::kNe || chk.dst != ir::R0 ||
      chk.imm != 0 || chk.target != 5) {
    return nullptr;
  }
  if (miss.op != Op::kExit) return nullptr;
  if (load.op != Op::kLoad || load.src != ir::R0 || load.off != 0) {
    return nullptr;
  }
  if (add.op != Op::kAluImm || add.alu != AluOp::kAdd ||
      add.dst != load.dst) {
    return nullptr;
  }
  if (store.op != Op::kStore || store.dst != ir::R0 || store.off != 0 ||
      store.src != add.dst) {
    return nullptr;
  }
  if (done.op != Op::kExit) return nullptr;
  auto out = std::make_unique<CompiledProg>();
  out->kind = CompiledProg::Kind::kFreqBump;
  out->bump_map = interp.map(lku.map);
  out->bump_delta = static_cast<uint64_t>(add.imm);
  return out;
}

// ir_fifo/ir_lru folio hooks (ListOpProgram):
//   mov_imm rk, k / map_lookup array[rk] / jmp_imm ne r0, 0 -> L / exit /
//   L: load r1, r0[0] / ctx_load r2, folio / mov_imm r3, tail /
//   call list_add|list_move / exit
std::unique_ptr<CompiledProg> MatchListOp(const Program& prog,
                                          const ir::IrRuntime& interp) {
  if (prog.size() != 9) {
    return nullptr;
  }
  const Inst& key = prog[0];
  const Inst& lku = prog[1];
  const Inst& chk = prog[2];
  const Inst& miss = prog[3];
  const Inst& load = prog[4];
  const Inst& folio = prog[5];
  const Inst& tail = prog[6];
  const Inst& call = prog[7];
  const Inst& done = prog[8];
  if (key.op != Op::kMovImm || key.imm < 0) return nullptr;
  if (lku.op != Op::kMapLookup || lku.src != key.dst ||
      lku.map >= interp.nr_maps()) {
    return nullptr;
  }
  IrMap* map = interp.map(lku.map);
  if (map->decl().kind != ir::IrMapKind::kArray ||
      static_cast<uint64_t>(key.imm) >= map->decl().max_entries) {
    return nullptr;
  }
  if (chk.op != Op::kJmpImm || chk.cond != Cond::kNe || chk.dst != ir::R0 ||
      chk.imm != 0 || chk.target != 4) {
    return nullptr;
  }
  if (miss.op != Op::kExit) return nullptr;
  if (load.op != Op::kLoad || load.dst != ir::R1 || load.src != ir::R0 ||
      load.off != 0) {
    return nullptr;
  }
  if (folio.op != Op::kCtxLoad || folio.dst != ir::R2 ||
      folio.ctx != CtxField::kFolio) {
    return nullptr;
  }
  if (tail.op != Op::kMovImm || tail.dst != ir::R3) return nullptr;
  if (call.op != Op::kCall || (call.kfunc != Kfunc::kListAdd &&
                               call.kfunc != Kfunc::kListMove)) {
    return nullptr;
  }
  if (done.op != Op::kExit) return nullptr;
  auto out = std::make_unique<CompiledProg>();
  out->kind = CompiledProg::Kind::kListOp;
  out->list_kfunc = call.kfunc;
  out->list_tail = tail.imm != 0;
  out->state_map = map;
  out->state_slot =
      map->ArrayBase() + static_cast<uint64_t>(key.imm) * map->words();
  return out;
}

// ---- general lowering --------------------------------------------------

std::unique_ptr<CompiledProg> LowerSteps(const Program& prog,
                                         const ir::IrRuntime& interp,
                                         const verifier::HookSpec& spec,
                                         const verifier::HookFacts& facts) {
  const size_t n = prog.size();
  auto out = std::make_unique<CompiledProg>();
  out->kind = CompiledProg::Kind::kSteps;
  out->steps.resize(n);
  for (size_t pc = 0; pc < n; ++pc) {
    const Inst& ins = prog[pc];
    Step& s = out->steps[pc];
    s.dst = ins.dst;
    s.src = ins.src;
    s.next = static_cast<uint32_t>(pc + 1);
    s.target = static_cast<uint32_t>(ins.target);
    s.imm = static_cast<uint64_t>(ins.imm);
    s.word = static_cast<uint32_t>(ins.off / 8);
    switch (ins.op) {
      case Op::kMovImm: s.fn = &StMovImm; break;
      case Op::kMovReg: s.fn = &StMovReg; break;
      case Op::kAluImm: s.fn = AluImmFn(ins.alu); break;
      case Op::kAluReg: s.fn = AluRegFn(ins.alu); break;
      case Op::kJmp:    s.fn = &StJmp; break;
      case Op::kJmpImm: s.fn = JmpImmFn(ins.cond); break;
      case Op::kJmpReg: s.fn = JmpRegFn(ins.cond); break;
      case Op::kCtxLoad: s.fn = CtxLoadFn(ins.ctx); break;
      case Op::kMapLookup: {
        if (ins.map >= interp.nr_maps()) {
          return nullptr;
        }
        IrMap* map = interp.map(ins.map);
        s.map = map;
        if (map->decl().kind != ir::IrMapKind::kArray) {
          s.fn = &StHashLookup;
          break;
        }
        const int64_t konst = pc < facts.const_lookup_key.size()
                                  ? facts.const_lookup_key[pc]
                                  : -1;
        if (konst >= 0 &&
            static_cast<uint64_t>(konst) < map->decl().max_entries) {
          // map_gen_lookup analogue: fold the proven-constant key to a
          // direct value pointer...
          s.fn = &StConstArrayLookup;
          s.imm = static_cast<uint64_t>(reinterpret_cast<uintptr_t>(
              map->ArrayBase() +
              static_cast<uint64_t>(konst) * map->words()));
          // ...and resolve the mandated null-check branch now: the folded
          // pointer is never null, so an immediately following
          // `jmp_imm {ne,eq} r0, 0` has a statically known direction.
          if (pc + 1 < n) {
            const Inst& nx = prog[pc + 1];
            if (nx.op == Op::kJmpImm && nx.dst == ir::R0 && nx.imm == 0) {
              if (nx.cond == Cond::kNe) {
                s.next = static_cast<uint32_t>(nx.target);
              } else if (nx.cond == Cond::kEq) {
                s.next = static_cast<uint32_t>(pc + 2);
              }
            }
          }
          break;
        }
        s.fn = &StArrayLookup;
        s.base = map->ArrayBase();
        s.max_entries = map->decl().max_entries;
        s.words = static_cast<uint32_t>(map->words());
        break;
      }
      case Op::kMapUpdate:
      case Op::kMapDelete:
        if (ins.map >= interp.nr_maps()) {
          return nullptr;
        }
        s.map = interp.map(ins.map);
        s.fn = ins.op == Op::kMapUpdate ? &StMapUpdate : &StMapDelete;
        break;
      case Op::kLoad:  s.fn = &StLoad; break;
      case Op::kStore: s.fn = &StStore; break;
      case Op::kStoreImm: s.fn = &StStoreImm; break;
      case Op::kFolioKey: s.fn = &StFolioKey; break;
      case Op::kCall:
        // Devirtualize against the verifier's derived allowlist — a call
        // outside it means the facts and the program disagree, so refuse
        // to lower (the interpreter remains, and the loader's cross-check
        // will flag the policy).
        if (!spec.kfuncs.Contains(ins.kfunc)) {
          return nullptr;
        }
        s.fn = CallFn(ins.kfunc);
        break;
      case Op::kLoopIterate:
      case Op::kLoopIterateScore:
        s.bound_is_reg = ins.bound_is_reg;
        s.on_skip = ir::ToPlacement(ins.on_skip);
        s.on_evict = ir::ToPlacement(ins.on_evict);
        s.body_begin = static_cast<uint32_t>(pc + 1);
        s.body_end = static_cast<uint32_t>(ins.target);
        s.fn = ins.op == Op::kLoopIterate ? &StLoop<false> : &StLoop<true>;
        break;
      case Op::kLoopEnd:
      case Op::kExit:
        s.next = static_cast<uint32_t>(n);
        s.fn = &StEnd;
        break;
    }
    if (s.fn == nullptr) {
      return nullptr;
    }
  }
  return out;
}

std::unique_ptr<CompiledProg> Lower(const Program& prog,
                                    const ir::IrRuntime& interp,
                                    const verifier::HookSpec& spec,
                                    const verifier::HookFacts& facts) {
  if (auto p = MatchConstReturn(prog)) return p;
  if (auto p = MatchFreqBump(prog, interp)) return p;
  if (auto p = MatchListOp(prog, interp)) return p;
  return LowerSteps(prog, interp, spec, facts);
}

}  // namespace

// ---- JitRuntime --------------------------------------------------------

JitRuntime::JitRuntime(std::shared_ptr<ir::IrRuntime> interp,
                       const verifier::IrAnalysis& analysis)
    : interp_(std::move(interp)) {
  const auto start = std::chrono::steady_clock::now();
  const ir::IrPolicy& policy = interp_->policy();
  for (size_t i = 0; i < verifier::kNumHooks; ++i) {
    const Hook hook = static_cast<Hook>(i);
    if (!policy.HookPresent(hook)) {
      continue;
    }
    if (fault::InjectFault(fault::points::kJitCompileFail)) {
      continue;  // this hook stays interpreted; dispatch still works
    }
    progs_[i] = Lower(policy.hook(hook), *interp_, analysis.spec.hook(hook),
                      analysis.facts[i]);
    if (progs_[i] != nullptr) {
      ++compiles_;
      if (progs_[i]->kind == CompiledProg::Kind::kConstReturn) {
        const_mask_ |= 1u << i;
        const_ret_[i] = progs_[i]->const_ret;
      } else {
        fns_[i] = ThunkFor(progs_[i]->kind);
        fctx_[i] = progs_[i].get();
      }
    }
  }
  compile_ns_ = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

JitRuntime::~JitRuntime() = default;

int64_t JitRuntime::Fallback(Hook hook, CacheExtApi& api,
                             const ir::HookCtx& hctx) {
  if (!interp_->policy().HookPresent(hook)) {
    return 0;
  }
  interp_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  return interp_->Execute(hook, api, hctx);
}

}  // namespace cache_ext::bpf::jit
