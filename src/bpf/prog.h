// Program run guards: the runtime half of eBPF verification.
//
// A real verifier proves termination and bounded resource use statically;
// C++ callables can't be verified, so the framework enforces the same
// properties dynamically: every policy program runs under a RunContext with
// a helper-call budget, and kfuncs (the eviction-list API) charge against
// it. A program that exceeds its budget is aborted — its remaining kfunc
// calls fail — and the framework counts a violation, feeding the watchdog
// that unloads misbehaving policies (§4.4).

#ifndef SRC_BPF_PROG_H_
#define SRC_BPF_PROG_H_

#include <cstdint>

namespace cache_ext::bpf {

class RunContext {
 public:
  explicit RunContext(uint64_t helper_budget);
  ~RunContext();
  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  // The innermost active context on this thread, or nullptr when no policy
  // program is running (kernel-side calls are unrestricted).
  static RunContext* Current();

  // Charge one helper/kfunc call. Returns false once the budget is
  // exhausted; the context is then marked aborted.
  bool CountHelperCall();

  bool aborted() const { return aborted_; }
  uint64_t helper_calls() const { return helper_calls_; }

 private:
  RunContext* parent_;
  uint64_t budget_;
  uint64_t helper_calls_ = 0;
  bool aborted_ = false;
};

// Convenience used by kfunc implementations: charge against the current
// context if there is one. Returns false when the calling program has been
// aborted (the kfunc should fail).
inline bool ChargeHelperCall() {
  RunContext* ctx = RunContext::Current();
  return ctx == nullptr || ctx->CountHelperCall();
}

}  // namespace cache_ext::bpf

#endif  // SRC_BPF_PROG_H_
