#include "src/bpf/ir/builder.h"

#include "src/util/logging.h"

namespace cache_ext::bpf::ir {

ProgramBuilder::Label ProgramBuilder::NewLabel() {
  labels_.push_back(-1);
  return labels_.size() - 1;
}

void ProgramBuilder::Bind(Label label) {
  CHECK(label < labels_.size());
  CHECK(labels_[label] == -1);  // a label binds exactly once
  labels_[label] = static_cast<int64_t>(insns_.size());
}

ProgramBuilder& ProgramBuilder::Push(Inst inst) {
  insns_.push_back(inst);
  return *this;
}

ProgramBuilder& ProgramBuilder::MovImm(Reg dst, int64_t imm) {
  Inst i;
  i.op = Op::kMovImm;
  i.dst = dst;
  i.imm = imm;
  return Push(i);
}

ProgramBuilder& ProgramBuilder::MovReg(Reg dst, Reg src) {
  Inst i;
  i.op = Op::kMovReg;
  i.dst = dst;
  i.src = src;
  return Push(i);
}

ProgramBuilder& ProgramBuilder::Alu(AluOp op, Reg dst, int64_t imm) {
  Inst i;
  i.op = Op::kAluImm;
  i.alu = op;
  i.dst = dst;
  i.imm = imm;
  return Push(i);
}

ProgramBuilder& ProgramBuilder::AluReg(AluOp op, Reg dst, Reg src) {
  Inst i;
  i.op = Op::kAluReg;
  i.alu = op;
  i.dst = dst;
  i.src = src;
  return Push(i);
}

ProgramBuilder& ProgramBuilder::Jmp(Label target) {
  CHECK(target < labels_.size());
  Inst i;
  i.op = Op::kJmp;
  i.target = static_cast<int32_t>(target);
  pending_.push_back(insns_.size());
  return Push(i);
}

ProgramBuilder& ProgramBuilder::JmpImm(Cond cond, Reg reg, int64_t imm,
                                       Label target) {
  CHECK(target < labels_.size());
  Inst i;
  i.op = Op::kJmpImm;
  i.cond = cond;
  i.dst = reg;
  i.imm = imm;
  i.target = static_cast<int32_t>(target);
  pending_.push_back(insns_.size());
  return Push(i);
}

ProgramBuilder& ProgramBuilder::JmpReg(Cond cond, Reg lhs, Reg rhs,
                                       Label target) {
  CHECK(target < labels_.size());
  Inst i;
  i.op = Op::kJmpReg;
  i.cond = cond;
  i.dst = lhs;
  i.src = rhs;
  i.target = static_cast<int32_t>(target);
  pending_.push_back(insns_.size());
  return Push(i);
}

ProgramBuilder& ProgramBuilder::CtxLoad(Reg dst, CtxField field) {
  Inst i;
  i.op = Op::kCtxLoad;
  i.dst = dst;
  i.ctx = field;
  return Push(i);
}

ProgramBuilder& ProgramBuilder::MapLookup(uint32_t map, Reg key) {
  Inst i;
  i.op = Op::kMapLookup;
  i.map = map;
  i.src = key;
  return Push(i);
}

ProgramBuilder& ProgramBuilder::MapUpdate(uint32_t map, Reg key, Reg value) {
  Inst i;
  i.op = Op::kMapUpdate;
  i.map = map;
  i.dst = key;
  i.src = value;
  return Push(i);
}

ProgramBuilder& ProgramBuilder::MapDelete(uint32_t map, Reg key) {
  Inst i;
  i.op = Op::kMapDelete;
  i.map = map;
  i.dst = key;
  return Push(i);
}

ProgramBuilder& ProgramBuilder::Load(Reg dst, Reg src, int32_t off) {
  Inst i;
  i.op = Op::kLoad;
  i.dst = dst;
  i.src = src;
  i.off = off;
  return Push(i);
}

ProgramBuilder& ProgramBuilder::Store(Reg dst, int32_t off, Reg src) {
  Inst i;
  i.op = Op::kStore;
  i.dst = dst;
  i.src = src;
  i.off = off;
  return Push(i);
}

ProgramBuilder& ProgramBuilder::StoreImm(Reg dst, int32_t off, int64_t imm) {
  Inst i;
  i.op = Op::kStoreImm;
  i.dst = dst;
  i.off = off;
  i.imm = imm;
  return Push(i);
}

ProgramBuilder& ProgramBuilder::FolioKey(Reg dst, Reg src) {
  Inst i;
  i.op = Op::kFolioKey;
  i.dst = dst;
  i.src = src;
  return Push(i);
}

ProgramBuilder& ProgramBuilder::Call(verifier::Kfunc kfunc) {
  Inst i;
  i.op = Op::kCall;
  i.kfunc = kfunc;
  return Push(i);
}

ProgramBuilder& ProgramBuilder::Exit() {
  Inst i;
  i.op = Op::kExit;
  return Push(i);
}

ProgramBuilder& ProgramBuilder::BeginLoop(Op op, Reg list, bool bound_is_reg,
                                          Reg bound_reg, int64_t bound_imm,
                                          LoopOpts opts) {
  Inst i;
  i.op = op;
  i.dst = list;
  i.bound_is_reg = bound_is_reg;
  i.src = bound_reg;
  i.imm = bound_imm;
  i.on_skip = opts.on_skip;
  i.on_evict = opts.on_evict;
  open_loops_.push_back(insns_.size());
  return Push(i);
}

ProgramBuilder& ProgramBuilder::BeginIterate(Reg list, int64_t bound_imm,
                                             LoopOpts opts) {
  return BeginLoop(Op::kLoopIterate, list, false, R0, bound_imm, opts);
}

ProgramBuilder& ProgramBuilder::BeginIterateScore(Reg list, int64_t bound_imm,
                                                  LoopOpts opts) {
  return BeginLoop(Op::kLoopIterateScore, list, false, R0, bound_imm, opts);
}

ProgramBuilder& ProgramBuilder::BeginIterateReg(Reg list, Reg bound,
                                                LoopOpts opts) {
  return BeginLoop(Op::kLoopIterate, list, true, bound, 0, opts);
}

ProgramBuilder& ProgramBuilder::BeginIterateScoreReg(Reg list, Reg bound,
                                                     LoopOpts opts) {
  return BeginLoop(Op::kLoopIterateScore, list, true, bound, 0, opts);
}

ProgramBuilder& ProgramBuilder::EndIterate() {
  CHECK(!open_loops_.empty());  // EndIterate without BeginIterate
  const size_t header = open_loops_.back();
  open_loops_.pop_back();
  insns_[header].target = static_cast<int32_t>(insns_.size());
  Inst i;
  i.op = Op::kLoopEnd;
  return Push(i);
}

Program ProgramBuilder::Build() {
  CHECK(open_loops_.empty());  // unclosed loop
  for (const size_t pc : pending_) {
    const auto label = static_cast<size_t>(insns_[pc].target);
    CHECK(label < labels_.size());
    CHECK(labels_[label] != -1);  // jump to a label that was never bound
    insns_[pc].target = static_cast<int32_t>(labels_[label]);
  }
  Program out;
  out.swap(insns_);
  labels_.clear();
  pending_.clear();
  return out;
}

}  // namespace cache_ext::bpf::ir
