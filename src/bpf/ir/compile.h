// CompileToOps: verify an IrPolicy and lower it into a loadable
// cache_ext::Ops whose ProgramSpec is the verifier's DERIVED spec — the
// hand-declared numbers the std::function path requires simply do not
// exist on this path. A policy the static analysis rejects never becomes
// an Ops at all; the returned VerifierLog findings say why.

#ifndef SRC_BPF_IR_COMPILE_H_
#define SRC_BPF_IR_COMPILE_H_

#include "src/bpf/ir/ir.h"
#include "src/bpf/verifier/log.h"
#include "src/cache_ext/ops.h"
#include "src/util/status.h"

namespace cache_ext::bpf::ir {

// Runs the IR static analysis (AnalyzeIrPolicy) and, on success, builds the
// Ops: interpreter-backed hook closures, the derived ProgramSpec, the
// policy's helper budget and cost declaration, and ops.ir pointing at the
// verified program (so CacheExtLoader re-derives and cross-checks the spec
// at attach time). `log` (optional) receives the analysis findings either
// way.
Expected<cache_ext::Ops> CompileToOps(const IrPolicy& policy,
                                      verifier::VerifierLog* log = nullptr);

}  // namespace cache_ext::bpf::ir

#endif  // SRC_BPF_IR_COMPILE_H_
