// CompileToOps: verify an IrPolicy and lower it into a loadable
// cache_ext::Ops whose ProgramSpec is the verifier's DERIVED spec — the
// hand-declared numbers the std::function path requires simply do not
// exist on this path. A policy the static analysis rejects never becomes
// an Ops at all; the returned VerifierLog findings say why.
//
// Verified programs run through one of two backends:
//  - kJit (default): native hook closures lowered by src/bpf/jit/ —
//    whole-shape specializations and token-threaded steps, no dispatch
//    lock (the bpf_int_jit_compile analogue).
//  - kInterp: the reference interpreter (interp.h) — kept as the
//    differential-testing oracle and as the automatic fallback for any
//    hook the JIT declines (BPF_JIT_ALWAYS_ON stays a choice, not a
//    correctness requirement).
// Both execute the shared semantic kernel (exec.h) and charge the same
// ChargeHelperCall accounting, so budgets/breakers/quarantine behave
// identically whichever backend runs.

#ifndef SRC_BPF_IR_COMPILE_H_
#define SRC_BPF_IR_COMPILE_H_

#include <optional>

#include "src/bpf/ir/ir.h"
#include "src/bpf/verifier/log.h"
#include "src/cache_ext/ops.h"
#include "src/util/status.h"

namespace cache_ext::bpf::ir {

enum class Backend : uint8_t {
  kInterp = 0,
  kJit,
};

// Process-wide default backend for CompileToOps (kJit unless overridden).
// Benches and tests flip this for ablations (--ir-backend=interp).
Backend DefaultBackend();
void SetDefaultBackend(Backend backend);

struct CompileOptions {
  // Backend for this compilation; unset uses DefaultBackend().
  std::optional<Backend> backend;
};

// Runs the IR static analysis (AnalyzeIrPolicy) and, on success, builds the
// Ops: backend-dispatched hook closures, the derived ProgramSpec, the
// policy's helper budget and cost declaration, and ops.ir pointing at the
// verified program (so CacheExtLoader re-derives and cross-checks the spec
// at attach time). `log` (optional) receives the analysis findings either
// way.
Expected<cache_ext::Ops> CompileToOps(const IrPolicy& policy,
                                      verifier::VerifierLog* log = nullptr,
                                      const CompileOptions& opts = {});

}  // namespace cache_ext::bpf::ir

#endif  // SRC_BPF_IR_COMPILE_H_
