#include "src/bpf/ir/compile.h"

#include <atomic>
#include <memory>
#include <utility>

#include "src/bpf/ir/interp.h"
#include "src/bpf/jit/jit.h"
#include "src/bpf/verifier/ir_verifier.h"

namespace cache_ext::bpf::ir {

using verifier::Hook;

namespace {

std::atomic<Backend> g_default_backend{Backend::kJit};

// The closures' dispatch handle: the interpreter runtime always exists
// (it owns the maps and is the fallback); the JIT runtime wraps it when
// the jit backend is selected. One predicted branch per dispatch.
struct ExecHandle {
  std::shared_ptr<IrRuntime> interp;
  std::shared_ptr<jit::JitRuntime> jit;

  int64_t Run(Hook hook, CacheExtApi& api, const HookCtx& hctx) const {
    return jit != nullptr ? jit->Execute(hook, api, hctx)
                          : interp->Execute(hook, api, hctx);
  }
};

}  // namespace

Backend DefaultBackend() {
  return g_default_backend.load(std::memory_order_relaxed);
}

void SetDefaultBackend(Backend backend) {
  g_default_backend.store(backend, std::memory_order_relaxed);
}

Expected<cache_ext::Ops> CompileToOps(const IrPolicy& policy,
                                      verifier::VerifierLog* log,
                                      const CompileOptions& opts) {
  verifier::VerifierLog local_log;
  verifier::VerifierLog* out = log != nullptr ? log : &local_log;
  auto analysis = verifier::AnalyzeIrPolicy(policy, out);
  if (!analysis.ok()) {
    return analysis.status();
  }

  ExecHandle exec;
  exec.interp = std::make_shared<IrRuntime>(policy);
  const Backend backend = opts.backend.value_or(DefaultBackend());
  if (backend == Backend::kJit) {
    exec.jit = std::make_shared<jit::JitRuntime>(exec.interp, *analysis);
  }
  const IrPolicy& prog = exec.interp->policy();

  cache_ext::Ops ops;
  ops.name = prog.name;
  ops.helper_budget = prog.helper_budget;
  ops.program_cost_ns = prog.program_cost_ns;
  ops.spec = std::move(analysis->spec);
  // Expose the verified program so the loader's pass 0 can re-derive the
  // spec and reject any tampering between compile and attach.
  ops.ir = std::shared_ptr<const IrPolicy>(exec.interp,
                                           &exec.interp->policy());

  ops.policy_init = [exec](CacheExtApi& api, MemCgroup*) -> int32_t {
    return static_cast<int32_t>(
        exec.Run(Hook::kPolicyInit, api, HookCtx{}));
  };
  ops.evict_folios = [exec](CacheExtApi& api, EvictionCtx* ctx,
                            MemCgroup*) {
    HookCtx hctx;
    hctx.evict = ctx;
    exec.Run(Hook::kEvictFolios, api, hctx);
  };
  auto folio_hook = [exec](Hook hook) {
    return [exec, hook](CacheExtApi& api, Folio* folio) {
      HookCtx hctx;
      hctx.folio = folio;
      exec.Run(hook, api, hctx);
    };
  };
  ops.folio_added = folio_hook(Hook::kFolioAdded);
  ops.folio_accessed = folio_hook(Hook::kFolioAccessed);
  ops.folio_removed = folio_hook(Hook::kFolioRemoved);

  if (prog.HookPresent(Hook::kAdmitFolio)) {
    ops.admit_folio = [exec](CacheExtApi& api,
                             const AdmissionCtx& ctx) -> bool {
      HookCtx hctx;
      hctx.admit = &ctx;
      return exec.Run(Hook::kAdmitFolio, api, hctx) != 0;
    };
  }
  if (prog.HookPresent(Hook::kFolioRefaulted)) {
    ops.folio_refaulted = [exec](CacheExtApi& api, Folio* folio,
                                 uint32_t tier) {
      HookCtx hctx;
      hctx.folio = folio;
      hctx.tier = tier;
      exec.Run(Hook::kFolioRefaulted, api, hctx);
    };
  }
  if (prog.HookPresent(Hook::kRequestPrefetch)) {
    ops.request_prefetch = [exec](CacheExtApi& api,
                                  const PrefetchCtx& ctx) -> int64_t {
      HookCtx hctx;
      hctx.prefetch = &ctx;
      return exec.Run(Hook::kRequestPrefetch, api, hctx);
    };
  }
  if (prog.HookPresent(Hook::kReadahead)) {
    ops.readahead = [exec](CacheExtApi& api,
                           const ReadaheadCtx& ctx) -> int64_t {
      HookCtx hctx;
      hctx.readahead = &ctx;
      return exec.Run(Hook::kReadahead, api, hctx);
    };
  }
  if (prog.HookPresent(Hook::kAdmitOrder)) {
    ops.admit_order = [exec](CacheExtApi& api,
                             const AdmitOrderCtx& ctx) -> uint32_t {
      HookCtx hctx;
      hctx.admit_order = &ctx;
      return static_cast<uint32_t>(exec.Run(Hook::kAdmitOrder, api, hctx));
    };
  }
  if (prog.HookPresent(Hook::kShouldWriteback)) {
    ops.should_writeback = [exec](CacheExtApi& api,
                                  const WritebackCtx& ctx) -> bool {
      HookCtx hctx;
      hctx.writeback = &ctx;
      return exec.Run(Hook::kShouldWriteback, api, hctx) != 0;
    };
  }
  if (prog.HookPresent(Hook::kWritebackOrder)) {
    ops.writeback_order = [exec](CacheExtApi& api,
                                 const WritebackCtx& ctx) -> int64_t {
      HookCtx hctx;
      hctx.writeback = &ctx;
      return exec.Run(Hook::kWritebackOrder, api, hctx);
    };
  }
  ops.collect_counters = [exec](PolicyRuntimeCounters* counters) {
    counters->map_lookups += exec.interp->MapLookups();
    if (exec.jit != nullptr) {
      counters->ir_jit_compiles += exec.jit->compiles();
      counters->ir_jit_ns += exec.jit->compile_ns();
      counters->ir_interp_fallbacks += exec.jit->interp_fallbacks();
    }
  };
  return ops;
}

}  // namespace cache_ext::bpf::ir
