#include "src/bpf/ir/compile.h"

#include <memory>
#include <utility>

#include "src/bpf/ir/interp.h"
#include "src/bpf/verifier/ir_verifier.h"

namespace cache_ext::bpf::ir {

using verifier::Hook;

Expected<cache_ext::Ops> CompileToOps(const IrPolicy& policy,
                                      verifier::VerifierLog* log) {
  verifier::VerifierLog local_log;
  verifier::VerifierLog* out = log != nullptr ? log : &local_log;
  auto analysis = verifier::AnalyzeIrPolicy(policy, out);
  if (!analysis.ok()) {
    return analysis.status();
  }

  auto runtime = std::make_shared<IrRuntime>(policy);
  const IrPolicy& prog = runtime->policy();

  cache_ext::Ops ops;
  ops.name = prog.name;
  ops.helper_budget = prog.helper_budget;
  ops.program_cost_ns = prog.program_cost_ns;
  ops.spec = std::move(analysis->spec);
  // Expose the verified program so the loader's pass 0 can re-derive the
  // spec and reject any tampering between compile and attach.
  ops.ir = std::shared_ptr<const IrPolicy>(runtime, &runtime->policy());

  ops.policy_init = [runtime](CacheExtApi& api, MemCgroup*) -> int32_t {
    return static_cast<int32_t>(
        runtime->Execute(Hook::kPolicyInit, api, HookCtx{}));
  };
  ops.evict_folios = [runtime](CacheExtApi& api, EvictionCtx* ctx,
                               MemCgroup*) {
    HookCtx hctx;
    hctx.evict = ctx;
    runtime->Execute(Hook::kEvictFolios, api, hctx);
  };
  auto folio_hook = [runtime](Hook hook) {
    return [runtime, hook](CacheExtApi& api, Folio* folio) {
      HookCtx hctx;
      hctx.folio = folio;
      runtime->Execute(hook, api, hctx);
    };
  };
  ops.folio_added = folio_hook(Hook::kFolioAdded);
  ops.folio_accessed = folio_hook(Hook::kFolioAccessed);
  ops.folio_removed = folio_hook(Hook::kFolioRemoved);

  if (prog.HookPresent(Hook::kAdmitFolio)) {
    ops.admit_folio = [runtime](CacheExtApi& api,
                                const AdmissionCtx& ctx) -> bool {
      HookCtx hctx;
      hctx.admit = &ctx;
      return runtime->Execute(Hook::kAdmitFolio, api, hctx) != 0;
    };
  }
  if (prog.HookPresent(Hook::kFolioRefaulted)) {
    ops.folio_refaulted = [runtime](CacheExtApi& api, Folio* folio,
                                    uint32_t tier) {
      HookCtx hctx;
      hctx.folio = folio;
      hctx.tier = tier;
      runtime->Execute(Hook::kFolioRefaulted, api, hctx);
    };
  }
  if (prog.HookPresent(Hook::kRequestPrefetch)) {
    ops.request_prefetch = [runtime](CacheExtApi& api,
                                     const PrefetchCtx& ctx) -> int64_t {
      HookCtx hctx;
      hctx.prefetch = &ctx;
      return runtime->Execute(Hook::kRequestPrefetch, api, hctx);
    };
  }
  if (prog.HookPresent(Hook::kReadahead)) {
    ops.readahead = [runtime](CacheExtApi& api,
                              const ReadaheadCtx& ctx) -> int64_t {
      HookCtx hctx;
      hctx.readahead = &ctx;
      return runtime->Execute(Hook::kReadahead, api, hctx);
    };
  }
  if (prog.HookPresent(Hook::kAdmitOrder)) {
    ops.admit_order = [runtime](CacheExtApi& api,
                                const AdmitOrderCtx& ctx) -> uint32_t {
      HookCtx hctx;
      hctx.admit_order = &ctx;
      return static_cast<uint32_t>(
          runtime->Execute(Hook::kAdmitOrder, api, hctx));
    };
  }
  if (prog.HookPresent(Hook::kShouldWriteback)) {
    ops.should_writeback = [runtime](CacheExtApi& api,
                                     const WritebackCtx& ctx) -> bool {
      HookCtx hctx;
      hctx.writeback = &ctx;
      return runtime->Execute(Hook::kShouldWriteback, api, hctx) != 0;
    };
  }
  if (prog.HookPresent(Hook::kWritebackOrder)) {
    ops.writeback_order = [runtime](CacheExtApi& api,
                                    const WritebackCtx& ctx) -> int64_t {
      HookCtx hctx;
      hctx.writeback = &ctx;
      return runtime->Execute(Hook::kWritebackOrder, api, hctx);
    };
  }
  ops.collect_counters = [runtime](PolicyRuntimeCounters* counters) {
    counters->map_lookups += runtime->MapLookups();
  };
  return ops;
}

}  // namespace cache_ext::bpf::ir
