// The shared semantic kernel of the IR backends. Both the interpreter
// (interp.cc, the differential-testing oracle) and the JIT lowering
// (src/bpf/jit/) execute instructions through the helpers here, so a
// semantic question — what does kAluDiv do on zero, which ctx struct feeds
// kIndex, what does a kfunc clobber — has exactly one answer. The kernel
// has the same split: the BPF interpreter (___bpf_prog_run) and every
// arch JIT implement one instruction-set semantics; divergence between
// them is a CVE, not a perf bug.
//
// Each helper comes in two forms: a template over the opcode/field/kfunc
// (`EvalAluT<op>`) that a backend can instantiate per-instruction so the
// operation compiles to straight-line code with no switch, and a runtime
// switch (`EvalAlu(op, ...)`) that dispatches to the same templates — used
// by the interpreter, guaranteeing bit-identical results by construction.

#ifndef SRC_BPF_IR_EXEC_H_
#define SRC_BPF_IR_EXEC_H_

#include <cstdint>

#include "src/bpf/ir/ir.h"
#include "src/cache_ext/eviction_list.h"
#include "src/mm/address_space.h"
#include "src/mm/folio.h"
#include "src/pagecache/eviction.h"

namespace cache_ext::bpf::ir {

// Context for one hook invocation; exactly one of the pointers is set
// (none for policy_init).
struct HookCtx {
  Folio* folio = nullptr;
  EvictionCtx* evict = nullptr;
  const AdmissionCtx* admit = nullptr;
  const PrefetchCtx* prefetch = nullptr;
  const ReadaheadCtx* readahead = nullptr;
  const AdmitOrderCtx* admit_order = nullptr;
  const WritebackCtx* writeback = nullptr;
  uint32_t tier = 0;
};

// Same stable identity the hand-written policies key their maps by.
inline uint64_t FolioIdentityKey(const Folio* folio) {
  return (folio->mapping->id() << 40) ^ folio->index;
}

template <AluOp op>
inline uint64_t EvalAluT(uint64_t l, uint64_t r) {
  if constexpr (op == AluOp::kAdd) return l + r;
  if constexpr (op == AluOp::kSub) return l - r;
  if constexpr (op == AluOp::kMul) return l * r;
  if constexpr (op == AluOp::kDiv) return r == 0 ? 0 : l / r;
  if constexpr (op == AluOp::kMod) return r == 0 ? 0 : l % r;
  if constexpr (op == AluOp::kAnd) return l & r;
  if constexpr (op == AluOp::kOr) return l | r;
  if constexpr (op == AluOp::kXor) return l ^ r;
  if constexpr (op == AluOp::kLsh) return r >= 64 ? 0 : l << r;
  if constexpr (op == AluOp::kRsh) return r >= 64 ? 0 : l >> r;
  return 0;
}

inline uint64_t EvalAlu(AluOp op, uint64_t l, uint64_t r) {
  switch (op) {
    case AluOp::kAdd: return EvalAluT<AluOp::kAdd>(l, r);
    case AluOp::kSub: return EvalAluT<AluOp::kSub>(l, r);
    case AluOp::kMul: return EvalAluT<AluOp::kMul>(l, r);
    case AluOp::kDiv: return EvalAluT<AluOp::kDiv>(l, r);
    case AluOp::kMod: return EvalAluT<AluOp::kMod>(l, r);
    case AluOp::kAnd: return EvalAluT<AluOp::kAnd>(l, r);
    case AluOp::kOr:  return EvalAluT<AluOp::kOr>(l, r);
    case AluOp::kXor: return EvalAluT<AluOp::kXor>(l, r);
    case AluOp::kLsh: return EvalAluT<AluOp::kLsh>(l, r);
    case AluOp::kRsh: return EvalAluT<AluOp::kRsh>(l, r);
  }
  return 0;
}

template <Cond cond>
inline bool EvalCondT(uint64_t l, uint64_t r) {
  if constexpr (cond == Cond::kEq) return l == r;
  if constexpr (cond == Cond::kNe) return l != r;
  if constexpr (cond == Cond::kLt) return l < r;
  if constexpr (cond == Cond::kLe) return l <= r;
  if constexpr (cond == Cond::kGt) return l > r;
  if constexpr (cond == Cond::kGe) return l >= r;
  return false;
}

inline bool EvalCond(Cond cond, uint64_t l, uint64_t r) {
  switch (cond) {
    case Cond::kEq: return EvalCondT<Cond::kEq>(l, r);
    case Cond::kNe: return EvalCondT<Cond::kNe>(l, r);
    case Cond::kLt: return EvalCondT<Cond::kLt>(l, r);
    case Cond::kLe: return EvalCondT<Cond::kLe>(l, r);
    case Cond::kGt: return EvalCondT<Cond::kGt>(l, r);
    case Cond::kGe: return EvalCondT<Cond::kGe>(l, r);
  }
  return false;
}

// kCtxLoad semantics: which hook-context struct feeds each field, in
// priority order. The verifier proves only legal fields are loaded per
// hook, so the fallback 0 arms are defensive.
template <CtxField field>
inline uint64_t LoadCtxT(const HookCtx& hctx) {
  if constexpr (field == CtxField::kFolio) {
    return static_cast<uint64_t>(reinterpret_cast<uintptr_t>(hctx.folio));
  }
  if constexpr (field == CtxField::kNrRequested) {
    return hctx.evict          ? hctx.evict->nr_candidates_requested
           : hctx.readahead    ? hctx.readahead->nr_requested
           : hctx.admit_order  ? hctx.admit_order->nr_requested
                               : 0;
  }
  if constexpr (field == CtxField::kIndex) {
    return hctx.admit          ? hctx.admit->index
           : hctx.prefetch     ? hctx.prefetch->index
           : hctx.readahead    ? hctx.readahead->index
           : hctx.admit_order  ? hctx.admit_order->index
           : hctx.writeback    ? hctx.writeback->index
                               : 0;
  }
  if constexpr (field == CtxField::kPrevIndex) {
    return hctx.prefetch       ? hctx.prefetch->prev_index
           : hctx.readahead    ? hctx.readahead->prev_index
                               : 0;
  }
  if constexpr (field == CtxField::kDefaultWindow) {
    return hctx.prefetch       ? hctx.prefetch->default_window
           : hctx.readahead    ? hctx.readahead->default_window
                               : 0;
  }
  if constexpr (field == CtxField::kPid) {
    return static_cast<uint64_t>(hctx.admit         ? hctx.admit->pid
                                 : hctx.prefetch    ? hctx.prefetch->pid
                                 : hctx.readahead   ? hctx.readahead->pid
                                 : hctx.admit_order ? hctx.admit_order->pid
                                                    : 0);
  }
  if constexpr (field == CtxField::kTid) {
    return static_cast<uint64_t>(hctx.admit         ? hctx.admit->tid
                                 : hctx.prefetch    ? hctx.prefetch->tid
                                 : hctx.readahead   ? hctx.readahead->tid
                                 : hctx.admit_order ? hctx.admit_order->tid
                                                    : 0);
  }
  if constexpr (field == CtxField::kIsWrite) {
    return (hctx.admit && hctx.admit->is_write) ||
                   (hctx.admit_order && hctx.admit_order->is_write)
               ? 1
               : 0;
  }
  if constexpr (field == CtxField::kTier) {
    return hctx.tier;
  }
  if constexpr (field == CtxField::kNrPages) {
    return hctx.writeback ? hctx.writeback->nr_pages : 0;
  }
  if constexpr (field == CtxField::kNrDirty) {
    return hctx.writeback ? hctx.writeback->nr_dirty : 0;
  }
  if constexpr (field == CtxField::kForSync) {
    return hctx.writeback && hctx.writeback->for_sync ? 1 : 0;
  }
  return 0;
}

inline uint64_t LoadCtx(CtxField field, const HookCtx& hctx) {
  switch (field) {
    case CtxField::kFolio: return LoadCtxT<CtxField::kFolio>(hctx);
    case CtxField::kNrRequested:
      return LoadCtxT<CtxField::kNrRequested>(hctx);
    case CtxField::kIndex: return LoadCtxT<CtxField::kIndex>(hctx);
    case CtxField::kPrevIndex: return LoadCtxT<CtxField::kPrevIndex>(hctx);
    case CtxField::kDefaultWindow:
      return LoadCtxT<CtxField::kDefaultWindow>(hctx);
    case CtxField::kPid: return LoadCtxT<CtxField::kPid>(hctx);
    case CtxField::kTid: return LoadCtxT<CtxField::kTid>(hctx);
    case CtxField::kIsWrite: return LoadCtxT<CtxField::kIsWrite>(hctx);
    case CtxField::kTier: return LoadCtxT<CtxField::kTier>(hctx);
    case CtxField::kNrPages: return LoadCtxT<CtxField::kNrPages>(hctx);
    case CtxField::kNrDirty: return LoadCtxT<CtxField::kNrDirty>(hctx);
    case CtxField::kForSync: return LoadCtxT<CtxField::kForSync>(hctx);
  }
  return 0;
}

// Direct kfunc calls (everything except the structured iterators, which
// the verifier only admits as kLoopIterate/kLoopIterateScore forms).
// Writes R0 and clobbers the caller-saved R1–R5, exactly what the
// verifier's transfer function assumes after kCall.
template <verifier::Kfunc kfunc>
inline void DoKfuncCallT(CacheExtApi& api, uint64_t* regs) {
  if constexpr (kfunc == verifier::Kfunc::kListCreate) {
    auto id = api.ListCreate();
    regs[R0] = id.ok() ? *id : 0;
  }
  if constexpr (kfunc == verifier::Kfunc::kListAdd ||
                kfunc == verifier::Kfunc::kListMove) {
    Folio* folio =
        reinterpret_cast<Folio*>(static_cast<uintptr_t>(regs[R2]));
    const bool tail = regs[R3] != 0;
    const Status st = kfunc == verifier::Kfunc::kListAdd
                          ? api.ListAdd(regs[R1], folio, tail)
                          : api.ListMove(regs[R1], folio, tail);
    regs[R0] = st.ok() ? 0 : 1;
  }
  if constexpr (kfunc == verifier::Kfunc::kListDel) {
    Folio* folio =
        reinterpret_cast<Folio*>(static_cast<uintptr_t>(regs[R1]));
    regs[R0] = api.ListDel(folio).ok() ? 0 : 1;
  }
  if constexpr (kfunc == verifier::Kfunc::kListSize) {
    auto size = api.ListSize(regs[R1]);
    regs[R0] = size.ok() ? *size : 0;
  }
  if constexpr (kfunc == verifier::Kfunc::kListIdOf) {
    const Folio* folio =
        reinterpret_cast<const Folio*>(static_cast<uintptr_t>(regs[R1]));
    auto id = api.ListIdOf(folio);
    regs[R0] = id.ok() ? *id : 0;
  }
  if constexpr (kfunc == verifier::Kfunc::kCurrentTask) {
    regs[R0] =
        (static_cast<uint64_t>(static_cast<uint32_t>(api.CurrentPid()))
         << 32) |
        static_cast<uint32_t>(api.CurrentTid());
  }
  if constexpr (kfunc == verifier::Kfunc::kListIterate ||
                kfunc == verifier::Kfunc::kListIterateScore) {
    regs[R0] = 0;  // unreachable: the verifier rejects direct calls
  }
  regs[R1] = regs[R2] = regs[R3] = regs[R4] = regs[R5] = 0;
}

inline void DoKfuncCall(verifier::Kfunc kfunc, CacheExtApi& api,
                        uint64_t* regs) {
  using verifier::Kfunc;
  switch (kfunc) {
    case Kfunc::kListCreate:
      return DoKfuncCallT<Kfunc::kListCreate>(api, regs);
    case Kfunc::kListAdd: return DoKfuncCallT<Kfunc::kListAdd>(api, regs);
    case Kfunc::kListMove: return DoKfuncCallT<Kfunc::kListMove>(api, regs);
    case Kfunc::kListDel: return DoKfuncCallT<Kfunc::kListDel>(api, regs);
    case Kfunc::kListSize: return DoKfuncCallT<Kfunc::kListSize>(api, regs);
    case Kfunc::kListIdOf: return DoKfuncCallT<Kfunc::kListIdOf>(api, regs);
    case Kfunc::kCurrentTask:
      return DoKfuncCallT<Kfunc::kCurrentTask>(api, regs);
    case Kfunc::kListIterate:
      return DoKfuncCallT<Kfunc::kListIterate>(api, regs);
    case Kfunc::kListIterateScore:
      return DoKfuncCallT<Kfunc::kListIterateScore>(api, regs);
  }
}

inline IterPlacement ToPlacement(LoopPlace place) {
  return place == LoopPlace::kMoveToTail ? IterPlacement::kMoveToTail
                                         : IterPlacement::kKeepInPlace;
}

// Loop-body verdict mapping for the simple kLoopIterate form: R0 >= 2
// stops the scan, 1 evicts the folio, anything else skips it.
inline IterVerdict VerdictFromR0(uint64_t r0) {
  if (r0 >= 2) {
    return IterVerdict::kStop;
  }
  return r0 == 1 ? IterVerdict::kEvict : IterVerdict::kSkip;
}

}  // namespace cache_ext::bpf::ir

#endif  // SRC_BPF_IR_EXEC_H_
