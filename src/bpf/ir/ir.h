// The cache_ext policy IR: a small, statically verifiable instruction set
// for eviction policies (ISSUE 6 tentpole; §4.4 of the paper).
//
// C++ std::function policies are opaque — the PR-1 verifier can only check
// their *hand-declared* ProgramSpec against budgets. A policy expressed in
// this IR is transparent the way eBPF bytecode is: the verifier
// (src/bpf/verifier/ir_verifier.h) walks the instructions, constructs the
// CFG, abstract-interprets register state, and *derives* the safety proof —
// termination, loop bounds, helper-call worst cases, map-access bounds —
// instead of trusting a declaration.
//
// The instruction set is deliberately tiny:
//  - 8 registers (R0 return/scratch, R1-R5 argument/caller-clobbered,
//    R6-R7 preserved across calls), all 64-bit;
//  - register/immediate ALU ops and *forward-only* conditional branches
//    (a backward jump is an unbounded loop and is rejected);
//  - map load/store through bounds-checked map-value pointers (lookup
//    yields a maybe-null pointer that must be null-checked before deref,
//    exactly like PTR_TO_MAP_VALUE_OR_NULL);
//  - kfunc calls against the Table-2 CacheExtApi surface with typed
//    arguments (scalar vs folio pointer);
//  - iteration ONLY via the structured kLoopIterate/kLoopIterateScore
//    forms, whose trip count is an immediate or a register with a
//    statically provable range — the only way the IR loops at all, so
//    termination is a theorem, not a promise.
//
// Programs are built with ir::ProgramBuilder (builder.h), verified and
// compiled into an ordinary cache_ext::Ops by ir::CompileToOps (compile.h),
// and executed by the interpreter in interp.h. The derived ProgramSpec then
// flows through the PR-1 pipeline (spec checks + instrumented dry run), so
// the static proof and the dynamic observation validate each other.

#ifndef SRC_BPF_IR_IR_H_
#define SRC_BPF_IR_IR_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/bpf/verifier/spec.h"

namespace cache_ext::bpf::ir {

inline constexpr size_t kNumRegs = 8;
// Register names. R0 holds kfunc results and the hook's return value; R1-R5
// are clobbered by kCall and the loop forms; R6-R7 survive them.
enum Reg : uint8_t { R0 = 0, R1, R2, R3, R4, R5, R6, R7 };

enum class Op : uint8_t {
  kMovImm = 0,  // dst = imm
  kMovReg,      // dst = src
  kAluImm,      // dst = dst <alu> imm
  kAluReg,      // dst = dst <alu> src
  kJmp,         // goto target (forward only)
  kJmpImm,      // if (dst <cond> imm) goto target (forward only)
  kJmpReg,      // if (dst <cond> src) goto target (forward only)
  kCtxLoad,     // dst = hook-context field (availability is hook-checked)
  kMapLookup,   // R0 = &map[key=src] or null (PTR_TO_MAP_VALUE_OR_NULL)
  kMapUpdate,   // map[key=dst] (created zeroed if absent) u64@0 = src; R0=0/1
  kMapDelete,   // delete map[key=dst]; R0 = 0 (deleted) / 1 (absent)
  kLoad,        // dst = *(u64*)(src + off); src: proven non-null map value
  kStore,       // *(u64*)(dst + off) = src
  kStoreImm,    // *(u64*)(dst + off) = imm
  kFolioKey,    // dst = stable u64 identity key of folio in src
  kCall,        // call kfunc; args in R1..R3, result in R0, clobbers R0-R5
  kLoopIterate,       // bounded list walk, body [pc+1, target); verdict = R0
  kLoopIterateScore,  // bounded batch-scoring walk; score = R0
  kLoopEnd,           // closes the innermost loop body (never executed)
  kExit,        // return R0 (hooks with a return value) / end program
};

enum class AluOp : uint8_t {
  kAdd = 0,
  kSub,
  kMul,
  kDiv,  // division by zero yields 0 at runtime; the verifier rejects
  kMod,  // operands whose range admits a zero divisor
  kAnd,
  kOr,
  kXor,
  kLsh,
  kRsh,
};

enum class Cond : uint8_t {
  kEq = 0,
  kNe,
  kLt,  // unsigned
  kLe,
  kGt,
  kGe,
};

// Hook-context fields a program may read with kCtxLoad. Which fields exist
// depends on the hook (reading kFolio from evict_folios is a verifier
// error), mirroring how the kernel types each program's ctx argument.
enum class CtxField : uint8_t {
  kFolio = 0,      // folio_added/accessed/removed/refaulted: the folio
  kNrRequested,    // evict_folios: candidates requested (<= batch cap);
                   // readahead / admit_order: pages in the faulting run
  kIndex,          // admit_folio / request_prefetch / readahead /
                   // admit_order: faulting page index
  kPrevIndex,      // request_prefetch / readahead: previous read position
  kDefaultWindow,  // request_prefetch / readahead: the heuristic's window
  kPid,            // admit_folio / request_prefetch / readahead / admit_order
  kTid,            // admit_folio / request_prefetch / readahead / admit_order
  kIsWrite,        // admit_folio / admit_order: 0/1
  kTier,           // folio_refaulted: MGLRU tier recorded at eviction
  kNrPages,        // should_writeback / writeback_order: folio span
  kNrDirty,        // should_writeback / writeback_order: cgroup dirty gauge
  kForSync,        // should_writeback / writeback_order: fsync harvest? 0/1
};

// Placement of examined folios for the loop forms (the IR supports the two
// placements every built-in policy uses; kMoveToList needs a second list
// operand and is left to the std::function path).
enum class LoopPlace : uint8_t {
  kKeepInPlace = 0,
  kMoveToTail,
};

struct Inst {
  Op op = Op::kExit;
  AluOp alu = AluOp::kAdd;
  Cond cond = Cond::kEq;
  CtxField ctx = CtxField::kFolio;
  verifier::Kfunc kfunc = verifier::Kfunc::kCurrentTask;
  uint8_t dst = 0;
  uint8_t src = 0;
  // Loop forms: trip bound from `imm` (bound_is_reg == false) or from the
  // range-proven register `src` (bound_is_reg == true). dst = list-id reg.
  bool bound_is_reg = false;
  LoopPlace on_skip = LoopPlace::kKeepInPlace;
  LoopPlace on_evict = LoopPlace::kKeepInPlace;
  uint32_t map = 0;     // map index into IrPolicy::maps
  int32_t off = 0;      // load/store byte offset into the map value
  int32_t target = -1;  // jump target pc / matching kLoopEnd pc
  int64_t imm = 0;
};

using Program = std::vector<Inst>;

enum class IrMapKind : uint8_t {
  kArray = 0,  // dense u64 index in [0, max_entries); keys proven in range
  kHash,       // arbitrary u64 keys; capacity-bounded at max_entries
};

struct MapDecl {
  std::string name;
  IrMapKind kind = IrMapKind::kHash;
  uint32_t max_entries = 0;
  uint32_t value_size = 8;  // bytes; must be a positive multiple of 8
};

// A whole policy in IR: one program per hook (empty program = hook absent)
// plus the maps it owns. This is what the static-analysis engine consumes
// and what CompileToOps turns into a loadable cache_ext::Ops.
struct IrPolicy {
  std::string name;
  uint64_t helper_budget = 1 << 16;
  uint64_t program_cost_ns = 90;
  std::vector<MapDecl> maps;
  std::array<Program, verifier::kNumHooks> hooks = {};

  Program& hook(verifier::Hook h) {
    return hooks[static_cast<size_t>(h)];
  }
  const Program& hook(verifier::Hook h) const {
    return hooks[static_cast<size_t>(h)];
  }
  bool HookPresent(verifier::Hook h) const { return !hook(h).empty(); }
};

// Typed kfunc signatures for kCall: how many arguments (taken from R1..R3),
// whether each must be a scalar or a folio pointer, and whether the kfunc
// acquires the policy's list lock (calling such a kfunc from inside a loop
// body would self-deadlock with the lock list_iterate already holds — the
// verifier proves this never happens).
enum class ArgKind : uint8_t { kScalar = 0, kFolioPtr };

struct KfuncSig {
  uint8_t nr_args = 0;
  std::array<ArgKind, 3> args = {};
  bool takes_list_lock = false;
  // True for kfuncs a program may invoke through kCall at all (the iterate
  // kfuncs are reachable only through the structured loop forms).
  bool callable = false;
};

const KfuncSig& SignatureOf(verifier::Kfunc kfunc);

const char* OpName(Op op);
const char* AluOpName(AluOp op);
const char* CondName(Cond cond);
const char* CtxFieldName(CtxField field);

// One-line rendering of an instruction for verifier logs, e.g.
//   "12: call cache_ext_list_add (r1, r2, r3)".
std::string Disasm(const Inst& inst, size_t pc);

}  // namespace cache_ext::bpf::ir

#endif  // SRC_BPF_IR_IR_H_
