// The IR interpreter: executes a *verified* IrPolicy against the CacheExtApi
// kfunc surface. This is the runtime half of the IR path — the analogue of
// the kernel JIT/interpreter executing bytecode the verifier already proved
// safe. It performs no semantic checking of its own beyond cheap defensive
// backstops; CompileToOps (compile.h) refuses to construct a runtime for a
// policy the static analysis rejected.

#ifndef SRC_BPF_IR_INTERP_H_
#define SRC_BPF_IR_INTERP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/bpf/ir/ir.h"
#include "src/pagecache/eviction.h"
#include "src/util/thread_annotations.h"

namespace cache_ext {
class CacheExtApi;
}  // namespace cache_ext

namespace cache_ext::bpf::ir {

// Self-contained map storage for IR policies: u64 keys, fixed-size values
// of value_size bytes accessed as u64 words. Array maps are dense and
// pre-zeroed; hash maps cap live entries at max_entries (an insert beyond
// capacity fails with "full", which is how the verifier's occupancy bound
// is *enforced* rather than assumed).
class IrMap {
 public:
  explicit IrMap(const MapDecl& decl);

  // Pointer to the value words, or nullptr when absent/out-of-range. The
  // pointer stays valid until the entry is deleted (values are separately
  // allocated), and callers run serialized under the runtime lock.
  uint64_t* Lookup(uint64_t key);
  // Create-zeroed-if-absent, then store `value` in word 0. Returns 0 on
  // success, 1 when a hash map is at capacity.
  uint64_t Update(uint64_t key, uint64_t value);
  // Returns 0 when an entry was deleted (array: zeroed), 1 when absent.
  uint64_t Delete(uint64_t key);

  uint64_t lookups() const {
    return lookups_.load(std::memory_order_relaxed);
  }

 private:
  const MapDecl decl_;
  const size_t words_;                  // value_size / 8
  std::vector<uint64_t> array_;         // kArray: max_entries * words_
  std::unordered_map<uint64_t, std::unique_ptr<uint64_t[]>> hash_;
  std::atomic<uint64_t> lookups_{0};
};

// Context for one hook invocation; exactly one of the pointers is set
// (none for policy_init).
struct HookCtx {
  Folio* folio = nullptr;
  EvictionCtx* evict = nullptr;
  const AdmissionCtx* admit = nullptr;
  const PrefetchCtx* prefetch = nullptr;
  const ReadaheadCtx* readahead = nullptr;
  const AdmitOrderCtx* admit_order = nullptr;
  const WritebackCtx* writeback = nullptr;
  uint32_t tier = 0;
};

// One loaded IR policy's execution state: the instructions plus its maps.
// Execute() serializes hook invocations through mu_ (the interpreter is a
// single virtual CPU, like a BPF program running non-preemptible), which
// also makes map-value pointers held in registers safe for the duration of
// a program.
class IrRuntime {
 public:
  explicit IrRuntime(IrPolicy policy);

  const IrPolicy& policy() const { return policy_; }

  // Run the hook's program; returns the final R0 (meaningful for
  // policy_init / admit_folio / request_prefetch).
  int64_t Execute(verifier::Hook hook, CacheExtApi& api, const HookCtx& hctx);

  // Sum of hash probes across this policy's maps (collect_counters).
  uint64_t MapLookups() const;

 private:
  // Execute [begin, end); returns true when a kExit ran (top level only —
  // the verifier proves loop bodies never exit).
  bool ExecuteRange(size_t begin, size_t end, const Program& prog,
                    CacheExtApi& api, const HookCtx& hctx,
                    std::array<uint64_t, kNumRegs>& regs)
      CACHE_EXT_REQUIRES(mu_);

  const IrPolicy policy_;
  mutable cache_ext::Mutex mu_;
  std::vector<std::unique_ptr<IrMap>> maps_ CACHE_EXT_GUARDED_BY(mu_);
};

}  // namespace cache_ext::bpf::ir

#endif  // SRC_BPF_IR_INTERP_H_
