// The IR interpreter: executes a *verified* IrPolicy against the CacheExtApi
// kfunc surface. This is the reference backend of the IR path — the analogue
// of the kernel's ___bpf_prog_run() executing bytecode the verifier already
// proved safe. The JIT backend (src/bpf/jit/) is the fast path; the
// interpreter stays as the differential-testing oracle and the fallback when
// lowering fails. It performs no semantic checking of its own beyond cheap
// defensive backstops; CompileToOps (compile.h) refuses to construct a
// runtime for a policy the static analysis rejected.
//
// Execution is lock-free: registers and loop state live in a per-invocation
// stack-allocated frame, and IrMap (ir_map.h) carries its own sharded
// concurrency story — so concurrent hook dispatch from the batched (PR 3)
// and lockless-read (PR 5) paths scales instead of serializing through a
// runtime-wide mutex.

#ifndef SRC_BPF_IR_INTERP_H_
#define SRC_BPF_IR_INTERP_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/bpf/ir/exec.h"
#include "src/bpf/ir/ir.h"
#include "src/bpf/ir/ir_map.h"
#include "src/pagecache/eviction.h"

namespace cache_ext {
class CacheExtApi;
}  // namespace cache_ext

namespace cache_ext::bpf::ir {

// One loaded IR policy's execution state: the instructions plus its maps.
// Execute() is safe to call from any number of threads concurrently; each
// invocation is a private virtual CPU (stack registers), and the maps are
// internally synchronized.
class IrRuntime {
 public:
  explicit IrRuntime(IrPolicy policy);

  const IrPolicy& policy() const { return policy_; }

  // Run the hook's program; returns the final R0 (meaningful for
  // policy_init / admit_folio / request_prefetch).
  int64_t Execute(verifier::Hook hook, CacheExtApi& api, const HookCtx& hctx);

  // Sum of hash probes across this policy's maps (collect_counters).
  uint64_t MapLookups() const;

  // Map access for the JIT backend (devirtualized map steps) and tests.
  size_t nr_maps() const { return maps_.size(); }
  IrMap* map(size_t idx) const { return maps_[idx].get(); }

 private:
  // Execute [begin, end); returns true when a kExit ran (top level only —
  // the verifier proves loop bodies never exit).
  bool ExecuteRange(size_t begin, size_t end, const Program& prog,
                    CacheExtApi& api, const HookCtx& hctx,
                    std::array<uint64_t, kNumRegs>& regs);

  const IrPolicy policy_;
  std::vector<std::unique_ptr<IrMap>> maps_;
};

}  // namespace cache_ext::bpf::ir

#endif  // SRC_BPF_IR_INTERP_H_
