#include "src/bpf/ir/ir.h"

namespace cache_ext::bpf::ir {

namespace {

using verifier::Kfunc;

constexpr KfuncSig kUncallable{};

// clang-format off
const KfuncSig kSigs[verifier::kNumKfuncs] = {
    // kListCreate: () -> list id (0 on failure)
    {0, {}, /*takes_list_lock=*/true, /*callable=*/true},
    // kListAdd: (list id, folio, tail) -> error code
    {3, {ArgKind::kScalar, ArgKind::kFolioPtr, ArgKind::kScalar}, true, true},
    // kListMove: (list id, folio, tail) -> error code
    {3, {ArgKind::kScalar, ArgKind::kFolioPtr, ArgKind::kScalar}, true, true},
    // kListDel: (folio) -> error code
    {1, {ArgKind::kFolioPtr}, true, true},
    // kListSize: (list id) -> size (0 on bad id)
    {1, {ArgKind::kScalar}, true, true},
    // kListIdOf: (folio) -> list id (0 when unlisted)
    {1, {ArgKind::kFolioPtr}, true, true},
    // kListIterate / kListIterateScore: loop forms only, not kCall targets.
    kUncallable,
    kUncallable,
    // kCurrentTask: () -> pid<<32 | tid; lock-free, loop-body safe.
    {0, {}, /*takes_list_lock=*/false, /*callable=*/true},
};
// clang-format on

}  // namespace

const KfuncSig& SignatureOf(Kfunc kfunc) {
  return kSigs[static_cast<uint8_t>(kfunc)];
}

const char* OpName(Op op) {
  switch (op) {
    case Op::kMovImm:            return "mov_imm";
    case Op::kMovReg:            return "mov_reg";
    case Op::kAluImm:            return "alu_imm";
    case Op::kAluReg:            return "alu_reg";
    case Op::kJmp:               return "jmp";
    case Op::kJmpImm:            return "jmp_imm";
    case Op::kJmpReg:            return "jmp_reg";
    case Op::kCtxLoad:           return "ctx_load";
    case Op::kMapLookup:         return "map_lookup";
    case Op::kMapUpdate:         return "map_update";
    case Op::kMapDelete:         return "map_delete";
    case Op::kLoad:              return "load";
    case Op::kStore:             return "store";
    case Op::kStoreImm:          return "store_imm";
    case Op::kFolioKey:          return "folio_key";
    case Op::kCall:              return "call";
    case Op::kLoopIterate:       return "loop_iterate";
    case Op::kLoopIterateScore:  return "loop_iterate_score";
    case Op::kLoopEnd:           return "loop_end";
    case Op::kExit:              return "exit";
  }
  return "?";
}

const char* AluOpName(AluOp op) {
  switch (op) {
    case AluOp::kAdd: return "add";
    case AluOp::kSub: return "sub";
    case AluOp::kMul: return "mul";
    case AluOp::kDiv: return "div";
    case AluOp::kMod: return "mod";
    case AluOp::kAnd: return "and";
    case AluOp::kOr:  return "or";
    case AluOp::kXor: return "xor";
    case AluOp::kLsh: return "lsh";
    case AluOp::kRsh: return "rsh";
  }
  return "?";
}

const char* CondName(Cond cond) {
  switch (cond) {
    case Cond::kEq: return "==";
    case Cond::kNe: return "!=";
    case Cond::kLt: return "<";
    case Cond::kLe: return "<=";
    case Cond::kGt: return ">";
    case Cond::kGe: return ">=";
  }
  return "?";
}

const char* CtxFieldName(CtxField field) {
  switch (field) {
    case CtxField::kFolio:         return "ctx.folio";
    case CtxField::kNrRequested:   return "ctx.nr_candidates_requested";
    case CtxField::kIndex:         return "ctx.index";
    case CtxField::kPrevIndex:     return "ctx.prev_index";
    case CtxField::kDefaultWindow: return "ctx.default_window";
    case CtxField::kPid:           return "ctx.pid";
    case CtxField::kTid:           return "ctx.tid";
    case CtxField::kIsWrite:       return "ctx.is_write";
    case CtxField::kTier:          return "ctx.tier";
    case CtxField::kNrPages:       return "ctx.nr_pages";
    case CtxField::kNrDirty:       return "ctx.nr_dirty";
    case CtxField::kForSync:       return "ctx.for_sync";
  }
  return "ctx.?";
}

std::string Disasm(const Inst& inst, size_t pc) {
  auto reg = [](uint8_t r) { return "r" + std::to_string(r); };
  std::string out = std::to_string(pc) + ": ";
  switch (inst.op) {
    case Op::kMovImm:
      out += reg(inst.dst) + " = " + std::to_string(inst.imm);
      break;
    case Op::kMovReg:
      out += reg(inst.dst) + " = " + reg(inst.src);
      break;
    case Op::kAluImm:
      out += reg(inst.dst) + " " + AluOpName(inst.alu) + "= " +
             std::to_string(inst.imm);
      break;
    case Op::kAluReg:
      out += reg(inst.dst) + " " + AluOpName(inst.alu) + "= " + reg(inst.src);
      break;
    case Op::kJmp:
      out += "goto " + std::to_string(inst.target);
      break;
    case Op::kJmpImm:
      out += "if " + reg(inst.dst) + " " + CondName(inst.cond) + " " +
             std::to_string(inst.imm) + " goto " + std::to_string(inst.target);
      break;
    case Op::kJmpReg:
      out += "if " + reg(inst.dst) + " " + CondName(inst.cond) + " " +
             reg(inst.src) + " goto " + std::to_string(inst.target);
      break;
    case Op::kCtxLoad:
      out += reg(inst.dst) + " = " + CtxFieldName(inst.ctx);
      break;
    case Op::kMapLookup:
      out += "r0 = lookup(map#" + std::to_string(inst.map) + ", key=" +
             reg(inst.src) + ")";
      break;
    case Op::kMapUpdate:
      out += "update(map#" + std::to_string(inst.map) + ", key=" +
             reg(inst.dst) + ", val=" + reg(inst.src) + ")";
      break;
    case Op::kMapDelete:
      out += "delete(map#" + std::to_string(inst.map) + ", key=" +
             reg(inst.dst) + ")";
      break;
    case Op::kLoad:
      out += reg(inst.dst) + " = *(u64*)(" + reg(inst.src) + " + " +
             std::to_string(inst.off) + ")";
      break;
    case Op::kStore:
      out += "*(u64*)(" + reg(inst.dst) + " + " + std::to_string(inst.off) +
             ") = " + reg(inst.src);
      break;
    case Op::kStoreImm:
      out += "*(u64*)(" + reg(inst.dst) + " + " + std::to_string(inst.off) +
             ") = " + std::to_string(inst.imm);
      break;
    case Op::kFolioKey:
      out += reg(inst.dst) + " = folio_key(" + reg(inst.src) + ")";
      break;
    case Op::kCall:
      out += "call " + std::string(verifier::KfuncName(inst.kfunc));
      break;
    case Op::kLoopIterate:
    case Op::kLoopIterateScore:
      out += std::string(OpName(inst.op)) + "(list=" + reg(inst.dst) +
             ", bound=" +
             (inst.bound_is_reg ? reg(inst.src) : std::to_string(inst.imm)) +
             ") body=[" + std::to_string(pc + 1) + ", " +
             std::to_string(inst.target) + ")";
      break;
    case Op::kLoopEnd:
      out += "loop_end";
      break;
    case Op::kExit:
      out += "exit (r0)";
      break;
  }
  return out;
}

}  // namespace cache_ext::bpf::ir
