// ProgramBuilder: a fluent assembler for the policy IR.
//
// Forward jumps go through labels that are patched at Build() time; loop
// forms are opened/closed with BeginIterate()/EndIterate() so the matching
// kLoopEnd target is always structurally correct. Build() CHECK-fails on
// author errors (unbound labels, unclosed loops) — those are bugs in the
// policy *source*, not verifier findings; everything semantic (types,
// bounds, reachability) is left to the IR verifier.

#ifndef SRC_BPF_IR_BUILDER_H_
#define SRC_BPF_IR_BUILDER_H_

#include <cstdint>
#include <vector>

#include "src/bpf/ir/ir.h"

namespace cache_ext::bpf::ir {

class ProgramBuilder {
 public:
  using Label = size_t;

  Label NewLabel();
  // Bind `label` to the NEXT instruction emitted.
  void Bind(Label label);

  ProgramBuilder& MovImm(Reg dst, int64_t imm);
  ProgramBuilder& MovReg(Reg dst, Reg src);
  ProgramBuilder& Alu(AluOp op, Reg dst, int64_t imm);
  ProgramBuilder& AluReg(AluOp op, Reg dst, Reg src);
  ProgramBuilder& Jmp(Label target);
  ProgramBuilder& JmpImm(Cond cond, Reg reg, int64_t imm, Label target);
  ProgramBuilder& JmpReg(Cond cond, Reg lhs, Reg rhs, Label target);
  ProgramBuilder& CtxLoad(Reg dst, CtxField field);
  ProgramBuilder& MapLookup(uint32_t map, Reg key);
  ProgramBuilder& MapUpdate(uint32_t map, Reg key, Reg value);
  ProgramBuilder& MapDelete(uint32_t map, Reg key);
  ProgramBuilder& Load(Reg dst, Reg src, int32_t off);
  ProgramBuilder& Store(Reg dst, int32_t off, Reg src);
  ProgramBuilder& StoreImm(Reg dst, int32_t off, int64_t imm);
  ProgramBuilder& FolioKey(Reg dst, Reg src);
  ProgramBuilder& Call(verifier::Kfunc kfunc);
  ProgramBuilder& Exit();

  struct LoopOpts {
    // Spelled as a constructor (not member initializers) so LoopOpts() can
    // be a default argument below, inside the enclosing class.
    LoopOpts() : on_skip(LoopPlace::kKeepInPlace),
                 on_evict(LoopPlace::kKeepInPlace) {}
    LoopPlace on_skip;
    LoopPlace on_evict;
  };
  // Open a bounded walk of the list whose id is in `list`. The body runs
  // once per examined folio with R1 = the folio; it must leave the verdict
  // (simple form: 0 skip / 1 evict / 2 stop) or the score (score form) in
  // R0. Bound from an immediate...
  ProgramBuilder& BeginIterate(Reg list, int64_t bound_imm,
                               LoopOpts opts = LoopOpts());
  ProgramBuilder& BeginIterateScore(Reg list, int64_t bound_imm,
                                    LoopOpts opts = LoopOpts());
  // ...or from a register whose range the verifier must prove finite.
  ProgramBuilder& BeginIterateReg(Reg list, Reg bound, LoopOpts opts = LoopOpts());
  ProgramBuilder& BeginIterateScoreReg(Reg list, Reg bound,
                                       LoopOpts opts = LoopOpts());
  ProgramBuilder& EndIterate();

  // Patch labels and return the program. CHECK-fails on unbound labels or
  // unclosed loops. The builder is left empty and reusable.
  Program Build();

 private:
  ProgramBuilder& Push(Inst inst);
  ProgramBuilder& BeginLoop(Op op, Reg list, bool bound_is_reg, Reg bound_reg,
                            int64_t bound_imm, LoopOpts opts);

  Program insns_;
  // labels_[i] = pc the label resolves to, or -1 while unbound.
  std::vector<int64_t> labels_;
  // Instructions whose `target` is a label id awaiting patching.
  std::vector<size_t> pending_;
  // Open loop headers (pc of kLoopIterate*), innermost last.
  std::vector<size_t> open_loops_;
};

}  // namespace cache_ext::bpf::ir

#endif  // SRC_BPF_IR_BUILDER_H_
