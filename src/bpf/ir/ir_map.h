// Sharded map storage for IR policies: u64 keys, fixed-size values of
// value_size bytes accessed as u64 words. This replaces the runtime-wide
// interpreter mutex with the same concurrency story as the hand-written
// policies' bpf::HashMap/ArrayMap (src/bpf/map.h):
//
//  - Array maps are dense, preallocated, and lock-free; value words are
//    accessed through std::atomic_ref (relaxed), matching ArrayMap.
//  - Hash maps are sharded (detail::ShardCountFor shards, MixHash
//    distribution) with a global atomic size enforcing max_entries
//    exactly via the reserve/rollback idiom. Lookups are LOCK-FREE: each
//    shard's index is an open-addressed slot table published through an
//    atomic table pointer (grown by rehash under the writer lock, old
//    tables retained so racing readers never touch freed memory — the
//    same type-stability story as the value blocks). Only writers
//    (Update/Delete/rehash) take the shard's bpf::SpinLock, mirroring the
//    kernel htab: htab_map_lookup_elem walks the bucket locklessly under
//    RCU while updates serialize on the per-bucket raw_spin_lock.
//  - Value blocks are recycled through a per-shard free list and never
//    returned to the allocator while the runtime lives — the userspace
//    analogue of SLAB_TYPESAFE_BY_RCU. A program that loaded a value
//    pointer into a register races with a concurrent Delete of that key
//    exactly like a BPF program races with htab_map_delete_elem: the
//    pointer stays dereferenceable (it may observe recycled contents),
//    so the lock-free kLoad/kStore paths are memory-safe without EBR.
//
// An insert beyond capacity fails with "full", which is how the
// verifier's occupancy bound is *enforced* rather than assumed.

#ifndef SRC_BPF_IR_IR_MAP_H_
#define SRC_BPF_IR_IR_MAP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/bpf/ir/ir.h"
#include "src/bpf/spinlock.h"

namespace cache_ext::bpf::ir {

class IrMap {
 public:
  explicit IrMap(const MapDecl& decl);

  // Pointer to the value words, or nullptr when absent/out-of-range.
  // Array pointers stay valid for the runtime's lifetime; hash pointers
  // stay dereferenceable (type-safe recycling, see file comment) but may
  // be recycled by a concurrent Delete+Update.
  uint64_t* Lookup(uint64_t key);
  // Create-zeroed-if-absent, then store `value` in word 0. Returns 0 on
  // success, 1 when a hash map is at capacity.
  uint64_t Update(uint64_t key, uint64_t value);
  // Returns 0 when an entry was deleted (array: zeroed), 1 when absent.
  uint64_t Delete(uint64_t key);

  // Total probes. Hash probes land in per-shard counters incremented with
  // a plain load+store (the percpu-counter idiom: no RMW on the hot path;
  // concurrent probes of one shard may drop a count). Array and fast-path
  // probes land in the atomic counter. Single-threaded the sum is exact,
  // which the differential test relies on.
  uint64_t lookups() const;
  // For backend fast paths (e.g. a const-folded array access) that skip
  // Lookup() but must keep the probe accounting identical.
  void CountLookup() { lookups_.fetch_add(1, std::memory_order_relaxed); }

  const MapDecl& decl() const { return decl_; }
  size_t words() const { return words_; }

  // kArray only: base of the dense backing store. Lets a backend fold a
  // verifier-proven constant key to a direct pointer at compile time (the
  // analogue of the kernel's array-map map_gen_lookup inlining).
  uint64_t* ArrayBase() { return array_.data(); }

  // Live entries (hash) or max_entries (array).
  uint64_t Size() const;
  // Snapshot iteration for tests/introspection; takes each shard lock in
  // turn, so concurrent mutation in other shards may be missed or seen.
  void ForEach(
      const std::function<void(uint64_t key, const uint64_t* words)>& fn)
      const;

 private:
  // One open-addressed slot. `state` gates visibility: a reader may act
  // on `key`/`value` only after an acquire load of state returns kFull
  // (the writer publishes them before the release store of state).
  struct Slot {
    std::atomic<uint8_t> state{0};  // kEmpty / kFull / kTombstone
    std::atomic<uint64_t> key{0};
    std::atomic<uint64_t*> value{nullptr};
  };

  struct HashTable {
    explicit HashTable(uint64_t capacity)
        : mask(capacity - 1), slots(capacity) {}
    const uint64_t mask;  // capacity - 1 (capacity is a power of two)
    uint64_t used = 0;    // full + tombstone slots; writer-only
    std::vector<Slot> slots;
  };

  // `mu` serializes writers (Update/Delete/rehash); lock-free readers see
  // the index through the atomic `table` pointer. The owning containers
  // (`tables`, `blocks`, `free_list`) are writer-only, guarded by `mu` by
  // convention (SpinLock carries no capability annotations, as in
  // FolioRegistry::Bucket). Retired tables and value blocks are never
  // freed while the map lives, so a stale reader is always memory-safe.
  struct Shard {
    mutable SpinLock mu;
    std::atomic<uint64_t> lookups{0};
    std::atomic<HashTable*> table{nullptr};
    std::vector<std::unique_ptr<HashTable>> tables;
    std::vector<std::unique_ptr<uint64_t[]>> blocks;
    std::vector<uint64_t*> free_list;
  };

  // Probe-sequence helpers; writer-side, called with the shard lock held.
  Slot* FindLive(HashTable* table, uint64_t key, uint64_t hash);
  void Rehash(Shard& shard);

  const MapDecl decl_;
  const size_t words_;  // value_size / 8
  std::vector<uint64_t> array_;  // kArray: max_entries * words_
  std::vector<Shard> shards_;    // kHash
  const uint64_t shard_mask_ = 0;
  std::atomic<uint64_t> size_{0};  // kHash live entries (exact bound)
  std::atomic<uint64_t> lookups_{0};
};

}  // namespace cache_ext::bpf::ir

#endif  // SRC_BPF_IR_IR_MAP_H_
