#include "src/bpf/ir/interp.h"

#include <array>

#include "src/cache_ext/eviction_list.h"
#include "src/mm/address_space.h"
#include "src/util/logging.h"

namespace cache_ext::bpf::ir {

namespace {

using verifier::Hook;
using verifier::Kfunc;

// Same stable identity the hand-written policies key their maps by.
uint64_t FolioIdentityKey(const Folio* folio) {
  return (folio->mapping->id() << 40) ^ folio->index;
}

uint64_t EvalAlu(AluOp op, uint64_t l, uint64_t r) {
  switch (op) {
    case AluOp::kAdd: return l + r;
    case AluOp::kSub: return l - r;
    case AluOp::kMul: return l * r;
    case AluOp::kDiv: return r == 0 ? 0 : l / r;
    case AluOp::kMod: return r == 0 ? 0 : l % r;
    case AluOp::kAnd: return l & r;
    case AluOp::kOr:  return l | r;
    case AluOp::kXor: return l ^ r;
    case AluOp::kLsh: return r >= 64 ? 0 : l << r;
    case AluOp::kRsh: return r >= 64 ? 0 : l >> r;
  }
  return 0;
}

bool EvalCond(Cond cond, uint64_t l, uint64_t r) {
  switch (cond) {
    case Cond::kEq: return l == r;
    case Cond::kNe: return l != r;
    case Cond::kLt: return l < r;
    case Cond::kLe: return l <= r;
    case Cond::kGt: return l > r;
    case Cond::kGe: return l >= r;
  }
  return false;
}

IterPlacement ToPlacement(LoopPlace place) {
  return place == LoopPlace::kMoveToTail ? IterPlacement::kMoveToTail
                                         : IterPlacement::kKeepInPlace;
}

}  // namespace

IrMap::IrMap(const MapDecl& decl)
    : decl_(decl), words_(decl.value_size / 8) {
  if (decl_.kind == IrMapKind::kArray) {
    array_.assign(static_cast<size_t>(decl_.max_entries) * words_, 0);
  }
}

uint64_t* IrMap::Lookup(uint64_t key) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  if (decl_.kind == IrMapKind::kArray) {
    if (key >= decl_.max_entries) {
      return nullptr;
    }
    return &array_[static_cast<size_t>(key) * words_];
  }
  auto it = hash_.find(key);
  return it == hash_.end() ? nullptr : it->second.get();
}

uint64_t IrMap::Update(uint64_t key, uint64_t value) {
  if (decl_.kind == IrMapKind::kArray) {
    if (key >= decl_.max_entries) {
      return 1;
    }
    array_[static_cast<size_t>(key) * words_] = value;
    return 0;
  }
  auto it = hash_.find(key);
  if (it == hash_.end()) {
    if (hash_.size() >= decl_.max_entries) {
      return 1;  // capacity bound enforced, not assumed
    }
    auto val = std::make_unique<uint64_t[]>(words_);
    for (size_t w = 0; w < words_; ++w) {
      val[w] = 0;
    }
    it = hash_.emplace(key, std::move(val)).first;
  }
  it->second[0] = value;
  return 0;
}

uint64_t IrMap::Delete(uint64_t key) {
  if (decl_.kind == IrMapKind::kArray) {
    if (key >= decl_.max_entries) {
      return 1;
    }
    for (size_t w = 0; w < words_; ++w) {
      array_[static_cast<size_t>(key) * words_ + w] = 0;
    }
    return 0;
  }
  return hash_.erase(key) > 0 ? 0 : 1;
}

IrRuntime::IrRuntime(IrPolicy policy) : policy_(std::move(policy)) {
  cache_ext::MutexLock lock(mu_);
  for (const MapDecl& decl : policy_.maps) {
    maps_.push_back(std::make_unique<IrMap>(decl));
  }
}

uint64_t IrRuntime::MapLookups() const {
  cache_ext::MutexLock lock(mu_);
  uint64_t total = 0;
  for (const auto& map : maps_) {
    total += map->lookups();
  }
  return total;
}

int64_t IrRuntime::Execute(Hook hook, CacheExtApi& api, const HookCtx& hctx) {
  const Program& prog = policy_.hook(hook);
  if (prog.empty()) {
    return 0;
  }
  cache_ext::MutexLock lock(mu_);
  std::array<uint64_t, kNumRegs> regs = {};
  ExecuteRange(0, prog.size(), prog, api, hctx, regs);
  return static_cast<int64_t>(regs[R0]);
}

bool IrRuntime::ExecuteRange(size_t begin, size_t end, const Program& prog,
                             CacheExtApi& api, const HookCtx& hctx,
                             std::array<uint64_t, kNumRegs>& regs) {
  size_t pc = begin;
  while (pc < end) {
    const Inst& ins = prog[pc];
    switch (ins.op) {
      case Op::kMovImm:
        regs[ins.dst] = static_cast<uint64_t>(ins.imm);
        break;
      case Op::kMovReg:
        regs[ins.dst] = regs[ins.src];
        break;
      case Op::kAluImm:
        regs[ins.dst] =
            EvalAlu(ins.alu, regs[ins.dst], static_cast<uint64_t>(ins.imm));
        break;
      case Op::kAluReg:
        regs[ins.dst] = EvalAlu(ins.alu, regs[ins.dst], regs[ins.src]);
        break;
      case Op::kJmp:
        pc = static_cast<size_t>(ins.target);
        continue;
      case Op::kJmpImm:
        if (EvalCond(ins.cond, regs[ins.dst], static_cast<uint64_t>(ins.imm))) {
          pc = static_cast<size_t>(ins.target);
          continue;
        }
        break;
      case Op::kJmpReg:
        if (EvalCond(ins.cond, regs[ins.dst], regs[ins.src])) {
          pc = static_cast<size_t>(ins.target);
          continue;
        }
        break;
      case Op::kCtxLoad:
        switch (ins.ctx) {
          case CtxField::kFolio:
            regs[ins.dst] =
                static_cast<uint64_t>(reinterpret_cast<uintptr_t>(hctx.folio));
            break;
          case CtxField::kNrRequested:
            regs[ins.dst] = hctx.evict ? hctx.evict->nr_candidates_requested
                            : hctx.readahead   ? hctx.readahead->nr_requested
                            : hctx.admit_order ? hctx.admit_order->nr_requested
                                               : 0;
            break;
          case CtxField::kIndex:
            regs[ins.dst] = hctx.admit        ? hctx.admit->index
                            : hctx.prefetch   ? hctx.prefetch->index
                            : hctx.readahead  ? hctx.readahead->index
                            : hctx.admit_order ? hctx.admit_order->index
                            : hctx.writeback   ? hctx.writeback->index
                                               : 0;
            break;
          case CtxField::kPrevIndex:
            regs[ins.dst] = hctx.prefetch    ? hctx.prefetch->prev_index
                            : hctx.readahead ? hctx.readahead->prev_index
                                             : 0;
            break;
          case CtxField::kDefaultWindow:
            regs[ins.dst] = hctx.prefetch    ? hctx.prefetch->default_window
                            : hctx.readahead ? hctx.readahead->default_window
                                             : 0;
            break;
          case CtxField::kPid:
            regs[ins.dst] = static_cast<uint64_t>(
                hctx.admit       ? hctx.admit->pid
                : hctx.prefetch  ? hctx.prefetch->pid
                : hctx.readahead ? hctx.readahead->pid
                : hctx.admit_order ? hctx.admit_order->pid
                                   : 0);
            break;
          case CtxField::kTid:
            regs[ins.dst] = static_cast<uint64_t>(
                hctx.admit       ? hctx.admit->tid
                : hctx.prefetch  ? hctx.prefetch->tid
                : hctx.readahead ? hctx.readahead->tid
                : hctx.admit_order ? hctx.admit_order->tid
                                   : 0);
            break;
          case CtxField::kIsWrite:
            regs[ins.dst] = (hctx.admit && hctx.admit->is_write) ||
                                    (hctx.admit_order &&
                                     hctx.admit_order->is_write)
                                ? 1
                                : 0;
            break;
          case CtxField::kTier:
            regs[ins.dst] = hctx.tier;
            break;
          case CtxField::kNrPages:
            regs[ins.dst] = hctx.writeback ? hctx.writeback->nr_pages : 0;
            break;
          case CtxField::kNrDirty:
            regs[ins.dst] = hctx.writeback ? hctx.writeback->nr_dirty : 0;
            break;
          case CtxField::kForSync:
            regs[ins.dst] =
                hctx.writeback && hctx.writeback->for_sync ? 1 : 0;
            break;
        }
        break;
      case Op::kMapLookup: {
        uint64_t* value = maps_[ins.map]->Lookup(regs[ins.src]);
        regs[R0] = static_cast<uint64_t>(reinterpret_cast<uintptr_t>(value));
        break;
      }
      case Op::kMapUpdate:
        regs[R0] = maps_[ins.map]->Update(regs[ins.dst], regs[ins.src]);
        break;
      case Op::kMapDelete:
        regs[R0] = maps_[ins.map]->Delete(regs[ins.dst]);
        break;
      case Op::kLoad: {
        const uint64_t* value =
            reinterpret_cast<const uint64_t*>(static_cast<uintptr_t>(regs[ins.src]));
        regs[ins.dst] = value == nullptr ? 0 : value[ins.off / 8];
        break;
      }
      case Op::kStore:
      case Op::kStoreImm: {
        uint64_t* value =
            reinterpret_cast<uint64_t*>(static_cast<uintptr_t>(regs[ins.dst]));
        if (value != nullptr) {
          value[ins.off / 8] = ins.op == Op::kStore
                                   ? regs[ins.src]
                                   : static_cast<uint64_t>(ins.imm);
        }
        break;
      }
      case Op::kFolioKey: {
        const Folio* folio =
            reinterpret_cast<const Folio*>(static_cast<uintptr_t>(regs[ins.src]));
        regs[ins.dst] = folio == nullptr ? 0 : FolioIdentityKey(folio);
        break;
      }
      case Op::kCall: {
        Folio* arg_folio = nullptr;
        switch (ins.kfunc) {
          case Kfunc::kListCreate: {
            auto id = api.ListCreate();
            regs[R0] = id.ok() ? *id : 0;
            break;
          }
          case Kfunc::kListAdd:
          case Kfunc::kListMove: {
            arg_folio =
                reinterpret_cast<Folio*>(static_cast<uintptr_t>(regs[R2]));
            const bool tail = regs[R3] != 0;
            const Status st =
                ins.kfunc == Kfunc::kListAdd
                    ? api.ListAdd(regs[R1], arg_folio, tail)
                    : api.ListMove(regs[R1], arg_folio, tail);
            regs[R0] = st.ok() ? 0 : 1;
            break;
          }
          case Kfunc::kListDel:
            arg_folio =
                reinterpret_cast<Folio*>(static_cast<uintptr_t>(regs[R1]));
            regs[R0] = api.ListDel(arg_folio).ok() ? 0 : 1;
            break;
          case Kfunc::kListSize: {
            auto size = api.ListSize(regs[R1]);
            regs[R0] = size.ok() ? *size : 0;
            break;
          }
          case Kfunc::kListIdOf: {
            arg_folio =
                reinterpret_cast<Folio*>(static_cast<uintptr_t>(regs[R1]));
            auto id = api.ListIdOf(arg_folio);
            regs[R0] = id.ok() ? *id : 0;
            break;
          }
          case Kfunc::kCurrentTask:
            regs[R0] = (static_cast<uint64_t>(
                            static_cast<uint32_t>(api.CurrentPid()))
                        << 32) |
                       static_cast<uint32_t>(api.CurrentTid());
            break;
          case Kfunc::kListIterate:
          case Kfunc::kListIterateScore:
            regs[R0] = 0;  // unreachable: the verifier rejects direct calls
            break;
        }
        regs[R1] = regs[R2] = regs[R3] = regs[R4] = regs[R5] = 0;
        break;
      }
      case Op::kLoopIterate:
      case Op::kLoopIterateScore: {
        const size_t body_begin = pc + 1;
        const size_t body_end = static_cast<size_t>(ins.target);
        IterOpts opts;
        opts.nr_scan =
            ins.bound_is_reg ? regs[ins.src] : static_cast<uint64_t>(ins.imm);
        opts.on_skip = ToPlacement(ins.on_skip);
        opts.on_evict = ToPlacement(ins.on_evict);
        const uint64_t list_id = regs[ins.dst];
        Status st;
        if (ins.op == Op::kLoopIterate) {
          st = api.ListIterate(list_id, opts, hctx.evict, [&](Folio* folio) {
            regs[R1] =
                static_cast<uint64_t>(reinterpret_cast<uintptr_t>(folio));
            ExecuteRange(body_begin, body_end, prog, api, hctx, regs);
            if (regs[R0] >= 2) {
              return IterVerdict::kStop;
            }
            return regs[R0] == 1 ? IterVerdict::kEvict : IterVerdict::kSkip;
          });
        } else {
          st = api.ListIterateScore(
              list_id, opts, hctx.evict, [&](Folio* folio) {
                regs[R1] =
                    static_cast<uint64_t>(reinterpret_cast<uintptr_t>(folio));
                ExecuteRange(body_begin, body_end, prog, api, hctx, regs);
                return static_cast<int64_t>(regs[R0]);
              });
        }
        // The loop clobbers r0 (completion status) and the scratch
        // registers, matching what the verifier assumes post-loop.
        regs[R0] = st.ok() ? 0 : 1;
        regs[R1] = regs[R2] = regs[R3] = regs[R4] = regs[R5] = 0;
        pc = body_end + 1;
        continue;
      }
      case Op::kLoopEnd:
        // Only reached as the end of a body range; treat as a range end.
        return false;
      case Op::kExit:
        return true;
    }
    ++pc;
  }
  return false;
}

}  // namespace cache_ext::bpf::ir
