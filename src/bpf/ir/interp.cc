#include "src/bpf/ir/interp.h"

#include <array>
#include <atomic>

#include "src/bpf/ir/exec.h"
#include "src/cache_ext/eviction_list.h"
#include "src/mm/address_space.h"
#include "src/util/logging.h"

namespace cache_ext::bpf::ir {

namespace {

using verifier::Hook;

// Map-value words are shared with concurrent invocations (and with the
// lock-free JIT steps), so all loads/stores through value pointers go
// through atomic_ref — same discipline as bpf::ArrayMap.
inline uint64_t ValueLoad(const uint64_t* p) {
  return std::atomic_ref<const uint64_t>(*p).load(std::memory_order_relaxed);
}

inline void ValueStore(uint64_t* p, uint64_t v) {
  std::atomic_ref<uint64_t>(*p).store(v, std::memory_order_relaxed);
}

}  // namespace

IrRuntime::IrRuntime(IrPolicy policy) : policy_(std::move(policy)) {
  for (const MapDecl& decl : policy_.maps) {
    maps_.push_back(std::make_unique<IrMap>(decl));
  }
}

uint64_t IrRuntime::MapLookups() const {
  uint64_t total = 0;
  for (const auto& map : maps_) {
    total += map->lookups();
  }
  return total;
}

int64_t IrRuntime::Execute(Hook hook, CacheExtApi& api, const HookCtx& hctx) {
  const Program& prog = policy_.hook(hook);
  if (prog.empty()) {
    return 0;
  }
  std::array<uint64_t, kNumRegs> regs = {};
  ExecuteRange(0, prog.size(), prog, api, hctx, regs);
  return static_cast<int64_t>(regs[R0]);
}

bool IrRuntime::ExecuteRange(size_t begin, size_t end, const Program& prog,
                             CacheExtApi& api, const HookCtx& hctx,
                             std::array<uint64_t, kNumRegs>& regs) {
  size_t pc = begin;
  while (pc < end) {
    const Inst& ins = prog[pc];
    switch (ins.op) {
      case Op::kMovImm:
        regs[ins.dst] = static_cast<uint64_t>(ins.imm);
        break;
      case Op::kMovReg:
        regs[ins.dst] = regs[ins.src];
        break;
      case Op::kAluImm:
        regs[ins.dst] =
            EvalAlu(ins.alu, regs[ins.dst], static_cast<uint64_t>(ins.imm));
        break;
      case Op::kAluReg:
        regs[ins.dst] = EvalAlu(ins.alu, regs[ins.dst], regs[ins.src]);
        break;
      case Op::kJmp:
        pc = static_cast<size_t>(ins.target);
        continue;
      case Op::kJmpImm:
        if (EvalCond(ins.cond, regs[ins.dst], static_cast<uint64_t>(ins.imm))) {
          pc = static_cast<size_t>(ins.target);
          continue;
        }
        break;
      case Op::kJmpReg:
        if (EvalCond(ins.cond, regs[ins.dst], regs[ins.src])) {
          pc = static_cast<size_t>(ins.target);
          continue;
        }
        break;
      case Op::kCtxLoad:
        regs[ins.dst] = LoadCtx(ins.ctx, hctx);
        break;
      case Op::kMapLookup: {
        uint64_t* value = maps_[ins.map]->Lookup(regs[ins.src]);
        regs[R0] = static_cast<uint64_t>(reinterpret_cast<uintptr_t>(value));
        break;
      }
      case Op::kMapUpdate:
        regs[R0] = maps_[ins.map]->Update(regs[ins.dst], regs[ins.src]);
        break;
      case Op::kMapDelete:
        regs[R0] = maps_[ins.map]->Delete(regs[ins.dst]);
        break;
      case Op::kLoad: {
        const uint64_t* value =
            reinterpret_cast<const uint64_t*>(static_cast<uintptr_t>(regs[ins.src]));
        regs[ins.dst] = value == nullptr ? 0 : ValueLoad(&value[ins.off / 8]);
        break;
      }
      case Op::kStore:
      case Op::kStoreImm: {
        uint64_t* value =
            reinterpret_cast<uint64_t*>(static_cast<uintptr_t>(regs[ins.dst]));
        if (value != nullptr) {
          ValueStore(&value[ins.off / 8],
                     ins.op == Op::kStore ? regs[ins.src]
                                          : static_cast<uint64_t>(ins.imm));
        }
        break;
      }
      case Op::kFolioKey: {
        const Folio* folio =
            reinterpret_cast<const Folio*>(static_cast<uintptr_t>(regs[ins.src]));
        regs[ins.dst] = folio == nullptr ? 0 : FolioIdentityKey(folio);
        break;
      }
      case Op::kCall:
        DoKfuncCall(ins.kfunc, api, regs.data());
        break;
      case Op::kLoopIterate:
      case Op::kLoopIterateScore: {
        const size_t body_begin = pc + 1;
        const size_t body_end = static_cast<size_t>(ins.target);
        IterOpts opts;
        opts.nr_scan =
            ins.bound_is_reg ? regs[ins.src] : static_cast<uint64_t>(ins.imm);
        opts.on_skip = ToPlacement(ins.on_skip);
        opts.on_evict = ToPlacement(ins.on_evict);
        const uint64_t list_id = regs[ins.dst];
        Status st;
        if (ins.op == Op::kLoopIterate) {
          st = api.ListIterate(list_id, opts, hctx.evict, [&](Folio* folio) {
            regs[R1] =
                static_cast<uint64_t>(reinterpret_cast<uintptr_t>(folio));
            ExecuteRange(body_begin, body_end, prog, api, hctx, regs);
            return VerdictFromR0(regs[R0]);
          });
        } else {
          st = api.ListIterateScore(
              list_id, opts, hctx.evict, [&](Folio* folio) {
                regs[R1] =
                    static_cast<uint64_t>(reinterpret_cast<uintptr_t>(folio));
                ExecuteRange(body_begin, body_end, prog, api, hctx, regs);
                return static_cast<int64_t>(regs[R0]);
              });
        }
        // The loop clobbers r0 (completion status) and the scratch
        // registers, matching what the verifier assumes post-loop.
        regs[R0] = st.ok() ? 0 : 1;
        regs[R1] = regs[R2] = regs[R3] = regs[R4] = regs[R5] = 0;
        pc = body_end + 1;
        continue;
      }
      case Op::kLoopEnd:
        // Only reached as the end of a body range; treat as a range end.
        return false;
      case Op::kExit:
        return true;
    }
    ++pc;
  }
  return false;
}

}  // namespace cache_ext::bpf::ir
