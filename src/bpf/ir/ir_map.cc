#include "src/bpf/ir/ir_map.h"

#include <algorithm>

#include "src/bpf/map.h"  // detail::ShardCountFor / detail::MixHash

namespace cache_ext::bpf::ir {

namespace {

constexpr uint8_t kEmpty = 0;
constexpr uint8_t kFull = 1;
constexpr uint8_t kTombstone = 2;

constexpr uint64_t kInitialTableCapacity = 16;

inline void WordStore(uint64_t* p, uint64_t v) {
  std::atomic_ref<uint64_t>(*p).store(v, std::memory_order_relaxed);
}

// The low MixHash bits pick the shard; slot probing starts from the high
// bits so keys that share a shard do not also share a probe sequence.
inline uint64_t SlotHash(uint64_t mixed) { return mixed >> 7; }

}  // namespace

IrMap::IrMap(const MapDecl& decl)
    : decl_(decl),
      words_(decl.value_size / 8),
      shards_(decl.kind == IrMapKind::kHash
                  ? detail::ShardCountFor(static_cast<uint32_t>(
                        std::min<uint64_t>(decl.max_entries, 1u << 30)))
                  : 1),
      shard_mask_(shards_.size() - 1) {
  if (decl_.kind == IrMapKind::kArray) {
    array_.assign(static_cast<size_t>(decl_.max_entries) * words_, 0);
    return;
  }
  for (Shard& shard : shards_) {
    shard.tables.push_back(std::make_unique<HashTable>(kInitialTableCapacity));
    shard.table.store(shard.tables.back().get(), std::memory_order_release);
  }
}

uint64_t* IrMap::Lookup(uint64_t key) {
  if (decl_.kind == IrMapKind::kArray) {
    lookups_.fetch_add(1, std::memory_order_relaxed);
    if (key >= decl_.max_entries) {
      return nullptr;
    }
    return &array_[static_cast<size_t>(key) * words_];
  }
  const uint64_t mixed = detail::MixHash(key);
  Shard& shard = shards_[mixed & shard_mask_];
  // Probe accounting in the percpu-counter style: plain add, no RMW.
  shard.lookups.store(shard.lookups.load(std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
  // Lock-free probe: the acquire pairs with the table-publish release (for
  // rehash) and the slot-state release (for in-place inserts), so a kFull
  // slot's key/value/block contents are fully visible.
  const HashTable* table = shard.table.load(std::memory_order_acquire);
  const uint64_t mask = table->mask;
  uint64_t idx = SlotHash(mixed) & mask;
  for (uint64_t probes = 0; probes <= mask; ++probes, idx = (idx + 1) & mask) {
    const Slot& slot = table->slots[idx];
    const uint8_t state = slot.state.load(std::memory_order_acquire);
    if (state == kEmpty) {
      return nullptr;
    }
    if (state == kFull && slot.key.load(std::memory_order_relaxed) == key) {
      return slot.value.load(std::memory_order_relaxed);
    }
  }
  return nullptr;
}

uint64_t IrMap::lookups() const {
  uint64_t total = lookups_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    total += shard.lookups.load(std::memory_order_relaxed);
  }
  return total;
}

IrMap::Slot* IrMap::FindLive(HashTable* table, uint64_t key, uint64_t hash) {
  const uint64_t mask = table->mask;
  uint64_t idx = hash & mask;
  for (uint64_t probes = 0; probes <= mask; ++probes, idx = (idx + 1) & mask) {
    Slot& slot = table->slots[idx];
    const uint8_t state = slot.state.load(std::memory_order_relaxed);
    if (state == kEmpty) {
      return nullptr;
    }
    if (state == kFull && slot.key.load(std::memory_order_relaxed) == key) {
      return &slot;
    }
  }
  return nullptr;
}

// Writer-side, shard lock held. Rebuilds the index into a fresh table
// (dropping tombstones, doubling until live entries fit under ~50%) and
// publishes it; the old table stays owned by the shard because a
// concurrent reader may still be probing it.
void IrMap::Rehash(Shard& shard) {
  HashTable* old = shard.table.load(std::memory_order_relaxed);
  uint64_t live = 0;
  for (uint64_t i = 0; i <= old->mask; ++i) {
    if (old->slots[i].state.load(std::memory_order_relaxed) == kFull) {
      ++live;
    }
  }
  uint64_t capacity = old->mask + 1;
  while ((live + 1) * 2 >= capacity) {
    capacity *= 2;
  }
  shard.tables.push_back(std::make_unique<HashTable>(capacity));
  HashTable* fresh = shard.tables.back().get();
  for (uint64_t i = 0; i <= old->mask; ++i) {
    Slot& from = old->slots[i];
    if (from.state.load(std::memory_order_relaxed) != kFull) {
      continue;
    }
    const uint64_t key = from.key.load(std::memory_order_relaxed);
    uint64_t idx = SlotHash(detail::MixHash(key)) & fresh->mask;
    while (fresh->slots[idx].state.load(std::memory_order_relaxed) != kEmpty) {
      idx = (idx + 1) & fresh->mask;
    }
    Slot& to = fresh->slots[idx];
    // Plain stores: nothing can observe `fresh` before the release
    // publish below.
    to.key.store(key, std::memory_order_relaxed);
    to.value.store(from.value.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    to.state.store(kFull, std::memory_order_relaxed);
    ++fresh->used;
  }
  shard.table.store(fresh, std::memory_order_release);
}

uint64_t IrMap::Update(uint64_t key, uint64_t value) {
  if (decl_.kind == IrMapKind::kArray) {
    if (key >= decl_.max_entries) {
      return 1;
    }
    WordStore(&array_[static_cast<size_t>(key) * words_], value);
    return 0;
  }
  const uint64_t mixed = detail::MixHash(key);
  Shard& shard = shards_[mixed & shard_mask_];
  SpinLockGuard lock(shard.mu);
  HashTable* table = shard.table.load(std::memory_order_relaxed);
  if (Slot* slot = FindLive(table, key, SlotHash(mixed))) {
    WordStore(&slot->value.load(std::memory_order_relaxed)[0], value);
    return 0;
  }
  // Reserve a slot in the global occupancy count before inserting so
  // max_entries is exact across shards (HashMap's reserve/rollback idiom),
  // then hand out a recycled or fresh zeroed block.
  if (size_.fetch_add(1, std::memory_order_relaxed) >= decl_.max_entries) {
    size_.fetch_sub(1, std::memory_order_relaxed);
    return 1;  // capacity bound enforced, not assumed
  }
  uint64_t* block;
  if (!shard.free_list.empty()) {
    block = shard.free_list.back();
    shard.free_list.pop_back();
  } else {
    shard.blocks.push_back(std::make_unique<uint64_t[]>(words_));
    block = shard.blocks.back().get();
  }
  // Zero through atomic words: a racing reader may still hold this
  // block's pointer from before a Delete recycled it.
  for (size_t w = 0; w < words_; ++w) {
    WordStore(&block[w], 0);
  }
  WordStore(&block[0], value);
  // Keep the table at most ~70% occupied (full + tombstones) so lock-free
  // probes stay short and always terminate on an empty slot.
  if ((table->used + 1) * 10 > (table->mask + 1) * 7) {
    Rehash(shard);
    table = shard.table.load(std::memory_order_relaxed);
  }
  // Claim the first tombstone on the probe path (or the terminating empty
  // slot). FindLive already proved the key absent.
  uint64_t idx = SlotHash(mixed) & table->mask;
  Slot* claim = nullptr;
  for (;; idx = (idx + 1) & table->mask) {
    Slot& slot = table->slots[idx];
    const uint8_t state = slot.state.load(std::memory_order_relaxed);
    if (state == kTombstone) {
      claim = &slot;
      break;
    }
    if (state == kEmpty) {
      claim = &slot;
      ++table->used;
      break;
    }
  }
  claim->key.store(key, std::memory_order_relaxed);
  claim->value.store(block, std::memory_order_relaxed);
  // Publish: after this release, a reader's acquire of `state` makes the
  // key, the value pointer, and the zeroed block contents visible.
  claim->state.store(kFull, std::memory_order_release);
  return 0;
}

uint64_t IrMap::Delete(uint64_t key) {
  if (decl_.kind == IrMapKind::kArray) {
    if (key >= decl_.max_entries) {
      return 1;
    }
    for (size_t w = 0; w < words_; ++w) {
      WordStore(&array_[static_cast<size_t>(key) * words_ + w], 0);
    }
    return 0;
  }
  const uint64_t mixed = detail::MixHash(key);
  Shard& shard = shards_[mixed & shard_mask_];
  SpinLockGuard lock(shard.mu);
  HashTable* table = shard.table.load(std::memory_order_relaxed);
  Slot* slot = FindLive(table, key, SlotHash(mixed));
  if (slot == nullptr) {
    return 1;
  }
  // Tombstone the slot, then recycle the block. A reader that loaded the
  // value pointer just before the state flip keeps a dereferenceable (but
  // recyclable) block — the SLAB_TYPESAFE_BY_RCU contract from the file
  // comment, unchanged.
  slot->state.store(kTombstone, std::memory_order_release);
  shard.free_list.push_back(slot->value.load(std::memory_order_relaxed));
  size_.fetch_sub(1, std::memory_order_relaxed);
  return 0;
}

uint64_t IrMap::Size() const {
  if (decl_.kind == IrMapKind::kArray) {
    return decl_.max_entries;
  }
  return size_.load(std::memory_order_relaxed);
}

void IrMap::ForEach(
    const std::function<void(uint64_t key, const uint64_t* words)>& fn)
    const {
  if (decl_.kind == IrMapKind::kArray) {
    for (uint64_t key = 0; key < decl_.max_entries; ++key) {
      fn(key, &array_[static_cast<size_t>(key) * words_]);
    }
    return;
  }
  for (const Shard& shard : shards_) {
    SpinLockGuard lock(shard.mu);
    const HashTable* table = shard.table.load(std::memory_order_relaxed);
    for (uint64_t i = 0; i <= table->mask; ++i) {
      const Slot& slot = table->slots[i];
      if (slot.state.load(std::memory_order_relaxed) == kFull) {
        fn(slot.key.load(std::memory_order_relaxed),
           slot.value.load(std::memory_order_relaxed));
      }
    }
  }
}

}  // namespace cache_ext::bpf::ir
