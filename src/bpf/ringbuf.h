// BPF ring buffer (BPF_MAP_TYPE_RINGBUF): MPSC byte ring used to notify
// userspace of kernel events.
//
// The paper uses it twice: (1) to measure the "best-case" overhead of a
// userspace-dispatch architecture (Table 1), and (2) for LHD's
// reconfiguration trigger (§5.2). Semantics mirror the kernel: fixed-size
// power-of-two buffer, reserve/commit producer API, records dropped (not
// blocked) when the consumer lags.

#ifndef SRC_BPF_RINGBUF_H_
#define SRC_BPF_RINGBUF_H_

#include <cstdint>
#include <cstring>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "src/util/logging.h"

namespace cache_ext::bpf {

class RingBuf {
 public:
  // Overflow/drop accounting, snapshotted under the ring lock. A full ring
  // *drops* reservations — it never blocks the producer (a policy program)
  // and never corrupts in-flight records; these counters are how operators
  // observe that degradation.
  struct Stats {
    uint64_t produced = 0;       // records committed
    uint64_t dropped = 0;        // reservations refused (ring full/injected)
    uint64_t consumed = 0;       // records drained by the consumer
    uint32_t bytes_pending = 0;  // currently unconsumed bytes
    uint32_t peak_bytes_pending = 0;  // high-water mark of bytes_pending
  };

  // size_bytes is rounded up to a power of two.
  explicit RingBuf(uint32_t size_bytes);
  RingBuf(const RingBuf&) = delete;
  RingBuf& operator=(const RingBuf&) = delete;

  // Producer: copy `data` in as one record. Returns false (and counts a
  // drop) when there is no room.
  bool Output(std::span<const uint8_t> data);

  template <typename T>
  bool OutputValue(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    return Output(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t*>(&value), sizeof(T)));
  }

  // Consumer: drain all pending records, invoking fn on each. Returns the
  // number of records consumed. Single consumer, like libbpf's ring_buffer.
  uint64_t Consume(const std::function<void(std::span<const uint8_t>)>& fn);

  uint64_t dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
  }
  uint64_t produced() const {
    std::lock_guard<std::mutex> lock(mu_);
    return produced_;
  }
  uint32_t BytesPending() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<uint32_t>(head_ - tail_);
  }
  Stats stats() const;

 private:
  // Each record: u32 length header, then payload, padded to 8 bytes.
  static constexpr uint32_t kHeaderSize = 8;
  static uint32_t RoundUpPow2(uint32_t v);

  uint32_t size_;
  uint32_t mask_;
  std::vector<uint8_t> data_;
  mutable std::mutex mu_;
  uint64_t head_ = 0;  // producer position
  uint64_t tail_ = 0;  // consumer position
  uint64_t produced_ = 0;
  uint64_t dropped_ = 0;
  uint64_t consumed_ = 0;
  uint32_t peak_pending_ = 0;
};

}  // namespace cache_ext::bpf

#endif  // SRC_BPF_RINGBUF_H_
