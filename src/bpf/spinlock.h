// bpf_spin_lock equivalent: a tiny non-recursive spinlock.
//
// The paper's MGLRU policy serializes generation aging with an eBPF spinlock
// (§5.3). Kernel bpf_spin_lock forbids sleeping and nesting; we provide the
// same shape (try-based acquire with bounded spinning plus a fallback yield)
// so policies written against it look like their eBPF counterparts.

#ifndef SRC_BPF_SPINLOCK_H_
#define SRC_BPF_SPINLOCK_H_

#include <atomic>
#include <thread>

namespace cache_ext::bpf {

class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void Lock() {
    int spins = 0;
    while (flag_.test_and_set(std::memory_order_acquire)) {
      if (++spins > 1024) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }

  void Unlock() { flag_.clear(std::memory_order_release); }

  bool TryLock() { return !flag_.test_and_set(std::memory_order_acquire); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

class SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& lock) : lock_(lock) { lock_.Lock(); }
  ~SpinLockGuard() { lock_.Unlock(); }
  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace cache_ext::bpf

#endif  // SRC_BPF_SPINLOCK_H_
