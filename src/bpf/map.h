// eBPF map equivalents: BPF_MAP_TYPE_HASH and BPF_MAP_TYPE_ARRAY.
//
// Policies in this reproduction are written against the same constrained
// interface their eBPF counterparts use (§4.2.4): maps have a fixed
// max_entries set at "load" time, inserts FAIL when the map is full (E2BIG
// in the kernel; policies must handle it), lookups return pointers into the
// map whose pointees may be updated atomically, and all operations are
// thread-safe, as kernel eBPF maps are.
//
// Concurrency: HashMap is lock-striped into power-of-two bucket shards, each
// with its own mutex, mirroring the kernel's per-bucket raw_spin_lock in
// kernel/bpf/hashtab.c. max_entries stays an exact global bound (the kernel
// tracks this with a percpu elem counter; we use one atomic with
// reserve/rollback). ArrayMap is lock-free: the value array is preallocated
// and never moves, and Read/Store/FetchAdd use std::atomic_ref so concurrent
// lanes race benignly, like kernel array maps.

#ifndef SRC_BPF_MAP_H_
#define SRC_BPF_MAP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/util/logging.h"
#include "src/util/thread_annotations.h"

namespace cache_ext::bpf {

enum class MapUpdateFlags {
  kAny,      // BPF_ANY: create or update
  kNoExist,  // BPF_NOEXIST: create only
  kExist,    // BPF_EXIST: update only
};

namespace detail {

// Shard count scales with capacity: tiny maps (counters, a handful of
// streams) get one shard; big per-folio metadata maps get 16-way striping.
// Always a power of two so shard selection is a mask.
inline uint32_t ShardCountFor(uint32_t max_entries) {
  if (max_entries >= 128) return 16;
  if (max_entries >= 16) return 4;
  return 1;
}

// Finalizer mix (murmur3) so pointer-ish hashes with aligned low bits still
// spread across shards.
inline uint64_t MixHash(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

}  // namespace detail

// bpf_map_update_elem/bpf_map_lookup_elem/bpf_map_delete_elem semantics.
template <typename K, typename V>
class HashMap {
 public:
  explicit HashMap(uint32_t max_entries)
      : max_entries_(max_entries),
        shard_mask_(detail::ShardCountFor(max_entries) - 1),
        shards_(detail::ShardCountFor(max_entries)) {
    CHECK_GT(max_entries, 0u);
    for (Shard& s : shards_) {
      s.map.reserve(max_entries / shards_.size() + 1);
    }
  }
  HashMap(const HashMap&) = delete;
  HashMap& operator=(const HashMap&) = delete;

  // Returns false on failure (map full, or flags violated). Single hash
  // probe: try_emplace either lands the new element or hands back the
  // existing one; a capacity overflow rolls the insert back.
  bool Update(const K& key, const V& value,
              MapUpdateFlags flags = MapUpdateFlags::kAny) {
    if (fault::InjectFault(fault::points::kBpfMapUpdate)) {
      return false;  // injected -ENOMEM/-E2BIG
    }
    Shard& shard = ShardFor(key);
    MutexLock lock(shard.mu);
    auto [it, inserted] = shard.map.try_emplace(key, value);
    if (!inserted) {
      if (flags == MapUpdateFlags::kNoExist) {
        return false;
      }
      it->second = value;
      return true;
    }
    if (flags == MapUpdateFlags::kExist ||
        size_.fetch_add(1, std::memory_order_relaxed) >= max_entries_) {
      if (flags != MapUpdateFlags::kExist) {
        size_.fetch_sub(1, std::memory_order_relaxed);  // -E2BIG: roll back
      }
      shard.map.erase(it);
      return false;
    }
    return true;
  }

  // Pointer into the map (stable until the element is deleted), or nullptr.
  // Mirrors bpf_map_lookup_elem returning a PTR_TO_MAP_VALUE.
  V* Lookup(const K& key) {
    if (fault::InjectFault(fault::points::kBpfMapLookup)) {
      return nullptr;  // injected lookup miss
    }
    Shard& shard = ShardFor(key);
    MutexLock lock(shard.mu);
    auto it = shard.map.find(key);
    return it == shard.map.end() ? nullptr : &it->second;
  }

  bool Delete(const K& key) {
    Shard& shard = ShardFor(key);
    MutexLock lock(shard.mu);
    if (shard.map.erase(key) == 0) {
      return false;
    }
    size_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  uint32_t Size() const { return size_.load(std::memory_order_relaxed); }
  uint32_t max_entries() const { return max_entries_; }
  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }

  // bpf_for_each_map_elem equivalent; fn(key, value&) -> bool keep_going.
  // Locks one shard at a time, so concurrent mutators only stall on the
  // shard currently being walked.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (Shard& shard : shards_) {
      MutexLock lock(shard.mu);
      for (auto& [key, value] : shard.map) {
        if (!fn(key, value)) {
          return;
        }
      }
    }
  }

  // Visits only shard `shard_index` (< num_shards()). Batched consumers —
  // e.g. a drain that ages one stripe of per-folio metadata per reclaim
  // round — use this to bound lock hold time instead of walking the whole
  // map under ForEach. fn(key, value&) -> bool keep_going.
  template <typename Fn>
  void ForEachShard(uint32_t shard_index, Fn&& fn) {
    CHECK(shard_index < shards_.size());
    Shard& shard = shards_[shard_index];
    MutexLock lock(shard.mu);
    for (auto& [key, value] : shard.map) {
      if (!fn(key, value)) {
        return;
      }
    }
  }

  void Clear() {
    for (Shard& shard : shards_) {
      MutexLock lock(shard.mu);
      size_.fetch_sub(static_cast<uint32_t>(shard.map.size()),
                      std::memory_order_relaxed);
      shard.map.clear();
    }
  }

 private:
  struct Shard {
    Mutex mu;
    std::unordered_map<K, V> map CACHE_EXT_GUARDED_BY(mu);
  };

  Shard& ShardFor(const K& key) {
    const uint64_t h = detail::MixHash(std::hash<K>{}(key));
    return shards_[h & shard_mask_];
  }

  const uint32_t max_entries_;
  const uint64_t shard_mask_;
  // Committed element count across all shards; exact (reserve/rollback), so
  // max_entries keeps kernel -E2BIG semantics under concurrency.
  std::atomic<uint32_t> size_{0};
  std::vector<Shard> shards_;
};

// BPF_MAP_TYPE_ARRAY: fixed-size array of values, indexed by u32. Lookups of
// out-of-range indices fail (return nullptr), as in the kernel. The backing
// store is preallocated and never reallocates, so Lookup pointers stay valid
// for the map's lifetime; Read/Store/FetchAdd give lock-free atomic access
// for trivially copyable V (kernel array-map values are plain memory that
// programs access with atomic ops when they race).
template <typename V>
class ArrayMap {
 public:
  explicit ArrayMap(uint32_t max_entries)
      : values_(max_entries) {
    CHECK_GT(max_entries, 0u);
  }

  V* Lookup(uint32_t index) {
    return index < values_.size() ? &values_[index] : nullptr;
  }
  const V* Lookup(uint32_t index) const {
    return index < values_.size() ? &values_[index] : nullptr;
  }

  bool Update(uint32_t index, const V& value) {
    if (index >= values_.size()) {
      return false;
    }
    if constexpr (std::is_trivially_copyable_v<V>) {
      std::atomic_ref<V>(values_[index]).store(value,
                                               std::memory_order_relaxed);
    } else {
      values_[index] = value;
    }
    return true;
  }

  // Lock-free atomic read; returns false for out-of-range indices.
  bool Read(uint32_t index, V* out) const {
    static_assert(std::is_trivially_copyable_v<V>,
                  "atomic ArrayMap::Read requires trivially copyable V");
    if (index >= values_.size()) {
      return false;
    }
    *out = std::atomic_ref<V>(values_[index]).load(std::memory_order_relaxed);
    return true;
  }

  // Lock-free atomic add for counter-style values (e.g. per-tier hit
  // counters); returns the previous value, or 0 for out-of-range indices.
  template <typename U = V,
            typename = std::enable_if_t<std::is_integral_v<U>>>
  V FetchAdd(uint32_t index, V delta) {
    if (index >= values_.size()) {
      return V{};
    }
    return std::atomic_ref<V>(values_[index])
        .fetch_add(delta, std::memory_order_relaxed);
  }

  uint32_t max_entries() const {
    return static_cast<uint32_t>(values_.size());
  }

 private:
  mutable std::vector<V> values_;
};

}  // namespace cache_ext::bpf

#endif  // SRC_BPF_MAP_H_
