// eBPF map equivalents: BPF_MAP_TYPE_HASH and BPF_MAP_TYPE_ARRAY.
//
// Policies in this reproduction are written against the same constrained
// interface their eBPF counterparts use (§4.2.4): maps have a fixed
// max_entries set at "load" time, inserts FAIL when the map is full (E2BIG
// in the kernel; policies must handle it), lookups return pointers into the
// map whose pointees may be updated atomically, and all operations are
// thread-safe, as kernel eBPF maps are.

#ifndef SRC_BPF_MAP_H_
#define SRC_BPF_MAP_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/util/logging.h"

namespace cache_ext::bpf {

enum class MapUpdateFlags {
  kAny,      // BPF_ANY: create or update
  kNoExist,  // BPF_NOEXIST: create only
  kExist,    // BPF_EXIST: update only
};

// bpf_map_update_elem/bpf_map_lookup_elem/bpf_map_delete_elem semantics.
template <typename K, typename V>
class HashMap {
 public:
  explicit HashMap(uint32_t max_entries) : max_entries_(max_entries) {
    CHECK_GT(max_entries, 0u);
    map_.reserve(max_entries);
  }
  HashMap(const HashMap&) = delete;
  HashMap& operator=(const HashMap&) = delete;

  // Returns false on failure (map full, or flags violated).
  bool Update(const K& key, const V& value,
              MapUpdateFlags flags = MapUpdateFlags::kAny) {
    if (fault::InjectFault(fault::points::kBpfMapUpdate)) {
      return false;  // injected -ENOMEM/-E2BIG
    }
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      if (flags == MapUpdateFlags::kNoExist) {
        return false;
      }
      it->second = value;
      return true;
    }
    if (flags == MapUpdateFlags::kExist) {
      return false;
    }
    if (map_.size() >= max_entries_) {
      return false;  // -E2BIG
    }
    map_.emplace(key, value);
    return true;
  }

  // Pointer into the map (stable until the element is deleted), or nullptr.
  // Mirrors bpf_map_lookup_elem returning a PTR_TO_MAP_VALUE.
  V* Lookup(const K& key) {
    if (fault::InjectFault(fault::points::kBpfMapLookup)) {
      return nullptr;  // injected lookup miss
    }
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }

  bool Delete(const K& key) {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.erase(key) > 0;
  }

  uint32_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<uint32_t>(map_.size());
  }
  uint32_t max_entries() const { return max_entries_; }

  // bpf_for_each_map_elem equivalent; fn(key, value&) -> bool keep_going.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [key, value] : map_) {
      if (!fn(key, value)) {
        break;
      }
    }
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
  }

 private:
  const uint32_t max_entries_;
  mutable std::mutex mu_;
  std::unordered_map<K, V> map_;
};

// BPF_MAP_TYPE_ARRAY: fixed-size array of values, indexed by u32. Lookups of
// out-of-range indices fail (return nullptr), as in the kernel.
template <typename V>
class ArrayMap {
 public:
  explicit ArrayMap(uint32_t max_entries)
      : values_(max_entries) {
    CHECK_GT(max_entries, 0u);
  }

  V* Lookup(uint32_t index) {
    return index < values_.size() ? &values_[index] : nullptr;
  }
  const V* Lookup(uint32_t index) const {
    return index < values_.size() ? &values_[index] : nullptr;
  }

  bool Update(uint32_t index, const V& value) {
    if (index >= values_.size()) {
      return false;
    }
    values_[index] = value;
    return true;
  }

  uint32_t max_entries() const {
    return static_cast<uint32_t>(values_.size());
  }

 private:
  std::vector<V> values_;
};

}  // namespace cache_ext::bpf

#endif  // SRC_BPF_MAP_H_
