// BPF_MAP_TYPE_FOLIO_STORAGE: folio-local storage, modelled on the
// kernel's bpf_local_storage family (task/inode/sk/cgroup storage,
// kernel/bpf/bpf_local_storage.c).
//
// A conventional bpf::HashMap keyed by Folio* pays a hash, a probe and
// a shard lock on every page-cache event. Local storage instead hangs
// the element off the owning object: at map construction the map claims
// one of the kFolioLocalStorageSlots slots embedded in every Folio (the
// analogue of bpf_local_storage_cache_idx_get() assigning a cache index
// at map alloc), and Lookup becomes a single indexed atomic load:
//
//   folio->bpf_storage[slot]  ->  Elem{folio, value}  ->  &value
//
// Semantics mirrored from the kernel:
//   * GetOrCreate == bpf_*_storage_get(BPF_LOCAL_STORAGE_GET_F_CREATE):
//     returns existing storage or transparently allocates it, nullptr
//     when the map is at max_entries (-E2BIG; policies must handle it,
//     as with HashMap::Update).
//   * Owner lifetime: when a folio is freed on ANY path — eviction,
//     truncation, cache teardown, verifier dry-run teardown — ~Folio
//     hands the element back via FolioStorageDirectory::OnFolioFree,
//     like bpf_local_storage_destroy on task/inode death. Policies
//     cannot leak per-folio state even when folio_removed never fires.
//   * Elements live in a pool preallocated at construction, so the
//     steady state allocates nothing (the kernel allocates per-elem
//     from slab; we trade that for strict max_entries preallocation,
//     which every other map in this layer already does).
//
// Fallback: when all folio slots are taken (more live local-storage
// maps than slots, or slot mode disabled for ablation), the map
// degrades to an internal lock-striped HashMap with identical
// semantics. The verifier budgets this path too — a local-storage map
// declares the same max_entries either way (DeclareLocalStorageMap).
//
// Concurrency: Lookup is lock-free (one acquire load). GetOrCreate and
// Delete serialize on one map mutex — creates/deletes are orders of
// magnitude rarer than lookups (folio add/remove vs every access).
// Folio-free vs map-destroy races are settled by an atomic exchange on
// the folio slot: whoever detaches the element recycles it (see
// FolioStorageDirectory::OnFolioFree). Lock order: directory -> map.

#ifndef SRC_BPF_FOLIO_LOCAL_STORAGE_H_
#define SRC_BPF_FOLIO_LOCAL_STORAGE_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "src/bpf/map.h"
#include "src/mm/folio.h"
#include "src/mm/folio_storage.h"
#include "src/util/logging.h"
#include "src/util/thread_annotations.h"

namespace cache_ext::bpf {

// Counter snapshot for observability (CgroupCacheStats ext_* fields).
struct FolioLocalStorageStats {
  uint64_t lookups = 0;        // resolutions (slot_hits + fallback_lookups)
  uint64_t slot_hits = 0;      //   ... resolved via the folio slot
  uint64_t fallback_lookups = 0;  // ... resolved via the hash fallback
  uint64_t creates = 0;
  uint64_t deletes = 0;           // explicit Delete() calls
  uint64_t owner_frees = 0;       // elements reclaimed by folio free
  bool using_slot = false;
  int32_t slot = -1;
};

template <typename T>
class FolioLocalStorage final : public FolioStorageOwner {
  static_assert(std::is_default_constructible_v<T>,
                "local storage values are zero-initialized on create");

 public:
  explicit FolioLocalStorage(uint32_t max_entries)
      : max_entries_(max_entries) {
    CHECK_GT(max_entries, 0u);
    slot_ = FolioStorageDirectory::Instance().AcquireSlot(this);
    if (slot_ >= 0) {
      pool_ = std::make_unique<Elem[]>(max_entries_);
      for (uint32_t i = 0; i < max_entries_; ++i) {
        pool_[i].next_free = i + 1 < max_entries_ ? i + 1 : kNil;
      }
      free_head_ = 0;
    } else {
      fallback_ = std::make_unique<HashMap<const Folio*, T>>(max_entries_);
      FolioStorageDirectory::Instance().RegisterFallback(this);
    }
  }

  ~FolioLocalStorage() override {
    if (slot_ >= 0) {
      // Detach surviving elements from their folios first (a policy
      // detached with folios still resident leaves live storage), then
      // release the slot — ReleaseSlot's writer lock waits out any
      // in-flight folio free that already holds an element pointer, so
      // the pool outlives every FreeFolioElem call.
      {
        MutexLock lock(mu_);
        for (uint32_t i = 0; i < max_entries_; ++i) {
          Elem& elem = pool_[i];
          Folio* folio = elem.folio;
          if (folio == nullptr) {
            continue;
          }
          if (folio->bpf_storage[slot_].exchange(
                  nullptr, std::memory_order_acq_rel) != nullptr) {
            elem.folio = nullptr;  // we won the detach; recycle in place
          }
        }
      }
      FolioStorageDirectory::Instance().ReleaseSlot(slot_, this);
    } else {
      FolioStorageDirectory::Instance().UnregisterFallback(this);
    }
  }

  FolioLocalStorage(const FolioLocalStorage&) = delete;
  FolioLocalStorage& operator=(const FolioLocalStorage&) = delete;

  // bpf_*_storage_get(..., 0): existing storage or nullptr. The hot
  // path — one atomic load off the folio, no hash, no lock.
  T* Lookup(const Folio* folio) {
    if (slot_ >= 0) {
      void* p = folio->bpf_storage[slot_].load(std::memory_order_acquire);
      if (p == nullptr) {
        return nullptr;
      }
      Bump(slot_hits_);
      return &static_cast<Elem*>(p)->value;
    }
    Bump(fallback_lookups_);
    return fallback_->Lookup(folio);
  }

  // bpf_*_storage_get(..., BPF_LOCAL_STORAGE_GET_F_CREATE): existing
  // storage, or a zero-initialized element; nullptr when the map is
  // full (-E2BIG).
  T* GetOrCreate(Folio* folio) {
    if (slot_ < 0) {
      Bump(fallback_lookups_);
      if (T* existing = fallback_->Lookup(folio)) {
        return existing;
      }
      if (fallback_->Update(folio, T{}, MapUpdateFlags::kNoExist)) {
        creates_.fetch_add(1, std::memory_order_relaxed);
      }
      return fallback_->Lookup(folio);  // ours, a racing create, or full
    }
    if (void* p = folio->bpf_storage[slot_].load(std::memory_order_acquire)) {
      Bump(slot_hits_);
      return &static_cast<Elem*>(p)->value;
    }
    MutexLock lock(mu_);
    // Re-check under the map lock: a racing lane may have installed
    // storage between the load above and here.
    if (void* p = folio->bpf_storage[slot_].load(std::memory_order_acquire)) {
      Bump(slot_hits_);
      return &static_cast<Elem*>(p)->value;
    }
    if (free_head_ == kNil) {
      return nullptr;  // -E2BIG
    }
    Elem& elem = pool_[free_head_];
    free_head_ = elem.next_free;
    elem.folio = folio;
    elem.value = T{};
    folio->bpf_storage[slot_].store(&elem, std::memory_order_release);
    size_.fetch_add(1, std::memory_order_relaxed);
    creates_.fetch_add(1, std::memory_order_relaxed);
    return &elem.value;
  }

  // bpf_*_storage_delete. Returns false when the folio had no storage.
  bool Delete(Folio* folio) {
    if (slot_ < 0) {
      if (!fallback_->Delete(folio)) {
        return false;
      }
      deletes_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    MutexLock lock(mu_);
    void* p = folio->bpf_storage[slot_].exchange(nullptr,
                                                 std::memory_order_acq_rel);
    if (p == nullptr) {
      return false;
    }
    Recycle(static_cast<Elem*>(p));
    deletes_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  // bpf_for_each_map_elem equivalent; fn(Folio*, T&) -> bool keep_going.
  // Slot mode walks the pool under the map lock (creates/deletes stall,
  // lock-free lookups do not).
  template <typename Fn>
  void ForEach(Fn&& fn) {
    if (slot_ < 0) {
      fallback_->ForEach([&fn](const Folio* folio, T& value) {
        return fn(const_cast<Folio*>(folio), value);
      });
      return;
    }
    MutexLock lock(mu_);
    for (uint32_t i = 0; i < max_entries_; ++i) {
      Elem& elem = pool_[i];
      if (elem.folio != nullptr && !fn(elem.folio, elem.value)) {
        return;
      }
    }
  }

  uint32_t Size() const {
    return slot_ >= 0 ? size_.load(std::memory_order_relaxed)
                      : fallback_->Size();
  }
  uint32_t max_entries() const { return max_entries_; }
  bool using_slot() const { return slot_ >= 0; }
  int32_t slot() const { return slot_; }

  FolioLocalStorageStats Stats() const {
    FolioLocalStorageStats s;
    s.slot_hits = slot_hits_.load(std::memory_order_relaxed);
    s.fallback_lookups = fallback_lookups_.load(std::memory_order_relaxed);
    s.lookups = s.slot_hits + s.fallback_lookups;
    s.creates = creates_.load(std::memory_order_relaxed);
    s.deletes = deletes_.load(std::memory_order_relaxed);
    s.owner_frees = owner_frees_.load(std::memory_order_relaxed);
    s.using_slot = slot_ >= 0;
    s.slot = slot_;
    return s;
  }

  // FolioStorageOwner: the folio-free path detached `elem` from the
  // dying folio and hands it back (directory lock held shared; the
  // map cannot be destroyed concurrently — see ~FolioLocalStorage).
  void FreeFolioElem(Folio* folio, void* elem) override {
    (void)folio;
    MutexLock lock(mu_);
    Recycle(static_cast<Elem*>(elem));
    owner_frees_.fetch_add(1, std::memory_order_relaxed);
  }

  void DropFolio(Folio* folio) override {
    if (fallback_->Delete(folio)) {
      owner_frees_.fetch_add(1, std::memory_order_relaxed);
    }
  }

 private:
  struct Elem {
    Folio* folio = nullptr;   // non-null iff in use
    uint32_t next_free = 0;   // freelist link while free
    T value{};
  };

  static constexpr uint32_t kNil = ~0u;

  // Statistical counter bump: a relaxed load+store instead of an atomic
  // RMW. Concurrent bumps may drop increments — observability counters
  // tolerate that — and the per-event path sheds the locked RMW, which
  // costs more than the storage lookup itself.
  static void Bump(std::atomic<uint64_t>& counter) {
    counter.store(counter.load(std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
  }

  void Recycle(Elem* elem) CACHE_EXT_REQUIRES(mu_) {
    elem->folio = nullptr;
    elem->next_free = free_head_;
    free_head_ = static_cast<uint32_t>(elem - pool_.get());
    size_.fetch_sub(1, std::memory_order_relaxed);
  }

  const uint32_t max_entries_;
  int32_t slot_ = -1;

  // Slot mode: preallocated element pool + freelist.
  Mutex mu_;
  std::unique_ptr<Elem[]> pool_;
  uint32_t free_head_ CACHE_EXT_GUARDED_BY(mu_) = kNil;
  std::atomic<uint32_t> size_{0};

  // Fallback mode: the conventional lock-striped map.
  std::unique_ptr<HashMap<const Folio*, T>> fallback_;

  std::atomic<uint64_t> slot_hits_{0};
  std::atomic<uint64_t> fallback_lookups_{0};
  std::atomic<uint64_t> creates_{0};
  std::atomic<uint64_t> deletes_{0};
  std::atomic<uint64_t> owner_frees_{0};
};

}  // namespace cache_ext::bpf

#endif  // SRC_BPF_FOLIO_LOCAL_STORAGE_H_
