// Key-value workload generators: YCSB A-F (+ uniform variants), synthetic
// Twitter-cache clusters, and the mixed GET-SCAN workload.

#ifndef SRC_WORKLOADS_KV_WORKLOAD_H_
#define SRC_WORKLOADS_KV_WORKLOAD_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "src/util/rng.h"
#include "src/workloads/distributions.h"

namespace cache_ext::workloads {

enum class OpType {
  kRead,
  kUpdate,
  kInsert,
  kScan,
  kReadModifyWrite,
};

struct KvOp {
  OpType type = OpType::kRead;
  uint64_t key_index = 0;
  uint32_t scan_len = 0;  // records, for kScan
};

// Stateless-per-lane op stream; generators are shared across lanes and must
// be thread-compatible (all mutable state is atomic).
class KvGenerator {
 public:
  virtual ~KvGenerator() = default;
  virtual KvOp Next(Rng& rng) = 0;
  virtual uint64_t num_keys() const = 0;
  virtual uint32_t value_size() const = 0;

  // Canonical key encoding: fixed width so lexicographic == numeric order.
  static std::string KeyFor(uint64_t index) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "user%012llu",
                  static_cast<unsigned long long>(index));
    return std::string(buf);
  }
  // Deterministic value payload for a key.
  static std::string ValueFor(uint64_t index, uint32_t size);
};

// --- YCSB -------------------------------------------------------------------

enum class YcsbWorkload {
  kA,          // 50% read / 50% update, zipfian
  kB,          // 95% read / 5% update, zipfian
  kC,          // 100% read, zipfian
  kD,          // 95% read / 5% insert, latest
  kE,          // 95% scan / 5% insert, zipfian
  kF,          // 50% read / 50% read-modify-write, zipfian
  kUniform,    // 100% read, uniform
  kUniformRW,  // 50% read / 50% update, uniform
};

std::string_view YcsbWorkloadName(YcsbWorkload w);

struct YcsbConfig {
  YcsbWorkload workload = YcsbWorkload::kC;
  uint64_t record_count = 100000;
  uint32_t value_size = 512;
  double zipf_theta = 0.99;
  uint32_t max_scan_len = 100;
};

class YcsbGenerator : public KvGenerator {
 public:
  explicit YcsbGenerator(const YcsbConfig& config);

  KvOp Next(Rng& rng) override;
  uint64_t num_keys() const override {
    return insert_cursor_.load(std::memory_order_relaxed);
  }
  uint32_t value_size() const override { return config_.value_size; }

 private:
  uint64_t ChooseKey(Rng& rng);

  YcsbConfig config_;
  std::unique_ptr<ScrambledZipfianGenerator> zipf_;
  std::unique_ptr<LatestGenerator> latest_;
  std::atomic<uint64_t> insert_cursor_;
};

// --- Twitter production-cache clusters (synthetic, Fig. 8) -------------------

// Qualitative regimes observed across the published Twitter cluster analyses;
// each cluster in Fig. 8 maps to one (see DESIGN.md's substitution table).
enum class TwitterPattern {
  kShiftingHotSet,   // recency-dominant, drifting working set (c17, c18)
  kWriteReread,      // write-heavy, immediate re-reads, uniform (c24)
  kBimodalPeriodic,  // zipfian foreground + cyclic periodic rescans (c34)
  kStableSkewed,     // high, stationary skew (c52)
};

struct TwitterClusterConfig {
  int cluster_id = 0;
  TwitterPattern pattern = TwitterPattern::kStableSkewed;
  uint64_t num_keys = 100000;
  uint32_t value_size = 512;
  double zipf_theta = 0.9;
  double write_ratio = 0.1;
  // kShiftingHotSet: window size and drift step (keys) per op.
  uint64_t window_keys = 10000;
  double drift_per_op = 0.05;
  // kBimodalPeriodic: fraction of ops in the cyclic rescan stream.
  double cyclic_ratio = 0.2;
  uint64_t cyclic_keys = 20000;
  // kWriteReread: how many key-groups back the lagged re-read stream looks
  // (far enough that the target has been evicted, forcing refaults).
  uint64_t reread_lag_groups = 400;
};

// Canned configs for the five clusters in Fig. 8.
TwitterClusterConfig TwitterCluster(int cluster_id, uint64_t num_keys,
                                    uint32_t value_size);

class TwitterGenerator : public KvGenerator {
 public:
  explicit TwitterGenerator(const TwitterClusterConfig& config);

  KvOp Next(Rng& rng) override;
  uint64_t num_keys() const override { return config_.num_keys; }
  uint32_t value_size() const override { return config_.value_size; }

 private:
  TwitterClusterConfig config_;
  std::unique_ptr<ZipfianGenerator> zipf_;
  std::atomic<uint64_t> op_counter_{0};
  std::atomic<uint64_t> cyclic_cursor_{0};
};

// --- GET-SCAN (Fig. 10) ------------------------------------------------------

struct GetScanConfig {
  uint64_t record_count = 100000;
  uint32_t value_size = 512;
  double zipf_theta = 0.99;
  // Records per SCAN request ("span many folios, high reuse distance").
  uint32_t scan_len = 4000;
};

// GET stream for the GET lanes (zipfian reads).
class GetStreamGenerator : public KvGenerator {
 public:
  explicit GetStreamGenerator(const GetScanConfig& config)
      : config_(config),
        zipf_(std::make_unique<ScrambledZipfianGenerator>(config.record_count,
                                                          config.zipf_theta)) {}
  KvOp Next(Rng& rng) override {
    KvOp op;
    op.type = OpType::kRead;
    op.key_index = zipf_->Next(rng);
    return op;
  }
  uint64_t num_keys() const override { return config_.record_count; }
  uint32_t value_size() const override { return config_.value_size; }

 private:
  GetScanConfig config_;
  std::unique_ptr<ScrambledZipfianGenerator> zipf_;
};

// SCAN stream for the SCAN thread pool (uniform long range scans).
class ScanStreamGenerator : public KvGenerator {
 public:
  explicit ScanStreamGenerator(const GetScanConfig& config)
      : config_(config) {}
  KvOp Next(Rng& rng) override {
    KvOp op;
    op.type = OpType::kScan;
    op.key_index = rng.NextU64Below(config_.record_count);
    op.scan_len = config_.scan_len;
    return op;
  }
  uint64_t num_keys() const override { return config_.record_count; }
  uint32_t value_size() const override { return config_.value_size; }

 private:
  GetScanConfig config_;
};

}  // namespace cache_ext::workloads

#endif  // SRC_WORKLOADS_KV_WORKLOAD_H_
