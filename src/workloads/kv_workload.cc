#include "src/workloads/kv_workload.h"

#include <cstdio>

#include "src/util/logging.h"

namespace cache_ext::workloads {

std::string KvGenerator::ValueFor(uint64_t index, uint32_t size) {
  std::string value(size, '\0');
  uint64_t state = index ^ 0xBADC0FFEE0DDF00DULL;
  for (uint32_t i = 0; i < size; ++i) {
    // Printable deterministic filler.
    value[i] = static_cast<char>('a' + (SplitMix64(state) % 26));
  }
  return value;
}

std::string_view YcsbWorkloadName(YcsbWorkload w) {
  switch (w) {
    case YcsbWorkload::kA:
      return "YCSB-A";
    case YcsbWorkload::kB:
      return "YCSB-B";
    case YcsbWorkload::kC:
      return "YCSB-C";
    case YcsbWorkload::kD:
      return "YCSB-D";
    case YcsbWorkload::kE:
      return "YCSB-E";
    case YcsbWorkload::kF:
      return "YCSB-F";
    case YcsbWorkload::kUniform:
      return "Uniform";
    case YcsbWorkload::kUniformRW:
      return "Uniform-RW";
  }
  return "?";
}

YcsbGenerator::YcsbGenerator(const YcsbConfig& config)
    : config_(config), insert_cursor_(config.record_count) {
  switch (config_.workload) {
    case YcsbWorkload::kD:
      latest_ = std::make_unique<LatestGenerator>(config_.record_count,
                                                  config_.zipf_theta);
      break;
    case YcsbWorkload::kUniform:
    case YcsbWorkload::kUniformRW:
      break;
    default:
      zipf_ = std::make_unique<ScrambledZipfianGenerator>(
          config_.record_count, config_.zipf_theta);
      break;
  }
}

uint64_t YcsbGenerator::ChooseKey(Rng& rng) {
  if (zipf_ != nullptr) {
    return zipf_->Next(rng);
  }
  if (latest_ != nullptr) {
    latest_->AdvanceMaxKey(insert_cursor_.load(std::memory_order_relaxed) - 1);
    return latest_->Next(rng);
  }
  return rng.NextU64Below(insert_cursor_.load(std::memory_order_relaxed));
}

KvOp YcsbGenerator::Next(Rng& rng) {
  KvOp op;
  const double p = rng.NextDouble();
  switch (config_.workload) {
    case YcsbWorkload::kA:
    case YcsbWorkload::kUniformRW:
      op.type = p < 0.5 ? OpType::kRead : OpType::kUpdate;
      break;
    case YcsbWorkload::kB:
      op.type = p < 0.95 ? OpType::kRead : OpType::kUpdate;
      break;
    case YcsbWorkload::kC:
    case YcsbWorkload::kUniform:
      op.type = OpType::kRead;
      break;
    case YcsbWorkload::kD:
      op.type = p < 0.95 ? OpType::kRead : OpType::kInsert;
      break;
    case YcsbWorkload::kE:
      op.type = p < 0.95 ? OpType::kScan : OpType::kInsert;
      break;
    case YcsbWorkload::kF:
      op.type = p < 0.5 ? OpType::kRead : OpType::kReadModifyWrite;
      break;
  }
  if (op.type == OpType::kInsert) {
    op.key_index = insert_cursor_.fetch_add(1, std::memory_order_relaxed);
  } else {
    op.key_index = ChooseKey(rng);
  }
  if (op.type == OpType::kScan) {
    op.scan_len = 1 + static_cast<uint32_t>(
                          rng.NextU64Below(config_.max_scan_len));
  }
  return op;
}

TwitterClusterConfig TwitterCluster(int cluster_id, uint64_t num_keys,
                                    uint32_t value_size) {
  TwitterClusterConfig config;
  config.cluster_id = cluster_id;
  config.num_keys = num_keys;
  config.value_size = value_size;
  switch (cluster_id) {
    case 17:
      config.pattern = TwitterPattern::kShiftingHotSet;
      config.zipf_theta = 0.6;
      config.write_ratio = 0.05;
      config.window_keys = num_keys / 4;
      config.drift_per_op = 0.25;
      config.cyclic_ratio = 0.20;  // one-hit side stream
      break;
    case 18:
      config.pattern = TwitterPattern::kShiftingHotSet;
      config.zipf_theta = 0.55;
      config.write_ratio = 0.15;
      config.window_keys = num_keys / 4;
      config.drift_per_op = 0.35;
      config.cyclic_ratio = 0.30;
      break;
    case 24:
      config.pattern = TwitterPattern::kWriteReread;
      config.write_ratio = 0.4;
      // Far enough back that the lagged re-reads refault (beyond any
      // plausible cache residency horizon for a 10%-sized cgroup).
      config.reread_lag_groups = num_keys / 32;
      break;
    case 34:
      config.pattern = TwitterPattern::kBimodalPeriodic;
      config.zipf_theta = 0.75;
      config.write_ratio = 0.02;
      config.cyclic_ratio = 0.30;
      config.cyclic_keys = num_keys / 13;  // cyclic set ~3/4 of the cgroup
      break;
    case 52:
      config.pattern = TwitterPattern::kStableSkewed;
      config.zipf_theta = 1.35;
      config.write_ratio = 0.01;
      break;
    default:
      LOG_WARNING << "unknown Twitter cluster " << cluster_id
                  << "; using stable skewed defaults";
      break;
  }
  return config;
}

TwitterGenerator::TwitterGenerator(const TwitterClusterConfig& config)
    : config_(config) {
  switch (config_.pattern) {
    case TwitterPattern::kShiftingHotSet:
      zipf_ = std::make_unique<ZipfianGenerator>(config_.window_keys,
                                                 config_.zipf_theta);
      break;
    case TwitterPattern::kBimodalPeriodic:
    case TwitterPattern::kStableSkewed:
      zipf_ = std::make_unique<ZipfianGenerator>(config_.num_keys,
                                                 config_.zipf_theta);
      break;
    case TwitterPattern::kWriteReread:
      break;
  }
}

KvOp TwitterGenerator::Next(Rng& rng) {
  KvOp op;
  const uint64_t op_idx = op_counter_.fetch_add(1, std::memory_order_relaxed);
  switch (config_.pattern) {
    case TwitterPattern::kShiftingHotSet: {
      // A one-hit-wonder side stream (strided walk over the keyspace, so
      // each touched page is cold) plus a Zipfian window that slides
      // through the keyspace: rank r maps to key base+r, so the hottest
      // keys sit at the window's leading edge and keys cool down as the
      // window moves past them. Recency-aware generational policies absorb
      // the one-hit stream in their oldest generation while tracking the
      // drift; stale-frequency policies (LFU) cling to keys the window has
      // left behind.
      if (config_.cyclic_ratio > 0 && rng.NextBool(config_.cyclic_ratio)) {
        const uint64_t cursor =
            cyclic_cursor_.fetch_add(1, std::memory_order_relaxed);
        op.key_index = (cursor * 13) % config_.num_keys;
        op.type = OpType::kRead;
        break;
      }
      const uint64_t base = static_cast<uint64_t>(
                                static_cast<double>(op_idx) *
                                config_.drift_per_op) %
                            config_.num_keys;
      const uint64_t rank = zipf_->Next(rng);
      op.key_index = (base + rank) % config_.num_keys;
      op.type = rng.NextBool(config_.write_ratio) ? OpType::kUpdate
                                                  : OpType::kRead;
      break;
    }
    case TwitterPattern::kWriteReread: {
      // Write-heavy traffic where every page the cache holds is re-read
      // several times in a short burst (so no folio is ever "cold"), plus a
      // lagged re-read stream of long-evicted keys that refaults
      // continuously. This is the population Fig. 8's cluster 24 needs:
      // refault evidence on every tier and no tier-0 eviction fodder.
      // Writes are pure background pressure (memtable-bound); the read side
      // is a disjoint key stream where every key is read in a short double
      // burst and revisited at two-plus lag depths, so (a) every cached
      // folio is multi-access (no tier-0 fodder) and (b) every eviction
      // later refaults — the degenerate-thrash regime.
      const uint64_t phase = op_idx % 8;
      const uint64_t group = op_idx / 8;
      const uint64_t lag = config_.reread_lag_groups;
      const auto read_key = [this](uint64_t g) {
        return Mix64(g * 2 + 1) % config_.num_keys;
      };
      const auto lagged = [group](uint64_t distance) {
        return group >= distance ? group - distance : group;
      };
      op.type = phase == 0 ? OpType::kUpdate : OpType::kRead;
      switch (phase) {
        case 0:  // background write (disjoint key stream)
          op.key_index = Mix64(group * 2) % config_.num_keys;
          break;
        case 1:
        case 2:  // fresh double burst
          op.key_index = read_key(group);
          break;
        case 3:
        case 4:  // first lagged revisit (long evicted: refault)
          op.key_index = read_key(lagged(lag));
          break;
        case 5:
        case 6:  // second lagged revisit
          op.key_index = read_key(lagged(2 * lag));
          break;
        default:  // deep single revisit
          op.key_index = read_key(lagged(4 * lag));
          break;
      }
      break;
    }
    case TwitterPattern::kBimodalPeriodic: {
      // Two populations with the same short-term frequency but opposite
      // futures: "flash" keys read in a quick burst of three and then
      // never again, and a periodic set rescanned on a fixed cycle. A
      // frequency-only policy (LFU) cannot tell them apart; LHD's
      // age-conditioned hit densities learn that flash keys are dead past
      // a small age while periodic keys keep paying off.
      const uint64_t phase = op_idx % 4;
      if (phase == 3) {
        const uint64_t cursor =
            cyclic_cursor_.fetch_add(1, std::memory_order_relaxed);
        op.key_index = config_.num_keys - 1 -
                       (cursor % config_.cyclic_keys);  // periodic region
        op.type = OpType::kRead;
      } else {
        const uint64_t burst = op_idx / 4;
        op.key_index =
            Mix64(burst) % (config_.num_keys - config_.cyclic_keys);
        op.type = phase == 0 && rng.NextBool(config_.write_ratio)
                      ? OpType::kUpdate
                      : OpType::kRead;
      }
      break;
    }
    case TwitterPattern::kStableSkewed: {
      op.key_index = Mix64(zipf_->Next(rng)) % config_.num_keys;
      op.type = rng.NextBool(config_.write_ratio) ? OpType::kUpdate
                                                  : OpType::kRead;
      break;
    }
  }
  return op;
}

}  // namespace cache_ext::workloads
