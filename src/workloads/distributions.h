// Key-choosing distributions used by the workload generators.
//
// ScrambledZipfian and Latest follow the YCSB definitions: a Zipfian(theta)
// rank generator whose output is scattered over the keyspace with a 64-bit
// hash (Scrambled), or mapped onto the most recently inserted keys (Latest).

#ifndef SRC_WORKLOADS_DISTRIBUTIONS_H_
#define SRC_WORKLOADS_DISTRIBUTIONS_H_

#include <cmath>
#include <cstdint>

#include "src/util/logging.h"
#include "src/util/rng.h"

namespace cache_ext::workloads {

// Standard YCSB Zipfian generator (Gray et al.'s rejection-free method).
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t num_items, double theta = 0.99)
      : num_items_(num_items), theta_(theta) {
    CHECK_GT(num_items, 0u);
    zetan_ = Zeta(num_items, theta_);
    zeta2_ = Zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(num_items), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  // Rank in [0, num_items): 0 is the hottest item.
  uint64_t Next(Rng& rng) const {
    const double u = rng.NextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) {
      return 0;
    }
    if (uz < 1.0 + std::pow(0.5, theta_)) {
      return 1;
    }
    const double v =
        static_cast<double>(num_items_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_);
    uint64_t rank = static_cast<uint64_t>(v);
    if (rank >= num_items_) {
      rank = num_items_ - 1;
    }
    return rank;
  }

  uint64_t num_items() const { return num_items_; }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0.0;
    for (uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  uint64_t num_items_;
  double theta_;
  double zetan_;
  double zeta2_;
  double alpha_;
  double eta_;
};

// Scrambled Zipfian: Zipfian ranks scattered uniformly over the keyspace
// (each key gets a fixed popularity, hot keys spread out).
class ScrambledZipfianGenerator {
 public:
  ScrambledZipfianGenerator(uint64_t num_items, double theta = 0.99)
      : zipf_(num_items, theta), num_items_(num_items) {}

  uint64_t Next(Rng& rng) const {
    const uint64_t rank = zipf_.Next(rng);
    return Mix64(rank) % num_items_;
  }

 private:
  ZipfianGenerator zipf_;
  uint64_t num_items_;
};

// Latest: Zipfian over recency — key (max_key - rank), so freshly inserted
// keys are the hottest (YCSB D).
class LatestGenerator {
 public:
  explicit LatestGenerator(uint64_t num_items, double theta = 0.99)
      : zipf_(num_items, theta), max_key_(num_items - 1) {}

  void AdvanceMaxKey(uint64_t new_max) {
    if (new_max > max_key_) {
      max_key_ = new_max;
    }
  }

  uint64_t Next(Rng& rng) const {
    const uint64_t rank = zipf_.Next(rng);
    return rank > max_key_ ? 0 : max_key_ - rank;
  }

  uint64_t max_key() const { return max_key_; }

 private:
  ZipfianGenerator zipf_;
  uint64_t max_key_;
};

}  // namespace cache_ext::workloads

#endif  // SRC_WORKLOADS_DISTRIBUTIONS_H_
