// fio-style synthetic I/O workloads (the paper uses fio's randread for the
// §6.3.2 CPU-overhead microbenchmark).

#ifndef SRC_WORKLOADS_FIO_H_
#define SRC_WORKLOADS_FIO_H_

#include <cstdint>

#include "src/pagecache/page_cache.h"
#include "src/util/rng.h"

namespace cache_ext::workloads {

struct FioConfig {
  std::string file_name = "/fio_file";
  uint64_t file_pages = 1 << 16;
  uint32_t block_bytes = 4096;  // fio bs=4k
  uint64_t seed = 0xF10;
};

// randread: uniformly random 4 KiB reads over a preallocated file, issued
// through the page cache. Deterministic per seed.
class FioRandRead {
 public:
  // Creates (or reuses) and sizes the backing file.
  static Expected<FioRandRead> Create(PageCache* pc, const FioConfig& config);

  // Issues one read on `lane`, charged to `cg`.
  Status Step(Lane& lane, MemCgroup* cg);

  AddressSpace* mapping() { return as_; }
  uint64_t ops_issued() const { return ops_; }

 private:
  FioRandRead(PageCache* pc, AddressSpace* as, const FioConfig& config)
      : pc_(pc), as_(as), config_(config), rng_(config.seed),
        buf_(config.block_bytes) {}

  PageCache* pc_;
  AddressSpace* as_;
  FioConfig config_;
  Rng rng_;
  std::vector<uint8_t> buf_;
  uint64_t ops_ = 0;
};

}  // namespace cache_ext::workloads

#endif  // SRC_WORKLOADS_FIO_H_
