#include "src/workloads/fio.h"

namespace cache_ext::workloads {

Expected<FioRandRead> FioRandRead::Create(PageCache* pc,
                                          const FioConfig& config) {
  auto as = pc->OpenFile(config.file_name);
  CACHE_EXT_RETURN_IF_ERROR(as.status());
  CACHE_EXT_RETURN_IF_ERROR(
      pc->disk()->Truncate((*as)->file(), config.file_pages * kPageSize));
  return FioRandRead(pc, *as, config);
}

Status FioRandRead::Step(Lane& lane, MemCgroup* cg) {
  const uint64_t page = rng_.NextU64Below(config_.file_pages);
  ++ops_;
  return pc_->Read(lane, as_, cg, page * kPageSize,
                   std::span<uint8_t>(buf_.data(), config_.block_bytes));
}

}  // namespace cache_ext::workloads
