#include "src/fault/fault_injector.h"

namespace cache_ext::fault {

std::vector<std::string_view> AllFaultPoints() {
  return {
      points::kBpfMapUpdate,      points::kBpfMapLookup,
      points::kBpfLruEvictStorm,  points::kBpfRingbufReserve,
      points::kBpfRunBudgetShrink, points::kBpfRunAbort,
      points::kCandidateCorrupt,  points::kListOp,
      points::kPolicyInit,        points::kEbrStall,
      points::kReclaimStall,      points::kReclaimThreadDeath,
      points::kReclaimOvershoot,  points::kDiskRead,
      points::kDiskWrite,         points::kSsdLatencySpike,
      points::kSsdDegrade,        points::kReadaheadMisfire,
      points::kWritebackStall,    points::kWritebackLostWakeup,
      points::kWritebackPartialFlush, points::kJitCompileFail,
  };
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(std::string_view point, const FaultSchedule& schedule) {
  MutexLock lock(mu_);
  auto [it, inserted] = points_.insert_or_assign(std::string(point),
                                                 Point(schedule));
  (void)it;
  if (inserted) {
    armed_.fetch_add(1, std::memory_order_relaxed);
  }
}

void FaultInjector::Disarm(std::string_view point) {
  MutexLock lock(mu_);
  if (points_.erase(std::string(point)) > 0) {
    armed_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjector::DisarmAll() {
  MutexLock lock(mu_);
  armed_.fetch_sub(points_.size(), std::memory_order_relaxed);
  points_.clear();
}

bool FaultInjector::ShouldFail(std::string_view point, uint64_t* magnitude) {
  if (armed_.load(std::memory_order_relaxed) == 0) {
    return false;
  }
  MutexLock lock(mu_);
  auto it = points_.find(std::string(point));
  if (it == points_.end()) {
    return false;
  }
  Point& p = it->second;
  const FaultSchedule& s = p.schedule;
  ++p.hits;
  if (p.fires >= s.max_fires) {
    return false;
  }
  bool fire = false;
  if (s.on_nth != 0 && p.hits == s.on_nth) {
    fire = true;
  }
  if (!fire && s.every_kth != 0 && p.hits > s.after &&
      (p.hits - s.after) % s.every_kth == 0) {
    fire = true;
  }
  if (!fire && s.probability > 0.0 && p.hits > s.after &&
      p.rng.NextBool(s.probability)) {
    fire = true;
  }
  if (fire) {
    ++p.fires;
    total_fires_.fetch_add(1, std::memory_order_relaxed);
    if (magnitude != nullptr) {
      *magnitude = s.magnitude;
    }
  }
  return fire;
}

uint64_t FaultInjector::hits(std::string_view point) const {
  MutexLock lock(mu_);
  auto it = points_.find(std::string(point));
  return it == points_.end() ? 0 : it->second.hits;
}

uint64_t FaultInjector::fires(std::string_view point) const {
  MutexLock lock(mu_);
  auto it = points_.find(std::string(point));
  return it == points_.end() ? 0 : it->second.fires;
}

std::vector<std::string> FaultInjector::ArmedPoints() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(points_.size());
  for (const auto& [name, p] : points_) {
    out.push_back(name);
  }
  return out;
}

}  // namespace cache_ext::fault
