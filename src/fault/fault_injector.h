// Deterministic fault injection for the cache_ext stack.
//
// The paper's safety argument (§4.4) is that the kernel tolerates
// misbehaving policies: candidate validation, helper budgets, and a
// watchdog. Proving that requires a way to *provoke* every failure mode on
// demand, reproducibly. FaultInjector is the process-global switchboard for
// that: code sprinkles named fault points (`fault::InjectFault("bpf.map.update")`)
// at the places where the real kernel can fail — map inserts, ring-buffer
// reservations, program aborts, device I/O — and tests arm those points
// with deterministic schedules ("fail the 3rd call", "every 16th",
// "p=0.05 with seed 42"). Disarmed, a fault point costs one relaxed atomic
// load, so the points stay compiled into production builds (the kernel's
// CONFIG_FAULT_INJECTION philosophy).
//
// Determinism: counters are per-point and probabilistic schedules draw from
// a per-point xoshiro stream seeded from the schedule, so a given
// (schedule, call sequence) always fires at the same calls.

#ifndef SRC_FAULT_FAULT_INJECTOR_H_
#define SRC_FAULT_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/util/rng.h"
#include "src/util/thread_annotations.h"

namespace cache_ext::fault {

// Registered fault-point names. Sites pass these to InjectFault(); tests arm
// them. Keeping them in one place doubles as the registry of everything the
// chaos harness must cover.
namespace points {
// src/bpf
inline constexpr std::string_view kBpfMapUpdate = "bpf.map.update";
inline constexpr std::string_view kBpfMapLookup = "bpf.map.lookup";
inline constexpr std::string_view kBpfLruEvictStorm = "bpf.lru.evict_storm";
inline constexpr std::string_view kBpfRingbufReserve = "bpf.ringbuf.reserve";
inline constexpr std::string_view kBpfRunBudgetShrink = "bpf.run.budget_shrink";
inline constexpr std::string_view kBpfRunAbort = "bpf.run.abort";
// src/cache_ext
inline constexpr std::string_view kCandidateCorrupt =
    "cache_ext.candidate.corrupt";
inline constexpr std::string_view kListOp = "cache_ext.list.op";
inline constexpr std::string_view kPolicyInit = "cache_ext.policy_init";
// Make the readahead hook return a wild window (`magnitude` pages, default
// 2^32), as if the policy's stream tracking went off the rails. The page
// cache's max_readahead_pages clamp must contain it.
inline constexpr std::string_view kReadaheadMisfire = "readahead.misfire";
// src/bpf/jit
// Fail lowering a hook's IR to its native closure, as if bpf_int_jit_compile
// returned an error: the hook must keep running through the interpreter
// fallback with the policy still attached (ext_ir_interp_fallbacks counts
// the dispatches that took the slow path).
inline constexpr std::string_view kJitCompileFail = "jit.compile_fail";
// src/util
// A phantom EBR reader pinned at the current epoch: blocks `magnitude`
// epoch-advance attempts (default 64), deferring every free retired in the
// meantime — the analogue of a reader stuck inside rcu_read_lock.
inline constexpr std::string_view kEbrStall = "ebr.stall";
// src/reclaim
// Wedge a cgroup's background reclaimer lane for `magnitude` ticks
// (default 8): ticks make no progress and the heartbeat stops, so the
// allocator-side watchdog must detect it — the analogue of kswapd stuck
// in D-state behind a wedged eviction policy.
inline constexpr std::string_view kReclaimStall = "reclaim.stall";
// Kill the cgroup's reclaimer lane permanently: every later tick is a
// no-op, as if the kswapd thread died. Only the watchdog plus bounded
// emergency direct reclaim keep the cgroup live.
inline constexpr std::string_view kReclaimThreadDeath =
    "reclaim.thread_death";
// Make the background reclaimer under-reclaim (stop before the high
// watermark), so occupancy overshoots toward the hard limit and the
// emergency path must bound the excursion.
inline constexpr std::string_view kReclaimOvershoot = "reclaim.overshoot";
// src/writeback
// Wedge a cgroup's background flusher lane for `magnitude` ticks
// (default 8): ticks harvest nothing and the dirty gauge keeps climbing,
// so dirty throttling must contain the writers until the lane heals.
inline constexpr std::string_view kWritebackStall = "writeback.stall";
// Drop a flusher kick on the floor, as if the wakeup raced a concurrent
// sleep: the poll-interval backstop (MT) or the next dirtying operation
// (ST) must still get the lane running.
inline constexpr std::string_view kWritebackLostWakeup =
    "writeback.lost_wakeup";
// Make a flush tick stop after its first extent, leaving the rest of the
// harvest dirty — the background threshold must be re-reached by later
// ticks rather than assumed reached by this one.
inline constexpr std::string_view kWritebackPartialFlush =
    "writeback.partial_flush";
// src/sim
inline constexpr std::string_view kDiskRead = "sim.disk.read";
inline constexpr std::string_view kDiskWrite = "sim.disk.write";
inline constexpr std::string_view kSsdLatencySpike = "sim.ssd.latency_spike";
inline constexpr std::string_view kSsdDegrade = "sim.ssd.degrade";
}  // namespace points

// Every registered fault point, for harnesses that storm all of them.
std::vector<std::string_view> AllFaultPoints();

// When an armed point fires. Criteria compose with OR; all are evaluated
// against the point's hit counter (1-based), which starts counting at Arm().
struct FaultSchedule {
  // Fire exactly on the Nth hit. 0 disables this criterion.
  uint64_t on_nth = 0;
  // Fire on every Kth hit (after skipping `after` hits). 0 disables.
  uint64_t every_kth = 0;
  // Hits to skip before every_kth / probability apply.
  uint64_t after = 0;
  // Bernoulli per hit with this probability, drawn from a stream seeded by
  // `seed` — deterministic for a fixed call sequence.
  double probability = 0.0;
  uint64_t seed = 1;
  // Stop firing after this many fires (the fault "heals").
  uint64_t max_fires = UINT64_MAX;
  // Site-interpreted intensity: latency multiplier for kSsdLatencySpike,
  // shrunk budget for kBpfRunBudgetShrink, entries evicted for
  // kBpfLruEvictStorm. 0 = the site's default.
  uint64_t magnitude = 0;
};

class FaultInjector {
 public:
  // The process-global injector all fault points consult.
  static FaultInjector& Global();

  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void Arm(std::string_view point, const FaultSchedule& schedule);
  void Disarm(std::string_view point);
  void DisarmAll();

  // Called by fault sites. Returns true when the fault should fire; fills
  // `magnitude` (if non-null) with the schedule's magnitude on fire.
  bool ShouldFail(std::string_view point, uint64_t* magnitude = nullptr);

  // Introspection (counts since the point was armed; reset by Arm/Disarm).
  uint64_t hits(std::string_view point) const;
  uint64_t fires(std::string_view point) const;
  // Fires across all points since construction (survives Disarm).
  uint64_t total_fires() const {
    return total_fires_.load(std::memory_order_relaxed);
  }
  std::vector<std::string> ArmedPoints() const;

 private:
  struct Point {
    FaultSchedule schedule;
    Rng rng;
    uint64_t hits = 0;
    uint64_t fires = 0;

    explicit Point(const FaultSchedule& s) : schedule(s), rng(s.seed) {}
  };

  mutable Mutex mu_;
  std::unordered_map<std::string, Point> points_ CACHE_EXT_GUARDED_BY(mu_);
  // Fast disarmed path: number of armed points.
  std::atomic<size_t> armed_{0};
  std::atomic<uint64_t> total_fires_{0};
};

// Site-side helper: one atomic load when nothing is armed.
inline bool InjectFault(std::string_view point, uint64_t* magnitude = nullptr) {
  return FaultInjector::Global().ShouldFail(point, magnitude);
}

// RAII arming for tests: arms on construction, disarms on destruction.
class ScopedFault {
 public:
  ScopedFault(std::string_view point, const FaultSchedule& schedule)
      : point_(point) {
    FaultInjector::Global().Arm(point_, schedule);
  }
  ~ScopedFault() { FaultInjector::Global().Disarm(point_); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  std::string point_;
};

}  // namespace cache_ext::fault

#endif  // SRC_FAULT_FAULT_INJECTOR_H_
