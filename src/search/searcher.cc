#include "src/search/searcher.h"

#include <algorithm>
#include <cstring>

namespace cache_ext::search {

Expected<uint64_t> FileSearcher::SearchFile(Lane& lane, AddressSpace* as,
                                            std::string_view pattern) {
  const uint64_t file_size = pc_->FileSize(as);
  if (file_size == 0 || pattern.empty()) {
    return 0ULL;
  }
  uint64_t matches = 0;
  std::vector<uint8_t> chunk;
  std::string carry;  // last pattern-1 bytes of the previous chunk

  for (uint64_t offset = 0; offset < file_size; offset += kChunkBytes) {
    const uint64_t len = std::min<uint64_t>(kChunkBytes, file_size - offset);
    chunk.resize(carry.size() + len);
    std::memcpy(chunk.data(), carry.data(), carry.size());
    CACHE_EXT_RETURN_IF_ERROR(pc_->Read(
        lane, as, cg_, offset,
        std::span<uint8_t>(chunk.data() + carry.size(), len)));

    // Count occurrences in carry+chunk.
    const char* base = reinterpret_cast<const char*>(chunk.data());
    std::string_view haystack(base, chunk.size());
    size_t pos = 0;
    while ((pos = haystack.find(pattern, pos)) != std::string_view::npos) {
      ++matches;
      pos += 1;
    }

    const size_t keep = std::min<size_t>(pattern.size() - 1, chunk.size());
    carry.assign(base + chunk.size() - keep, keep);
    // Avoid double-counting matches fully inside the carried tail next loop:
    // matches spanning the boundary start inside `carry`, and carry is
    // shorter than the pattern, so a full pattern can't fit in it alone.
  }
  return matches;
}

Expected<uint64_t> FileSearcher::SearchOneFile(Lane& lane, size_t file_idx,
                                               std::string_view pattern) {
  if (file_idx >= files_.size()) {
    return OutOfRange("bad file index");
  }
  auto as = pc_->OpenFile(files_[file_idx]);
  CACHE_EXT_RETURN_IF_ERROR(as.status());
  return SearchFile(lane, *as, pattern);
}

Expected<uint64_t> FileSearcher::SearchPass(std::vector<Lane*>& lanes,
                                            std::string_view pattern) {
  if (lanes.empty()) {
    return InvalidArgument("need at least one lane");
  }
  uint64_t total = 0;
  size_t lane_idx = 0;
  for (const std::string& name : files_) {
    auto as = pc_->OpenFile(name);
    CACHE_EXT_RETURN_IF_ERROR(as.status());
    // Round-robin across worker lanes, but keep lanes loosely in step (pick
    // the least-advanced lane) the way a work-stealing pool balances.
    lane_idx = 0;
    for (size_t i = 1; i < lanes.size(); ++i) {
      if (lanes[i]->now_ns() < lanes[lane_idx]->now_ns()) {
        lane_idx = i;
      }
    }
    auto matches = SearchFile(*lanes[lane_idx], *as, pattern);
    CACHE_EXT_RETURN_IF_ERROR(matches.status());
    total += *matches;
  }
  return total;
}

}  // namespace cache_ext::search
