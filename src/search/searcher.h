// Multi-lane streaming file search (the ripgrep stand-in, Fig. 9).
//
// Each search pass reads every corpus file through the page cache in 64 KiB
// chunks and counts pattern occurrences (handling matches across chunk
// boundaries). Files are distributed round-robin across lanes, modelling
// ripgrep's parallel workers; lanes share the cgroup, so the eviction policy
// decides which 70% of the corpus stays resident between passes.

#ifndef SRC_SEARCH_SEARCHER_H_
#define SRC_SEARCH_SEARCHER_H_

#include <string>
#include <vector>

#include "src/pagecache/page_cache.h"
#include "src/sim/lane.h"

namespace cache_ext::search {

class FileSearcher {
 public:
  FileSearcher(PageCache* pc, MemCgroup* cg, std::vector<std::string> files)
      : pc_(pc), cg_(cg), files_(std::move(files)) {}

  // One full pass over the corpus; returns the total number of matches.
  Expected<uint64_t> SearchPass(std::vector<Lane*>& lanes,
                                std::string_view pattern);

  // Search a single corpus file (for schedulers that interleave the search
  // with other workloads, e.g. the Fig. 11 isolation experiment).
  Expected<uint64_t> SearchOneFile(Lane& lane, size_t file_idx,
                                   std::string_view pattern);

  size_t num_files() const { return files_.size(); }

  static constexpr uint64_t kChunkBytes = 64 * 1024;

 private:
  Expected<uint64_t> SearchFile(Lane& lane, AddressSpace* as,
                                std::string_view pattern);

  PageCache* pc_;
  MemCgroup* cg_;
  std::vector<std::string> files_;
};

}  // namespace cache_ext::search

#endif  // SRC_SEARCH_SEARCHER_H_
