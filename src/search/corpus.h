// Synthetic source-tree corpus for the file-search workload (Fig. 9).
//
// The paper searches the Linux kernel sources with ripgrep; we generate a
// file tree with a source-tree-like size distribution (many small files, a
// long tail of large ones) and text-like contents with a known pattern
// planted at a controlled rate, so searches have verifiable results.

#ifndef SRC_SEARCH_CORPUS_H_
#define SRC_SEARCH_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/sim_disk.h"
#include "src/util/rng.h"

namespace cache_ext::search {

struct CorpusConfig {
  std::string root = "/corpus";
  uint64_t total_bytes = 64 << 20;
  uint64_t mean_file_bytes = 24 * 1024;  // source files average tens of KiB
  std::string pattern = "cache_ext_hit";
  // Expected plants per 64 KiB of text.
  double plants_per_64k = 1.0;
  uint64_t seed = 42;
};

struct CorpusInfo {
  std::vector<std::string> files;
  uint64_t total_bytes = 0;
  uint64_t planted_matches = 0;
};

// Writes the corpus directly to the disk (setup happens before the measured
// run, with caches dropped, as in the paper).
Expected<CorpusInfo> GenerateCorpus(SimDisk* disk, const CorpusConfig& config);

}  // namespace cache_ext::search

#endif  // SRC_SEARCH_CORPUS_H_
