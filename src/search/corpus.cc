#include "src/search/corpus.h"

#include <algorithm>
#include <cstdio>

namespace cache_ext::search {

namespace {

// Text-ish filler: words of lowercase letters separated by spaces/newlines.
void AppendText(std::string* out, uint64_t bytes, Rng& rng) {
  out->reserve(out->size() + bytes);
  uint64_t written = 0;
  while (written < bytes) {
    const uint64_t word_len = 2 + rng.NextU64Below(10);
    for (uint64_t i = 0; i < word_len && written < bytes; ++i, ++written) {
      out->push_back(static_cast<char>('a' + rng.NextU64Below(26)));
    }
    if (written < bytes) {
      out->push_back(rng.NextU64Below(12) == 0 ? '\n' : ' ');
      ++written;
    }
  }
}

}  // namespace

Expected<CorpusInfo> GenerateCorpus(SimDisk* disk,
                                    const CorpusConfig& config) {
  CorpusInfo info;
  Rng rng(config.seed);
  uint64_t remaining = config.total_bytes;
  int file_idx = 0;

  while (remaining > 0) {
    // Size distribution: mostly near the mean, occasional 8x outliers —
    // roughly the shape of a source tree.
    uint64_t size = config.mean_file_bytes / 2 +
                    rng.NextU64Below(config.mean_file_bytes);
    if (rng.NextU64Below(20) == 0) {
      size *= 8;
    }
    size = std::min(size, remaining);

    std::string content;
    const double plant_prob =
        config.plants_per_64k * static_cast<double>(size) / 65536.0;
    uint64_t plants = static_cast<uint64_t>(plant_prob);
    if (rng.NextDouble() < plant_prob - static_cast<double>(plants)) {
      ++plants;
    }

    if (plants == 0 || config.pattern.size() + 1 >= size) {
      AppendText(&content, size, rng);
    } else {
      const uint64_t chunk = size / (plants + 1);
      for (uint64_t i = 0; i < plants; ++i) {
        AppendText(&content, chunk - config.pattern.size(), rng);
        content.append(config.pattern);
      }
      if (content.size() < size) {
        AppendText(&content, size - content.size(), rng);
      }
      info.planted_matches += plants;
    }

    char name[64];
    std::snprintf(name, sizeof(name), "%s/src_%05d.c", config.root.c_str(),
                  file_idx++);
    auto id = disk->Create(name);
    CACHE_EXT_RETURN_IF_ERROR(id.status());
    CACHE_EXT_RETURN_IF_ERROR(disk->WriteAt(
        *id, 0,
        std::span<const uint8_t>(
            reinterpret_cast<const uint8_t*>(content.data()),
            content.size())));
    info.files.push_back(name);
    info.total_bytes += content.size();
    remaining -= std::min<uint64_t>(remaining, content.size());
  }
  return info;
}

}  // namespace cache_ext::search
