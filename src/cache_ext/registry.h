// The valid-folio registry (§4.4) and eviction-list node storage (§4.2.2).
//
// Policies return raw folio pointers as eviction candidates; a buggy or
// malicious policy could return garbage. Before the kernel dereferences a
// candidate it checks membership in this registry: folios are inserted on
// admission and removed on eviction, so any pointer not present is rejected.
//
// The registry doubles as the per-policy folio -> list-node index: each
// entry embeds the node linking the folio into (at most) one eviction list,
// which is what makes list_del() and list_move() O(1) given only a folio
// pointer. Layout matches the paper's accounting (§6.3.1): a bucket costs 16
// bytes (head pointer + lock word) and a filled entry 32 bytes more.
//
// Buckets are individually locked so membership checks scale.

#ifndef SRC_CACHE_EXT_REGISTRY_H_
#define SRC_CACHE_EXT_REGISTRY_H_

#include <cstdint>
#include <vector>

#include "src/bpf/spinlock.h"
#include "src/mm/folio.h"

namespace cache_ext {

// Node linking a folio into one eviction list. prev/next point at other
// entries' nodes (or the list sentinel). list_id == 0 means "not on a list".
struct ExtListNode {
  ExtListNode* prev = nullptr;
  ExtListNode* next = nullptr;
  uint64_t list_id = 0;
  Folio* folio = nullptr;  // back-pointer for iteration

  bool OnList() const { return list_id != 0; }
};

class FolioRegistry {
 public:
  // nr_buckets is sized to the cgroup's page capacity (§6.3.1).
  explicit FolioRegistry(uint64_t nr_buckets);
  ~FolioRegistry();
  FolioRegistry(const FolioRegistry&) = delete;
  FolioRegistry& operator=(const FolioRegistry&) = delete;

  // Register a folio (on admission). Returns false if already present.
  bool Insert(Folio* folio);

  // Unregister (on removal). The folio must already be off any list (the
  // framework unlinks before removing). Returns false if absent.
  bool Remove(Folio* folio);

  // Membership check used to validate eviction candidates. Never
  // dereferences `folio`.
  bool Contains(const Folio* folio) const;

  // The list node for a registered folio, or nullptr. The caller must hold
  // the policy's list lock for any node mutation.
  ExtListNode* Find(const Folio* folio);

  uint64_t Size() const;
  uint64_t nr_buckets() const { return buckets_.size(); }

  // Approximate memory footprint, for the §6.3.1 accounting.
  uint64_t MemoryBytes() const;

 private:
  struct Entry {
    ExtListNode node;
    Entry* hash_next = nullptr;
  };

  struct Bucket {
    mutable bpf::SpinLock lock;
    Entry* head = nullptr;
  };

  size_t BucketFor(const Folio* folio) const;

  std::vector<Bucket> buckets_;
  std::atomic<uint64_t> size_{0};
};

}  // namespace cache_ext

#endif  // SRC_CACHE_EXT_REGISTRY_H_
