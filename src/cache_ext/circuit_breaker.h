// Per-hook circuit breakers for loaded policies (§4.4 hardening).
//
// The paper's watchdog is all-or-nothing: enough invalid candidates and the
// whole policy is unloaded. Real policies usually break in ONE program — an
// admission filter that aborts, a prefetch hook that exhausts its budget —
// while the rest keeps earning its hit rate. The breaker therefore tracks a
// sliding-window violation rate per hook (evict, admit, access, ...): a hook
// whose recent rate crosses the trip threshold is degraded to the default
// kernel behaviour *alone*; escalation to a full watchdog detach happens
// only when several hooks trip or a single hook's violations keep
// accumulating past a hard cap.
//
// The sliding window is an exponential-decay window: per-hook counters are
// halved every `window` invocations, so old violations age out and a burst
// of failures trips quickly while a long-healthy hook shrugs off a stray
// abort.

#ifndef SRC_CACHE_EXT_CIRCUIT_BREAKER_H_
#define SRC_CACHE_EXT_CIRCUIT_BREAKER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>

#include "src/pagecache/eviction.h"

namespace cache_ext {

struct CircuitBreakerOptions {
  // Invocations per decay window (per hook).
  uint32_t window = 64;
  // A hook never trips before seeing this many invocations in its window.
  uint32_t min_samples = 16;
  // Violation rate within the window that trips the hook.
  double trip_rate = 0.5;
  // Tripped hooks that escalate to a full detach.
  uint32_t hooks_to_detach = 2;
  // Lifetime violations on any single hook that escalate even without a
  // second trip ("the violation rate stays high").
  uint64_t hard_violation_limit = 512;
};

class HookCircuitBreaker {
 public:
  explicit HookCircuitBreaker(const CircuitBreakerOptions& options);

  // Record one hook invocation outcome. Returns true when this record
  // tripped the hook (transition only, not for already-tripped hooks).
  bool Record(PolicyHook hook, bool violation);

  // Degraded = tripped; stays tripped for the life of the attachment (a
  // fresh attach after quarantine starts with a clean breaker).
  bool Degraded(PolicyHook hook) const;

  uint32_t degraded_mask() const {
    return degraded_mask_.load(std::memory_order_relaxed);
  }
  // Escalation latch: hooks_to_detach trips, or hard_violation_limit
  // violations on one hook.
  bool escalated() const {
    return escalated_.load(std::memory_order_relaxed);
  }

  PolicyHookHealth Health() const;

 private:
  struct HookState {
    uint64_t window_invocations = 0;
    uint64_t window_violations = 0;
    uint64_t total_invocations = 0;
    uint64_t total_violations = 0;
    uint64_t trips = 0;
    bool tripped = false;
  };

  CircuitBreakerOptions options_;
  mutable std::mutex mu_;
  std::array<HookState, kNumPolicyHooks> hooks_;
  // Mirrors of state readable without the lock, for the dispatch fast path.
  std::atomic<uint32_t> degraded_mask_{0};
  std::atomic<bool> escalated_{false};
};

}  // namespace cache_ext

#endif  // SRC_CACHE_EXT_CIRCUIT_BREAKER_H_
