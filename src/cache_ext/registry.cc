#include "src/cache_ext/registry.h"

#include <atomic>

#include "src/util/logging.h"
#include "src/util/rng.h"

namespace cache_ext {

FolioRegistry::FolioRegistry(uint64_t nr_buckets)
    : buckets_(nr_buckets == 0 ? 1 : nr_buckets) {}

FolioRegistry::~FolioRegistry() {
  for (Bucket& bucket : buckets_) {
    Entry* entry = bucket.head;
    while (entry != nullptr) {
      Entry* next = entry->hash_next;
      delete entry;
      entry = next;
    }
  }
}

size_t FolioRegistry::BucketFor(const Folio* folio) const {
  // Pointer-hash: folios are heap objects, so scramble the address.
  return Mix64(reinterpret_cast<uintptr_t>(folio)) % buckets_.size();
}

bool FolioRegistry::Insert(Folio* folio) {
  Bucket& bucket = buckets_[BucketFor(folio)];
  bpf::SpinLockGuard guard(bucket.lock);
  for (Entry* e = bucket.head; e != nullptr; e = e->hash_next) {
    if (e->node.folio == folio) {
      return false;
    }
  }
  auto* entry = new Entry();
  entry->node.folio = folio;
  entry->hash_next = bucket.head;
  bucket.head = entry;
  size_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FolioRegistry::Remove(Folio* folio) {
  Bucket& bucket = buckets_[BucketFor(folio)];
  bpf::SpinLockGuard guard(bucket.lock);
  Entry** link = &bucket.head;
  while (*link != nullptr) {
    Entry* entry = *link;
    if (entry->node.folio == folio) {
      DCHECK(!entry->node.OnList());
      *link = entry->hash_next;
      delete entry;
      size_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
    link = &entry->hash_next;
  }
  return false;
}

bool FolioRegistry::Contains(const Folio* folio) const {
  const Bucket& bucket = buckets_[BucketFor(folio)];
  bpf::SpinLockGuard guard(bucket.lock);
  for (const Entry* e = bucket.head; e != nullptr; e = e->hash_next) {
    if (e->node.folio == folio) {
      return true;
    }
  }
  return false;
}

ExtListNode* FolioRegistry::Find(const Folio* folio) {
  Bucket& bucket = buckets_[BucketFor(folio)];
  bpf::SpinLockGuard guard(bucket.lock);
  for (Entry* e = bucket.head; e != nullptr; e = e->hash_next) {
    if (e->node.folio == folio) {
      return &e->node;
    }
  }
  return nullptr;
}

uint64_t FolioRegistry::Size() const {
  return size_.load(std::memory_order_relaxed);
}

uint64_t FolioRegistry::MemoryBytes() const {
  // 16 bytes per bucket + 32 bytes per filled entry (§6.3.1).
  return buckets_.size() * 16 + Size() * 32;
}

}  // namespace cache_ext
