#include "src/cache_ext/eviction_list.h"

#include <algorithm>
#include <new>
#include <vector>

#include "src/bpf/prog.h"
#include "src/fault/fault_injector.h"
#include "src/pagecache/current_task.h"
#include "src/util/logging.h"

namespace cache_ext {

CacheExtApi::CacheExtApi(FolioRegistry* registry) : registry_(registry) {
  CHECK_NOTNULL(registry_);
}

CacheExtApi::~CacheExtApi() {
  // Unlink every node so registry entries can be destroyed cleanly.
  MutexLock lock(mu_);
  for (auto& [id, list] : lists_) {
    ExtListNode* node = list->head.next;
    while (node != &list->head) {
      ExtListNode* next = node->next;
      node->prev = nullptr;
      node->next = nullptr;
      node->list_id = 0;
      node = next;
    }
  }
}

void CacheExtApi::Notify(bpf::verifier::Kfunc kfunc, ErrorCode code,
                         uint64_t list_id, uint64_t iterations) const {
  if (observer_ != nullptr) {
    observer_->OnKfunc(KfuncEvent{kfunc, code, list_id, iterations});
  }
}

CacheExtApi::ExtList* CacheExtApi::FindList(uint64_t list_id) {
  auto it = lists_.find(list_id);
  return it == lists_.end() ? nullptr : it->second.get();
}

const CacheExtApi::ExtList* CacheExtApi::FindList(uint64_t list_id) const {
  auto it = lists_.find(list_id);
  return it == lists_.end() ? nullptr : it->second.get();
}

void CacheExtApi::LinkNode(ExtList* list, uint64_t list_id, ExtListNode* node,
                           bool tail) {
  DCHECK(!node->OnList());
  if (tail) {
    node->prev = list->head.prev;
    node->next = &list->head;
    list->head.prev->next = node;
    list->head.prev = node;
  } else {
    node->next = list->head.next;
    node->prev = &list->head;
    list->head.next->prev = node;
    list->head.next = node;
  }
  node->list_id = list_id;
  ++list->size;
}

void CacheExtApi::UnlinkNode(ExtList* list, ExtListNode* node) {
  DCHECK(node->OnList());
  node->prev->next = node->next;
  node->next->prev = node->prev;
  node->prev = nullptr;
  node->next = nullptr;
  node->list_id = 0;
  DCHECK(list->size > 0);
  --list->size;
}

Expected<uint64_t> CacheExtApi::ListCreate() {
  if (!bpf::ChargeHelperCall()) {
    Notify(bpf::verifier::Kfunc::kListCreate, ErrorCode::kResourceExhausted,
           0);
    return ResourceExhausted("program helper budget exhausted");
  }
  MutexLock lock(mu_);
  const uint64_t id = next_list_id_++;
  lists_[id] = std::make_unique<ExtList>();
  Notify(bpf::verifier::Kfunc::kListCreate, ErrorCode::kOk, id);
  return id;
}

Status CacheExtApi::ListAdd(uint64_t list_id, Folio* folio, bool tail) {
  const Status st = [&]() -> Status {
    if (!bpf::ChargeHelperCall()) {
      return ResourceExhausted("program helper budget exhausted");
    }
    // Injected list misuse: the kfunc refuses the operation, as if the
    // policy passed a bad list id or an unregistered folio. The folio ends
    // up on no list — it must still be evictable via the fallback path.
    if (fault::InjectFault(fault::points::kListOp)) {
      return InvalidArgument("injected eviction-list misuse");
    }
    ExtListNode* node = registry_->Find(folio);
    if (node == nullptr) {
      return InvalidArgument("folio not registered");
    }
    MutexLock lock(mu_);
    ExtList* list = FindList(list_id);
    if (list == nullptr) {
      return NotFound("bad list id");
    }
    if (node->OnList()) {
      return FailedPrecondition("folio already on a list (use list_move)");
    }
    LinkNode(list, list_id, node, tail);
    return OkStatus();
  }();
  Notify(bpf::verifier::Kfunc::kListAdd, st.code(), list_id);
  return st;
}

Status CacheExtApi::ListMove(uint64_t list_id, Folio* folio, bool tail) {
  const Status st = [&]() -> Status {
    if (!bpf::ChargeHelperCall()) {
      return ResourceExhausted("program helper budget exhausted");
    }
    if (fault::InjectFault(fault::points::kListOp)) {
      return InvalidArgument("injected eviction-list misuse");
    }
    ExtListNode* node = registry_->Find(folio);
    if (node == nullptr) {
      return InvalidArgument("folio not registered");
    }
    MutexLock lock(mu_);
    ExtList* dst = FindList(list_id);
    if (dst == nullptr) {
      return NotFound("bad list id");
    }
    if (node->OnList()) {
      ExtList* src = FindList(node->list_id);
      CHECK_NOTNULL(src);
      UnlinkNode(src, node);
    }
    LinkNode(dst, list_id, node, tail);
    return OkStatus();
  }();
  Notify(bpf::verifier::Kfunc::kListMove, st.code(), list_id);
  return st;
}

Status CacheExtApi::ListDel(Folio* folio) {
  const Status st = [&]() -> Status {
    if (!bpf::ChargeHelperCall()) {
      return ResourceExhausted("program helper budget exhausted");
    }
    ExtListNode* node = registry_->Find(folio);
    if (node == nullptr) {
      return InvalidArgument("folio not registered");
    }
    MutexLock lock(mu_);
    if (!node->OnList()) {
      return FailedPrecondition("folio not on a list");
    }
    ExtList* list = FindList(node->list_id);
    CHECK_NOTNULL(list);
    UnlinkNode(list, node);
    return OkStatus();
  }();
  Notify(bpf::verifier::Kfunc::kListDel, st.code(), 0);
  return st;
}

Expected<uint64_t> CacheExtApi::ListSize(uint64_t list_id) const {
  if (!bpf::ChargeHelperCall()) {
    Notify(bpf::verifier::Kfunc::kListSize, ErrorCode::kResourceExhausted,
           list_id);
    return ResourceExhausted("program helper budget exhausted");
  }
  MutexLock lock(mu_);
  const ExtList* list = FindList(list_id);
  if (list == nullptr) {
    Notify(bpf::verifier::Kfunc::kListSize, ErrorCode::kNotFound, list_id);
    return NotFound("bad list id");
  }
  Notify(bpf::verifier::Kfunc::kListSize, ErrorCode::kOk, list_id);
  return list->size;
}

Expected<uint64_t> CacheExtApi::ListIdOf(const Folio* folio) const {
  if (!bpf::ChargeHelperCall()) {
    Notify(bpf::verifier::Kfunc::kListIdOf, ErrorCode::kResourceExhausted, 0);
    return ResourceExhausted("program helper budget exhausted");
  }
  ExtListNode* node = registry_->Find(folio);
  if (node == nullptr) {
    Notify(bpf::verifier::Kfunc::kListIdOf, ErrorCode::kInvalidArgument, 0);
    return InvalidArgument("folio not registered");
  }
  MutexLock lock(mu_);
  Notify(bpf::verifier::Kfunc::kListIdOf, ErrorCode::kOk, node->list_id);
  return node->list_id;
}

int32_t CacheExtApi::CurrentPid() const {
  bpf::ChargeHelperCall();
  Notify(bpf::verifier::Kfunc::kCurrentTask, ErrorCode::kOk, 0);
  return GetCurrentTask().pid;
}

int32_t CacheExtApi::CurrentTid() const {
  bpf::ChargeHelperCall();
  Notify(bpf::verifier::Kfunc::kCurrentTask, ErrorCode::kOk, 0);
  return GetCurrentTask().tid;
}

void CacheExtApi::UnlinkForRemoval(Folio* folio) {
  ExtListNode* node = registry_->Find(folio);
  if (node == nullptr) {
    return;
  }
  MutexLock lock(mu_);
  if (node->OnList()) {
    ExtList* list = FindList(node->list_id);
    CHECK_NOTNULL(list);
    UnlinkNode(list, node);
  }
}

uint64_t CacheExtApi::nr_lists() const {
  MutexLock lock(mu_);
  return lists_.size();
}

void CacheExtApi::Place(ExtList* list, uint64_t list_id, ExtListNode* node,
                        IterPlacement placement, uint64_t dst_list_id) {
  switch (placement) {
    case IterPlacement::kKeepInPlace:
      return;
    case IterPlacement::kMoveToTail:
      UnlinkNode(list, node);
      LinkNode(list, list_id, node, /*tail=*/true);
      return;
    case IterPlacement::kMoveToList: {
      ExtList* dst = FindList(dst_list_id);
      if (dst == nullptr) {
        return;  // bad destination: leave in place (bounds-checked kfunc)
      }
      UnlinkNode(list, node);
      LinkNode(dst, dst_list_id, node, /*tail=*/true);
      return;
    }
  }
}

Status CacheExtApi::ListIterate(uint64_t list_id, const IterOpts& opts,
                                EvictionCtx* ctx, const IterateFn& fn) {
  uint64_t examined = 0;
  const Status st = [&]() -> Status {
    if (!bpf::ChargeHelperCall()) {
      return ResourceExhausted("program helper budget exhausted");
    }
    MutexLock lock(mu_);
    ExtList* list = FindList(list_id);
    if (list == nullptr) {
      return NotFound("bad list id");
    }
    // Examine at most min(nr_scan, initial size) folios: every examined node
    // is either left behind the cursor, rotated to the tail, or moved to
    // another list, so no node is seen twice in one call.
    uint64_t bound = std::min<uint64_t>(opts.nr_scan, list->size);
    ExtListNode* node = list->head.next;
    while (bound-- > 0 && node != &list->head) {
      ExtListNode* next = node->next;
      // Each callback invocation charges the program budget (enforced loop
      // termination, §4.4).
      if (!bpf::ChargeHelperCall()) {
        return ResourceExhausted("program helper budget exhausted");
      }
      ++examined;
      const IterVerdict verdict = fn(node->folio);
      if (verdict == IterVerdict::kStop) {
        break;
      }
      if (verdict == IterVerdict::kEvict) {
        if (ctx != nullptr) {
          ctx->Propose(node->folio);
        }
        Place(list, list_id, node, opts.on_evict, opts.dst_list_evict);
        if (ctx != nullptr && ctx->Full()) {
          break;
        }
      } else {
        Place(list, list_id, node, opts.on_skip, opts.dst_list_skip);
      }
      node = next;
    }
    return OkStatus();
  }();
  Notify(bpf::verifier::Kfunc::kListIterate, st.code(), list_id, examined);
  return st;
}

Status CacheExtApi::ListIterateScore(uint64_t list_id, const IterOpts& opts,
                                     EvictionCtx* ctx, const ScoreFn& fn) {
  uint64_t examined = 0;
  const Status st = [&]() -> Status {
    if (!bpf::ChargeHelperCall()) {
      return ResourceExhausted("program helper budget exhausted");
    }
    if (ctx == nullptr) {
      return InvalidArgument("batch scoring requires an eviction ctx");
    }
    MutexLock lock(mu_);
    ExtList* list = FindList(list_id);
    if (list == nullptr) {
      return NotFound("bad list id");
    }

    // Phase 1: score the first N folios. The batch lives in the
    // per-policy arena (not a fresh std::vector), so steady-state
    // reclaim performs zero heap allocations once the arena has grown
    // to the policy's batch size.
    struct Scored {
      int64_t score;
      ExtListNode* node;
    };
    const uint64_t bound = std::min<uint64_t>(opts.nr_scan, list->size);
    Scored* scored =
        static_cast<Scored*>(arena_.Reserve(bound * sizeof(Scored)));
    uint64_t nr_scored = 0;
    ExtListNode* node = list->head.next;
    for (uint64_t i = 0; i < bound && node != &list->head; ++i) {
      if (!bpf::ChargeHelperCall()) {
        return ResourceExhausted("program helper budget exhausted");
      }
      ++examined;
      new (&scored[nr_scored++]) Scored{fn(node->folio), node};
      node = node->next;
    }

    // Phase 2: select the C lowest-scored folios (§4.2.3).
    const uint64_t remaining =
        ctx->nr_candidates_requested > ctx->nr_candidates_proposed
            ? ctx->nr_candidates_requested - ctx->nr_candidates_proposed
            : 0;
    const uint64_t c = std::min<uint64_t>(remaining, nr_scored);
    if (c > 0 && c < nr_scored) {
      std::nth_element(scored, scored + (c - 1), scored + nr_scored,
                       [](const Scored& a, const Scored& b) {
                         return a.score < b.score;
                       });
    }

    // Phase 3: propose the selected, apply placements. The first c entries
    // of `scored` are the selected ones after nth_element.
    for (uint64_t i = 0; i < nr_scored; ++i) {
      ExtListNode* n = scored[i].node;
      if (i < c) {
        ctx->Propose(n->folio);
        Place(list, list_id, n, opts.on_evict, opts.dst_list_evict);
      } else {
        Place(list, list_id, n, opts.on_skip, opts.dst_list_skip);
      }
    }
    return OkStatus();
  }();
  Notify(bpf::verifier::Kfunc::kListIterateScore, st.code(), list_id,
         examined);
  return st;
}

}  // namespace cache_ext
