#include "src/cache_ext/loader.h"

#include <cctype>
#include <memory>

namespace cache_ext {

Status CacheExtLoader::Verify(const Ops& ops) {
  if (ops.name.empty()) {
    return InvalidArgument("ops.name must not be empty");
  }
  if (ops.name.size() >= kCacheExtOpsNameLen) {
    return InvalidArgument("ops.name exceeds CACHE_EXT_OPS_NAME_LEN");
  }
  for (const char c : ops.name) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_' &&
        c != '-') {
      return InvalidArgument("ops.name contains invalid characters");
    }
  }
  if (!ops.policy_init) {
    return InvalidArgument("policy_init program is required");
  }
  if (!ops.evict_folios) {
    return InvalidArgument("evict_folios program is required");
  }
  if (!ops.folio_added || !ops.folio_accessed || !ops.folio_removed) {
    return InvalidArgument("folio event programs are required");
  }
  if (ops.helper_budget == 0) {
    return InvalidArgument("helper budget must be positive");
  }
  return OkStatus();
}

Expected<CacheExtPolicy*> CacheExtLoader::Attach(MemCgroup* cg, Ops ops,
                                                 const CpuCostModel& costs) {
  if (cg == nullptr) {
    return InvalidArgument("null cgroup");
  }
  CACHE_EXT_RETURN_IF_ERROR(Verify(ops));
  if (page_cache_->ext_policy(cg) != nullptr) {
    return AlreadyExists("cgroup already has a cache_ext policy");
  }
  auto policy = std::make_unique<CacheExtPolicy>(std::move(ops), cg, costs);
  CACHE_EXT_RETURN_IF_ERROR(policy->Init());
  CacheExtPolicy* raw = policy.get();
  CACHE_EXT_RETURN_IF_ERROR(page_cache_->AttachExtPolicy(cg, std::move(policy)));
  return raw;
}

Status CacheExtLoader::Detach(MemCgroup* cg) {
  return page_cache_->DetachExtPolicy(cg);
}

}  // namespace cache_ext
