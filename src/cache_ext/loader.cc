#include "src/cache_ext/loader.h"

#include <memory>
#include <utility>

#include "src/bpf/verifier/verifier.h"

namespace cache_ext {

Status CacheExtLoader::Verify(const Ops& ops, bpf::verifier::VerifierLog* log) {
  bpf::verifier::VerifierLog local;
  return bpf::verifier::VerifyPolicy(ops, log != nullptr ? log : &local);
}

Expected<CacheExtPolicy*> CacheExtLoader::Attach(MemCgroup* cg, Ops ops,
                                                 const CpuCostModel& costs) {
  if (cg == nullptr) {
    return InvalidArgument("null cgroup");
  }
  bpf::verifier::VerifierLog log;
  const Status verdict = Verify(ops, &log);
  if (!verdict.ok()) {
    page_cache_->RecordLoadRejection(cg);
    return verdict;
  }
  if (page_cache_->ext_policy(cg) != nullptr) {
    return AlreadyExists("cgroup already has a cache_ext policy");
  }
  auto policy = std::make_unique<CacheExtPolicy>(std::move(ops), cg, costs);
  CACHE_EXT_RETURN_IF_ERROR(policy->Init());
  CacheExtPolicy* raw = policy.get();
  CACHE_EXT_RETURN_IF_ERROR(page_cache_->AttachExtPolicy(cg, std::move(policy)));
  return raw;
}

Status CacheExtLoader::Detach(MemCgroup* cg) {
  return page_cache_->DetachExtPolicy(cg);
}

}  // namespace cache_ext
