// CacheExtPolicy: the framework adapter between the page cache and a loaded
// set of policy functions (§4).
//
// Responsibilities (matching the kernel-side cache_ext code):
//  - maintain the valid-folio registry across admissions/removals (§4.4);
//  - dispatch page-cache events to the policy's programs, each under a
//    bpf::RunContext enforcing the helper budget;
//  - validate eviction candidates by registry membership before the page
//    cache dereferences them;
//  - guarantee cleanup: on removal the folio is unlinked from any eviction
//    list and dropped from the registry even if the policy's program
//    misbehaves ("the kernel ensures that it is removed from any eviction
//    lists", §4.4);
//  - contain per-hook failures: every program outcome feeds a per-hook
//    circuit breaker, and a tripped hook is degraded to the default kernel
//    behaviour (registry bookkeeping still runs) while healthy hooks keep
//    dispatching. Escalation is reported through WantsDetach() and finished
//    by the page-cache watchdog.

#ifndef SRC_CACHE_EXT_FRAMEWORK_H_
#define SRC_CACHE_EXT_FRAMEWORK_H_

#include <atomic>
#include <cstdint>
#include <string_view>

#include "src/cache_ext/circuit_breaker.h"
#include "src/cache_ext/eviction_list.h"
#include "src/cache_ext/ops.h"
#include "src/cache_ext/registry.h"
#include "src/pagecache/eviction.h"
#include "src/sim/cpu_cost.h"
#include "src/util/status.h"

namespace cache_ext {

class CacheExtPolicy : public ReclaimPolicy {
 public:
  CacheExtPolicy(Ops ops, MemCgroup* cg, const CpuCostModel& costs);

  // Runs the policy_init program. Load fails if it returns nonzero or
  // exhausts its budget.
  Status Init();

  // ReclaimPolicy interface -------------------------------------------------
  std::string_view name() const override { return ops_.name; }
  void FolioAdded(Folio* folio) override;
  void FolioAccessed(Folio* folio) override;
  void FolioRemoved(Folio* folio) override;
  void EvictFolios(EvictionCtx* ctx, MemCgroup* memcg) override;
  bool AdmitFolio(const AdmissionCtx& ctx) override;
  int64_t RequestPrefetch(const PrefetchCtx& ctx) override;
  int64_t RequestReadahead(const ReadaheadCtx& ctx) override;
  uint32_t AdmitOrder(const AdmitOrderCtx& ctx) override;
  bool ShouldWriteback(const WritebackCtx& ctx) override;
  int64_t WritebackOrder(const WritebackCtx& ctx) override;
  void FolioRefaulted(Folio* folio, uint32_t tier) override;
  bool ValidateCandidate(Folio* folio) override;
  uint64_t PerEventCostNs() const override { return per_event_cost_ns_; }
  PolicyHookHealth HookHealth() const override { return breaker_.Health(); }
  bool WantsDetach() const override { return breaker_.escalated(); }
  PolicyRuntimeCounters RuntimeCounters() const override;

  // Introspection ------------------------------------------------------------
  CacheExtApi& api() { return api_; }
  FolioRegistry& registry() { return registry_; }
  MemCgroup* cgroup() { return cg_; }
  const HookCircuitBreaker& breaker() const { return breaker_; }
  uint64_t aborted_programs() const {
    return aborted_programs_.load(std::memory_order_relaxed);
  }
  // Evict-hook dispatches by requester: the cgroup's background reclaimer
  // lane (src/reclaim, the asynchronous entry) vs allocating tasks in
  // direct reclaim. Visibility into how much of the policy's eviction work
  // was moved off the fault path.
  uint64_t background_evict_dispatches() const {
    return background_evict_dispatches_.load(std::memory_order_relaxed);
  }
  uint64_t direct_evict_dispatches() const {
    return direct_evict_dispatches_.load(std::memory_order_relaxed);
  }

 private:
  // Run one program under a RunContext, feeding the hook's breaker with the
  // outcome (abort = violation).
  template <typename Fn>
  void RunProgram(PolicyHook hook, Fn&& fn);

  // True when the hook is degraded: the program is skipped and the caller
  // applies the default kernel behaviour instead.
  bool Degraded(PolicyHook hook) const { return breaker_.Degraded(hook); }

  Ops ops_;
  MemCgroup* cg_;
  FolioRegistry registry_;
  CacheExtApi api_;
  uint64_t per_event_cost_ns_;
  HookCircuitBreaker breaker_;
  std::atomic<uint64_t> aborted_programs_{0};
  std::atomic<uint64_t> background_evict_dispatches_{0};
  std::atomic<uint64_t> direct_evict_dispatches_{0};
};

}  // namespace cache_ext

#endif  // SRC_CACHE_EXT_FRAMEWORK_H_
