// cache_ext struct_ops: the policy-function interface (Fig. 3).
//
// A policy is a set of "eBPF programs" (C++ callables written against the
// constrained bpf:: interface) triggered by five events: policy
// initialization, request for eviction, folio admission, folio access, and
// folio removal (§4.2.1) — plus the optional admission-filter extension
// (§5.6). Programs interact with the kernel exclusively through the
// CacheExtApi kfunc surface (Table 2) and bpf:: maps; they run under a
// bpf::RunContext that enforces a helper-call budget (the runtime analogue
// of verifier-proved termination).

#ifndef SRC_CACHE_EXT_OPS_H_
#define SRC_CACHE_EXT_OPS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/bpf/verifier/spec.h"
#include "src/cache_ext/circuit_breaker.h"
#include "src/cgroup/memcg.h"
#include "src/mm/folio.h"
#include "src/pagecache/eviction.h"

namespace cache_ext {

namespace bpf::ir {
struct IrPolicy;
}  // namespace bpf::ir

class CacheExtApi;

inline constexpr size_t kCacheExtOpsNameLen = 64;

// Mirrors:
//   struct cache_ext_ops {
//     s32  (*policy_init)(struct mem_cgroup *memcg);
//     void (*evict_folios)(struct eviction_ctx *ctx, struct mem_cgroup *);
//     void (*folio_added)(struct folio *folio);
//     void (*folio_accessed)(struct folio *folio);
//     void (*folio_removed)(struct folio *folio);
//     char name[CACHE_EXT_OPS_NAME_LEN];
//   };
// Programs additionally receive the CacheExtApi handle standing in for the
// kfunc linkage an eBPF program gets implicitly.
struct Ops {
  std::string name;

  // Required hooks.
  std::function<int32_t(CacheExtApi&, MemCgroup*)> policy_init;
  std::function<void(CacheExtApi&, EvictionCtx*, MemCgroup*)> evict_folios;
  std::function<void(CacheExtApi&, Folio*)> folio_added;
  std::function<void(CacheExtApi&, Folio*)> folio_accessed;
  std::function<void(CacheExtApi&, Folio*)> folio_removed;

  // Optional hooks.
  std::function<bool(CacheExtApi&, const AdmissionCtx&)> admit_folio;
  std::function<void(CacheExtApi&, Folio*, uint32_t)> folio_refaulted;
  // Prefetch-policy extension (§7, FetchBPF-style): pages to prefetch after
  // a miss; negative = defer to the kernel readahead heuristic. Legacy
  // per-page form — new policies should implement `readahead` instead.
  std::function<int64_t(CacheExtApi&, const PrefetchCtx&)> request_prefetch;
  // Readahead window per miss run (ondemand_readahead analogue): pages to
  // read ahead, 0 to suppress readahead, negative to defer to the kernel
  // heuristic (which falls back to request_prefetch for compat). Clamped
  // to PageCacheOptions::max_readahead_pages.
  std::function<int64_t(CacheExtApi&, const ReadaheadCtx&)> readahead;
  // Folio allocation order for an admission: 0 | 2 | 4. Any other return
  // is a violation (breaker-counted, treated as 0); the page cache also
  // falls back to 0 on misalignment or memcg pressure.
  std::function<uint32_t(CacheExtApi&, const AdmitOrderCtx&)> admit_order;
  // Writeback admission: false defers a harvested dirty folio to a later
  // flusher tick (ignored for fsync-driven harvests — durability wins).
  std::function<bool(CacheExtApi&, const WritebackCtx&)> should_writeback;
  // Flush-ordering key: each flush batch is sorted by ascending key before
  // extent coalescing. Negative defers to file offset order.
  std::function<int64_t(CacheExtApi&, const WritebackCtx&)> writeback_order;

  // Optional: add this policy's map counters (hash probes vs folio-local
  // storage hits) into `counters`. Policies wire this to the Stats() of
  // their bpf::FolioLocalStorage/bpf::HashMap instances; the framework
  // adds the eviction-arena counters itself. Not a program hook — no
  // RunContext, no budget, may be called concurrently with programs.
  std::function<void(PolicyRuntimeCounters*)> collect_counters;

  // Helper-call budget per program invocation (runtime stand-in for the
  // verifier's instruction limit).
  uint64_t helper_budget = 1 << 16;

  // Per-hook circuit-breaker thresholds for this policy's attachment (see
  // src/cache_ext/circuit_breaker.h).
  CircuitBreakerOptions breaker;

  // Declarative safety contract: worst-case helper calls, loop bounds, map
  // occupancy, and kfunc usage per hook. Policies that declare a spec get
  // the full load-time verifier (static proofs + instrumented dry run);
  // undeclared policies only receive the legacy presence/name checks. See
  // src/bpf/verifier/spec.h.
  bpf::verifier::ProgramSpec spec;

  // Set by ir::CompileToOps: the verified IR program the hook closures
  // interpret. When present, the loader runs the IR static analysis as
  // pass 0 and cross-checks that `spec` matches what it derives — an Ops
  // whose embedded spec disagrees with its own instructions is rejected.
  // Policies on the legacy std::function path leave this null and are
  // verified against their hand-declared spec only.
  std::shared_ptr<const bpf::ir::IrPolicy> ir;

  // Declared per-hook CPU cost charged to the acting lane on top of the
  // framework's dispatch/registry overhead (see src/sim/cpu_cost.h).
  uint64_t program_cost_ns = 120;
};

}  // namespace cache_ext

#endif  // SRC_CACHE_EXT_OPS_H_
