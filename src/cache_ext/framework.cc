#include "src/cache_ext/framework.h"

#include "src/bpf/prog.h"
#include "src/fault/fault_injector.h"
#include "src/util/logging.h"

namespace cache_ext {

namespace {
// Garbage candidate pointer planted by the kCandidateCorrupt fault. Never
// dereferenced: the registry membership check must reject it before the
// page cache touches it (that rejection is the property under test).
Folio* PoisonCandidate() {
  return reinterpret_cast<Folio*>(static_cast<uintptr_t>(0x5ca1ab1edeadULL));
}
}  // namespace

CacheExtPolicy::CacheExtPolicy(Ops ops, MemCgroup* cg,
                               const CpuCostModel& costs)
    : ops_(std::move(ops)),
      cg_(cg),
      // Worst case: one bucket per page the cgroup can hold (§6.3.1).
      registry_(cg->limit_pages()),
      api_(&registry_),
      per_event_cost_ns_(costs.hook_dispatch_ns + costs.registry_op_ns +
                         ops_.program_cost_ns),
      breaker_(ops_.breaker) {}

template <typename Fn>
void CacheExtPolicy::RunProgram(PolicyHook hook, Fn&& fn) {
  bpf::RunContext run(ops_.helper_budget);
  fn();
  const bool aborted = run.aborted();
  if (aborted) {
    aborted_programs_.fetch_add(1, std::memory_order_relaxed);
  }
  if (breaker_.Record(hook, aborted)) {
    LOG_WARNING << "cache_ext breaker: policy '" << ops_.name << "' hook '"
                << PolicyHookName(hook)
                << "' tripped; degrading this hook to default behaviour";
  }
}

Status CacheExtPolicy::Init() {
  if (fault::InjectFault(fault::points::kPolicyInit)) {
    return FailedPrecondition("policy_init failed (injected)");
  }
  int32_t rc = 0;
  bpf::RunContext run(ops_.helper_budget);
  rc = ops_.policy_init(api_, cg_);
  if (run.aborted()) {
    return ResourceExhausted("policy_init exhausted its helper budget");
  }
  if (rc != 0) {
    return FailedPrecondition("policy_init returned " + std::to_string(rc));
  }
  return OkStatus();
}

void CacheExtPolicy::FolioAdded(Folio* folio) {
  // Register first: the program's list_add() needs the registry entry. The
  // registry insert is a kernel obligation and runs even when the hook is
  // degraded — candidate validation depends on it.
  registry_.Insert(folio);
  if (Degraded(PolicyHook::kAdded)) {
    return;
  }
  RunProgram(PolicyHook::kAdded, [&] { ops_.folio_added(api_, folio); });
}

void CacheExtPolicy::FolioAccessed(Folio* folio) {
  if (!registry_.Contains(folio)) {
    // Should not happen (attach introduces resident folios), but a policy
    // must never observe unregistered folios.
    FolioAdded(folio);
    return;
  }
  if (Degraded(PolicyHook::kAccess)) {
    return;
  }
  RunProgram(PolicyHook::kAccess, [&] { ops_.folio_accessed(api_, folio); });
}

void CacheExtPolicy::FolioRemoved(Folio* folio) {
  if (!registry_.Contains(folio)) {
    return;
  }
  // Tell the policy first (it cleans its maps while the folio is still
  // registered), then enforce cleanup regardless of what the program did:
  // unlink from any eviction list and drop the registry entry (§4.4). A
  // degraded hook skips only the program — cleanup is unconditional.
  if (!Degraded(PolicyHook::kRemoved)) {
    RunProgram(PolicyHook::kRemoved, [&] { ops_.folio_removed(api_, folio); });
  }
  api_.UnlinkForRemoval(folio);
  registry_.Remove(folio);
}

void CacheExtPolicy::EvictFolios(EvictionCtx* ctx, MemCgroup* memcg) {
  if (ctx->source == ReclaimSource::kBackground) {
    background_evict_dispatches_.fetch_add(1, std::memory_order_relaxed);
  } else {
    direct_evict_dispatches_.fetch_add(1, std::memory_order_relaxed);
  }
  if (Degraded(PolicyHook::kEvict)) {
    // Propose nothing: the page cache's under-proposal fallback (§4.4)
    // evicts via the default policy for the remainder of the batch.
    return;
  }
  RunProgram(PolicyHook::kEvict,
             [&] { ops_.evict_folios(api_, ctx, memcg); });
  // Injected corruption: overwrite one proposed candidate with a garbage
  // pointer, as if the policy returned a stale/forged folio. Validation
  // must reject it (feeding this hook's breaker) without dereferencing.
  if (ctx->nr_candidates_proposed > 0 &&
      fault::InjectFault(fault::points::kCandidateCorrupt)) {
    ctx->candidates[ctx->nr_candidates_proposed - 1] = PoisonCandidate();
  }
}

bool CacheExtPolicy::AdmitFolio(const AdmissionCtx& ctx) {
  if (!ops_.admit_folio || Degraded(PolicyHook::kAdmit)) {
    // Default kernel behaviour: admit everything.
    return true;
  }
  bool admit = true;
  RunProgram(PolicyHook::kAdmit,
             [&] { admit = ops_.admit_folio(api_, ctx); });
  return admit;
}

int64_t CacheExtPolicy::RequestPrefetch(const PrefetchCtx& ctx) {
  if (!ops_.request_prefetch || Degraded(PolicyHook::kPrefetch)) {
    return -1;  // defer to the kernel readahead heuristic
  }
  int64_t window = -1;
  RunProgram(PolicyHook::kPrefetch,
             [&] { window = ops_.request_prefetch(api_, ctx); });
  return window;
}

int64_t CacheExtPolicy::RequestReadahead(const ReadaheadCtx& ctx) {
  if (!ops_.readahead || Degraded(PolicyHook::kReadahead)) {
    return -1;  // defer to the kernel readahead heuristic (window <= 8)
  }
  int64_t window = -1;
  RunProgram(PolicyHook::kReadahead,
             [&] { window = ops_.readahead(api_, ctx); });
  // Injected misfire: the policy "returns" a wild window, as if its stream
  // tracking went off the rails. The page cache's max_readahead_pages clamp
  // must contain it (surfaced via ext_readahead_clamped).
  uint64_t magnitude = 0;
  if (fault::InjectFault(fault::points::kReadaheadMisfire, &magnitude)) {
    window = magnitude != 0 ? static_cast<int64_t>(magnitude)
                            : static_cast<int64_t>(1) << 32;
  }
  return window;
}

uint32_t CacheExtPolicy::AdmitOrder(const AdmitOrderCtx& ctx) {
  if (!ops_.admit_order || Degraded(PolicyHook::kOrder)) {
    return 0;  // default kernel behaviour: single-page folios
  }
  uint32_t order = 0;
  RunProgram(PolicyHook::kOrder,
             [&] { order = ops_.admit_order(api_, ctx); });
  if (!ValidFolioOrder(order)) {
    // An out-of-set order is a policy violation, not a preference: count it
    // against this hook's breaker and fall back to a single page.
    if (breaker_.Record(PolicyHook::kOrder, true)) {
      LOG_WARNING << "cache_ext breaker: policy '" << ops_.name
                  << "' order hook tripped on invalid orders";
    }
    return 0;
  }
  return order;
}

bool CacheExtPolicy::ShouldWriteback(const WritebackCtx& ctx) {
  if (!ops_.should_writeback || Degraded(PolicyHook::kShouldWriteback)) {
    return true;  // default kernel behaviour: flush every harvested folio
  }
  bool flush = true;
  RunProgram(PolicyHook::kShouldWriteback,
             [&] { flush = ops_.should_writeback(api_, ctx); });
  // Durability override: fsync-driven harvests may not be vetoed — a policy
  // deferring folios an fsync needs would turn a hint into data loss.
  return flush || ctx.for_sync;
}

int64_t CacheExtPolicy::WritebackOrder(const WritebackCtx& ctx) {
  if (!ops_.writeback_order || Degraded(PolicyHook::kWritebackOrder)) {
    return -1;  // defer to file offset order
  }
  int64_t key = -1;
  RunProgram(PolicyHook::kWritebackOrder,
             [&] { key = ops_.writeback_order(api_, ctx); });
  return key;
}

void CacheExtPolicy::FolioRefaulted(Folio* folio, uint32_t tier) {
  if (!ops_.folio_refaulted || Degraded(PolicyHook::kRefault)) {
    return;
  }
  RunProgram(PolicyHook::kRefault,
             [&] { ops_.folio_refaulted(api_, folio, tier); });
}

PolicyRuntimeCounters CacheExtPolicy::RuntimeCounters() const {
  PolicyRuntimeCounters counters;
  if (ops_.collect_counters) {
    ops_.collect_counters(&counters);
  }
  const EvictionArenaStats arena = api_.ArenaStats();
  counters.evict_alloc_bytes = arena.alloc_bytes;
  counters.evict_arena_reuses = arena.reuses;
  return counters;
}

bool CacheExtPolicy::ValidateCandidate(Folio* folio) {
  // Membership check only — the pointer is NOT dereferenced (§4.4).
  const bool valid = registry_.Contains(folio);
  if (!valid) {
    // An invalid candidate is an eviction-hook violation: it feeds the same
    // breaker as a program abort, so a policy spewing garbage pointers
    // degrades its evict hook before the global watchdog limit is reached.
    if (breaker_.Record(PolicyHook::kEvict, true)) {
      LOG_WARNING << "cache_ext breaker: policy '" << ops_.name
                  << "' evict hook tripped on invalid candidates";
    }
  }
  return valid;
}

}  // namespace cache_ext
