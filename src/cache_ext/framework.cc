#include "src/cache_ext/framework.h"

#include "src/bpf/prog.h"
#include "src/util/logging.h"

namespace cache_ext {

CacheExtPolicy::CacheExtPolicy(Ops ops, MemCgroup* cg,
                               const CpuCostModel& costs)
    : ops_(std::move(ops)),
      cg_(cg),
      // Worst case: one bucket per page the cgroup can hold (§6.3.1).
      registry_(cg->limit_pages()),
      api_(&registry_),
      per_event_cost_ns_(costs.hook_dispatch_ns + costs.registry_op_ns +
                         ops_.program_cost_ns) {}

template <typename Fn>
void CacheExtPolicy::RunProgram(Fn&& fn) {
  bpf::RunContext run(ops_.helper_budget);
  fn();
  if (run.aborted()) {
    aborted_programs_.fetch_add(1, std::memory_order_relaxed);
  }
}

Status CacheExtPolicy::Init() {
  int32_t rc = 0;
  bpf::RunContext run(ops_.helper_budget);
  rc = ops_.policy_init(api_, cg_);
  if (run.aborted()) {
    return ResourceExhausted("policy_init exhausted its helper budget");
  }
  if (rc != 0) {
    return FailedPrecondition("policy_init returned " + std::to_string(rc));
  }
  return OkStatus();
}

void CacheExtPolicy::FolioAdded(Folio* folio) {
  // Register first: the program's list_add() needs the registry entry.
  registry_.Insert(folio);
  RunProgram([&] { ops_.folio_added(api_, folio); });
}

void CacheExtPolicy::FolioAccessed(Folio* folio) {
  if (!registry_.Contains(folio)) {
    // Should not happen (attach introduces resident folios), but a policy
    // must never observe unregistered folios.
    registry_.Insert(folio);
    RunProgram([&] { ops_.folio_added(api_, folio); });
    return;
  }
  RunProgram([&] { ops_.folio_accessed(api_, folio); });
}

void CacheExtPolicy::FolioRemoved(Folio* folio) {
  if (!registry_.Contains(folio)) {
    return;
  }
  // Tell the policy first (it cleans its maps while the folio is still
  // registered), then enforce cleanup regardless of what the program did:
  // unlink from any eviction list and drop the registry entry (§4.4).
  RunProgram([&] { ops_.folio_removed(api_, folio); });
  api_.UnlinkForRemoval(folio);
  registry_.Remove(folio);
}

void CacheExtPolicy::EvictFolios(EvictionCtx* ctx, MemCgroup* memcg) {
  RunProgram([&] { ops_.evict_folios(api_, ctx, memcg); });
}

bool CacheExtPolicy::AdmitFolio(const AdmissionCtx& ctx) {
  if (!ops_.admit_folio) {
    return true;
  }
  bool admit = true;
  RunProgram([&] { admit = ops_.admit_folio(api_, ctx); });
  return admit;
}

int64_t CacheExtPolicy::RequestPrefetch(const PrefetchCtx& ctx) {
  if (!ops_.request_prefetch) {
    return -1;
  }
  int64_t window = -1;
  RunProgram([&] { window = ops_.request_prefetch(api_, ctx); });
  return window;
}

void CacheExtPolicy::FolioRefaulted(Folio* folio, uint32_t tier) {
  if (!ops_.folio_refaulted) {
    return;
  }
  RunProgram([&] { ops_.folio_refaulted(api_, folio, tier); });
}

bool CacheExtPolicy::ValidateCandidate(Folio* folio) {
  // Membership check only — the pointer is NOT dereferenced (§4.4).
  return registry_.Contains(folio);
}

}  // namespace cache_ext
