#include "src/cache_ext/circuit_breaker.h"

#include "src/util/logging.h"

namespace cache_ext {

HookCircuitBreaker::HookCircuitBreaker(const CircuitBreakerOptions& options)
    : options_(options) {
  CHECK_GT(options_.window, 0u);
}

bool HookCircuitBreaker::Record(PolicyHook hook, bool violation) {
  const auto index = static_cast<uint32_t>(hook);
  DCHECK(index < kNumPolicyHooks);
  std::lock_guard<std::mutex> lock(mu_);
  HookState& st = hooks_[index];
  ++st.window_invocations;
  ++st.total_invocations;
  if (violation) {
    ++st.window_violations;
    ++st.total_violations;
  }

  bool newly_tripped = false;
  if (!st.tripped && st.window_invocations >= options_.min_samples &&
      static_cast<double>(st.window_violations) >=
          options_.trip_rate * static_cast<double>(st.window_invocations)) {
    st.tripped = true;
    ++st.trips;
    newly_tripped = true;
    degraded_mask_.fetch_or(PolicyHookBit(hook), std::memory_order_relaxed);
  }

  // Exponential decay: halve the window counters so old outcomes age out.
  if (st.window_invocations >= options_.window) {
    st.window_invocations /= 2;
    st.window_violations /= 2;
  }

  if (!escalated_.load(std::memory_order_relaxed)) {
    uint32_t tripped_hooks = 0;
    for (const HookState& h : hooks_) {
      tripped_hooks += h.tripped ? 1 : 0;
    }
    if (tripped_hooks >= options_.hooks_to_detach ||
        st.total_violations >= options_.hard_violation_limit) {
      escalated_.store(true, std::memory_order_relaxed);
    }
  }
  return newly_tripped;
}

bool HookCircuitBreaker::Degraded(PolicyHook hook) const {
  return (degraded_mask_.load(std::memory_order_relaxed) &
          PolicyHookBit(hook)) != 0;
}

PolicyHookHealth HookCircuitBreaker::Health() const {
  std::lock_guard<std::mutex> lock(mu_);
  PolicyHookHealth health;
  health.degraded_mask = degraded_mask_.load(std::memory_order_relaxed);
  health.escalate_detach = escalated_.load(std::memory_order_relaxed);
  for (uint32_t i = 0; i < kNumPolicyHooks; ++i) {
    health.trips[i] = hooks_[i].trips;
    health.violations[i] = hooks_[i].total_violations;
    health.invocations[i] = hooks_[i].total_invocations;
  }
  return health;
}

}  // namespace cache_ext
