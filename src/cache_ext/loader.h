// Userspace loader library (§4.3, §4.4, §6.1.6).
//
// Loading a cache_ext policy is a two-step protocol, mirroring the kernel's
// per-cgroup struct_ops extension:
//
//   1. Verify(): the load-time verifier. Delegates to
//      bpf::verifier::VerifyPolicy (src/bpf/verifier/), which runs two
//      passes: static proofs over the policy's declared ProgramSpec (worst
//      -case helper calls fit the budget, loop bounds are finite, map
//      occupancy fits capacity, candidate counts fit the eviction buffer,
//      candidate-producing kfuncs are reachable from evict_folios), then an
//      instrumented symbolic dry run of every hook against poisoned folios
//      that catches termination failures, helper-trace divergence, invalid
//      list operations, and folio-pointer leaks across hook boundaries.
//      Policies without a declared spec only get the legacy presence/name/
//      budget checks; the dynamic guards (RunContext budgets, candidate
//      registry validation, the watchdog) still apply to them at run time.
//      Callers may pass a VerifierLog to receive the full structured report
//      — every check evaluated, pass or fail, with counterexample traces.
//
//   2. Attach(): re-verify, build the framework adapter for the target
//      cgroup, run policy_init, and install it — the cgroup's eviction is
//      now driven by the policy, with the default policy as fallback. A
//      rejection at this point is recorded in the cgroup's watchdog stats
//      (rejected_at_load) so operators can distinguish "never loaded" from
//      "unloaded by the watchdog".
//
// This is the in-process analogue of the paper's libbpf extension that adds
// a cgroup file descriptor to struct_ops loading, with the verifier standing
// in for the kernel eBPF verifier's proof obligations.

#ifndef SRC_CACHE_EXT_LOADER_H_
#define SRC_CACHE_EXT_LOADER_H_

#include "src/bpf/verifier/log.h"
#include "src/bpf/verifier/verifier.h"
#include "src/cache_ext/framework.h"
#include "src/cache_ext/ops.h"
#include "src/pagecache/page_cache.h"
#include "src/util/status.h"

namespace cache_ext {

class CacheExtLoader {
 public:
  explicit CacheExtLoader(PageCache* page_cache)
      : page_cache_(page_cache) {}

  // Load-time verification of a policy's ops struct (both passes; see the
  // file comment). When `log` is non-null it receives the full report —
  // every finding, not just the first failure the Status carries.
  static Status Verify(const Ops& ops, bpf::verifier::VerifierLog* log = nullptr);

  // Verify + instantiate + policy_init + install for `cg`. On success the
  // returned adapter is owned by the page cache; it stays valid until
  // Detach. Fails if the cgroup already has a policy attached. Verifier
  // rejections are counted in the cgroup's watchdog stats.
  Expected<CacheExtPolicy*> Attach(MemCgroup* cg, Ops ops,
                                   const CpuCostModel& costs = {});

  Status Detach(MemCgroup* cg);

 private:
  PageCache* page_cache_;
};

}  // namespace cache_ext

#endif  // SRC_CACHE_EXT_LOADER_H_
