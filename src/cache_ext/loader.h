// Userspace loader library (§4.3, §6.1.6).
//
// Loading a cache_ext policy is a two-step protocol, mirroring the paper's
// per-cgroup struct_ops extension:
//   1. Verify(): the "verifier" — static checks on the ops struct (required
//      programs present, name constraints, sane budget). The dynamic half of
//      verification (helper budgets, candidate validation, watchdog) runs at
//      execution time.
//   2. Attach(): build the framework adapter for the target cgroup, run
//      policy_init, and install it — the cgroup's eviction is now driven by
//      the policy, with the default policy as fallback.
//
// This is the in-process analogue of the paper's libbpf extension that adds
// a cgroup file descriptor to struct_ops loading.

#ifndef SRC_CACHE_EXT_LOADER_H_
#define SRC_CACHE_EXT_LOADER_H_

#include "src/cache_ext/framework.h"
#include "src/cache_ext/ops.h"
#include "src/pagecache/page_cache.h"
#include "src/util/status.h"

namespace cache_ext {

class CacheExtLoader {
 public:
  explicit CacheExtLoader(PageCache* page_cache)
      : page_cache_(page_cache) {}

  // Static validation of a policy's ops struct.
  static Status Verify(const Ops& ops);

  // Verify + instantiate + policy_init + install for `cg`. On success the
  // returned adapter is owned by the page cache; it stays valid until
  // Detach. Fails if the cgroup already has a policy attached.
  Expected<CacheExtPolicy*> Attach(MemCgroup* cg, Ops ops,
                                   const CpuCostModel& costs = {});

  Status Detach(MemCgroup* cg);

 private:
  PageCache* page_cache_;
};

}  // namespace cache_ext

#endif  // SRC_CACHE_EXT_LOADER_H_
