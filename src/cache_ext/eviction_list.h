// The eviction-list kfunc API (Table 2, §4.2.2-§4.2.3).
//
// Policies organize folios into variable-sized linked lists of folio
// *pointers* (the folios themselves stay in the page cache). Lists are
// created at init time and manipulated from the policy-function hooks; the
// eviction hook walks them with list_iterate() to propose candidates.
//
// Everything here is concurrency-safe with locking "under the hood"
// (§4.2.4) and bounds-checked (§4.4): list ids are validated, folios must be
// registered, iteration is capped, and every call charges the running
// program's helper budget — an aborted program's calls fail.

#ifndef SRC_CACHE_EXT_EVICTION_LIST_H_
#define SRC_CACHE_EXT_EVICTION_LIST_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "src/bpf/verifier/spec.h"
#include "src/cache_ext/registry.h"
#include "src/pagecache/eviction.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace cache_ext {

// Recorded outcome of one kfunc invocation. The load-time verifier attaches
// an observer during its dry run to capture the helper trace (which kfuncs a
// hook actually called, against which lists, with what result) — the
// userspace analogue of the kernel verifier walking every instruction.
struct KfuncEvent {
  bpf::verifier::Kfunc kfunc;
  ErrorCode code = ErrorCode::kOk;
  uint64_t list_id = 0;    // 0 when the kfunc takes no list id
  uint64_t iterations = 0; // folios examined (iterate kfuncs only)
};

class ApiObserver {
 public:
  virtual ~ApiObserver() = default;
  virtual void OnKfunc(const KfuncEvent& event) = 0;
};

// What list_iterate() does with an examined folio (§4.2.3: "they can be
// left in place, moved to the tail of the list, or moved to a different
// list").
enum class IterPlacement {
  kKeepInPlace,
  kMoveToTail,
  kMoveToList,
};

struct IterOpts {
  // Examine at most this many folios (N in the paper's batch-scoring mode).
  uint64_t nr_scan = 512;
  // Placement for folios the callback did NOT select for eviction.
  IterPlacement on_skip = IterPlacement::kKeepInPlace;
  uint64_t dst_list_skip = 0;  // target when on_skip == kMoveToList
  // Placement for folios selected as eviction candidates (e.g. S3-FIFO
  // rotates them to the small list's tail so they aren't re-examined).
  IterPlacement on_evict = IterPlacement::kKeepInPlace;
  uint64_t dst_list_evict = 0;
};

// Simple mode: callback verdict per folio.
enum class IterVerdict {
  kSkip,
  kEvict,
  kStop,
};
using IterateFn = std::function<IterVerdict(Folio*)>;

// Batch-scoring mode: callback returns a score; the C lowest-scored of the
// first N folios are selected (§4.2.3).
using ScoreFn = std::function<int64_t(Folio*)>;

// Observability snapshot of an EvictionArena (CgroupCacheStats
// ext_evict_alloc_bytes / ext_evict_arena_reuses).
struct EvictionArenaStats {
  uint64_t alloc_bytes = 0;  // cumulative heap bytes the arena allocated
  uint64_t reuses = 0;       // Reserve() calls served without allocating
  uint64_t capacity = 0;     // current buffer size
};

// Per-cgroup scratch buffer for evict_folios score batches. Before the
// arena, every ListIterateScore call allocated (and freed) a
// std::vector for the batch — a heap round-trip on the reclaim hot
// path, per pass. The arena keeps one grow-only buffer per attached
// policy: after the first reclaim at a given batch size, steady-state
// eviction allocates nothing (asserted by the alloc_bytes counter in
// tests and reported per-op by the benches).
class EvictionArena {
 public:
  // Scratch of at least `bytes` bytes, valid until the next Reserve.
  // Callers serialize through the owning CacheExtApi's lock; the
  // counters are atomic only so stats snapshots need no lock.
  void* Reserve(size_t bytes) {
    if (bytes <= cap_) {
      reuses_.fetch_add(1, std::memory_order_relaxed);
      return buf_.get();
    }
    size_t cap = cap_ < 2048 ? 2048 : cap_;
    while (cap < bytes) {
      cap *= 2;
    }
    buf_ = std::make_unique<std::byte[]>(cap);
    cap_ = cap;
    alloc_bytes_.fetch_add(cap, std::memory_order_relaxed);
    return buf_.get();
  }

  EvictionArenaStats Stats() const {
    EvictionArenaStats s;
    s.alloc_bytes = alloc_bytes_.load(std::memory_order_relaxed);
    s.reuses = reuses_.load(std::memory_order_relaxed);
    s.capacity = cap_;
    return s;
  }

 private:
  std::unique_ptr<std::byte[]> buf_;
  size_t cap_ = 0;
  std::atomic<uint64_t> alloc_bytes_{0};
  std::atomic<uint64_t> reuses_{0};
};

// The kfunc surface handed to policy programs. One instance per loaded
// policy (lists are per-policy, §4.2.2's "registry" of lists).
class CacheExtApi {
 public:
  explicit CacheExtApi(FolioRegistry* registry);
  ~CacheExtApi();
  CacheExtApi(const CacheExtApi&) = delete;
  CacheExtApi& operator=(const CacheExtApi&) = delete;

  // cache_ext_list_create(): returns the new list's id (ids start at 1).
  Expected<uint64_t> ListCreate();

  // cache_ext_list_add{,_tail}(): link an unlinked, registered folio.
  Status ListAdd(uint64_t list_id, Folio* folio, bool tail);
  // cache_ext_list_move{,_tail}(): relink (possibly across lists).
  Status ListMove(uint64_t list_id, Folio* folio, bool tail);
  // cache_ext_list_del(): unlink from whatever list holds it.
  Status ListDel(Folio* folio);

  Expected<uint64_t> ListSize(uint64_t list_id) const;

  // cache_ext_list_id_of(): the id of the list currently holding `folio`,
  // or 0 if the folio is not on any list. Lets policies distinguish which
  // queue a folio was in when it is removed (S3-FIFO's ghost insertion).
  Expected<uint64_t> ListIdOf(const Folio* folio) const;

  // bpf_get_current_pid_tgid() analogues (see src/pagecache/current_task.h).
  int32_t CurrentPid() const;
  int32_t CurrentTid() const;

  // cache_ext_list_iterate(), simple mode.
  Status ListIterate(uint64_t list_id, const IterOpts& opts, EvictionCtx* ctx,
                     const IterateFn& fn);
  // cache_ext_list_iterate(), batch-scoring mode.
  Status ListIterateScore(uint64_t list_id, const IterOpts& opts,
                          EvictionCtx* ctx, const ScoreFn& fn);

  // Framework-internal (not a kfunc): unlink a folio during removal cleanup
  // without charging any program budget. Not observed.
  void UnlinkForRemoval(Folio* folio);

  uint64_t nr_lists() const;

  // Scratch-arena counters for this policy's eviction path.
  EvictionArenaStats ArenaStats() const {
    MutexLock lock(mu_);
    return arena_.Stats();
  }

  // Instrument every kfunc with `observer` (nullptr to detach). Used by the
  // load-time verifier's dry run; production attachments run unobserved.
  void set_observer(ApiObserver* observer) { observer_ = observer; }

 private:
  struct ExtList {
    ExtListNode head;  // sentinel: folio == nullptr
    uint64_t size = 0;

    ExtList() {
      head.prev = &head;
      head.next = &head;
    }
  };

  ExtList* FindList(uint64_t list_id) CACHE_EXT_REQUIRES(mu_);
  const ExtList* FindList(uint64_t list_id) const CACHE_EXT_REQUIRES(mu_);

  // Linking helpers; mu_ must be held (static, so the requirement is by
  // convention — every caller is an annotated member).
  static void LinkNode(ExtList* list, uint64_t list_id, ExtListNode* node,
                       bool tail);
  static void UnlinkNode(ExtList* list, ExtListNode* node);
  void Place(ExtList* list, uint64_t list_id, ExtListNode* node,
             IterPlacement placement, uint64_t dst_list_id)
      CACHE_EXT_REQUIRES(mu_);

  // Report a kfunc outcome to the attached observer, if any.
  void Notify(bpf::verifier::Kfunc kfunc, ErrorCode code, uint64_t list_id,
              uint64_t iterations = 0) const;

  FolioRegistry* registry_;
  ApiObserver* observer_ = nullptr;
  mutable Mutex mu_;  // guards lists_, all node linkage, and arena_
  uint64_t next_list_id_ CACHE_EXT_GUARDED_BY(mu_) = 1;
  std::unordered_map<uint64_t, std::unique_ptr<ExtList>> lists_
      CACHE_EXT_GUARDED_BY(mu_);
  // Score-batch scratch, reused across reclaim passes. Reserve() runs under
  // mu_; Stats() reads only the atomics.
  EvictionArena arena_ CACHE_EXT_GUARDED_BY(mu_);
};

}  // namespace cache_ext

#endif  // SRC_CACHE_EXT_EVICTION_LIST_H_
