// Per-cgroup dirty thresholds: the memcg analogue of the kernel's
// dirty_background_ratio / dirty_ratio pair that paces the bdi flusher and
// balance_dirty_pages.
//
// Everything is expressed in *dirty pages* charged to the cgroup. The
// background flusher lane wakes when the dirty count exceeds `bg_pages`
// (kernel: dirty_background_ratio waking the bdi flusher) and dirtying
// lanes are throttled once the count exceeds `dirty_pages` (kernel:
// dirty_ratio pulling the writer into balance_dirty_pages). The gap between
// the two thresholds is the operating band the flusher tries to keep the
// cgroup inside: writers only ever stall when they outrun the device.
//
// Like reclaim's Watermarks, thresholds are *derived* from the limit via
// per-1024 ratios, never declared as absolute counts, so they stay valid
// under limit and config churn: Derive() clamps any spec — zero, inverted,
// or >100% ratios included — into a state where Valid() holds for every
// limit >= 2 pages.

#ifndef SRC_WRITEBACK_DIRTY_H_
#define SRC_WRITEBACK_DIRTY_H_

#include <algorithm>
#include <cstdint>

#include "src/cgroup/memcg.h"

namespace cache_ext::writeback {

// Threshold ratios in 1024ths of the cgroup limit. Defaults match
// MemCgroup's per-cgroup knobs (~10% background, ~20% throttle).
struct DirtySpec {
  uint32_t bg_per_1024 = kDefaultDirtyBgPer1024;
  uint32_t dirty_per_1024 = kDefaultDirtyPer1024;
};

struct DirtyLimits {
  uint64_t limit_pages = 0;
  uint64_t bg_pages = 0;     // wake the flusher when dirty > bg
  uint64_t dirty_pages = 0;  // throttle dirtying lanes when dirty > dirty

  // The invariant every derivation upholds: 0 < bg < dirty <= limit. A
  // cgroup too small to carve two distinct thresholds out of (limit < 2)
  // has no valid limits and writeback stays purely fsync-driven.
  bool Valid() const {
    return limit_pages >= 2 && bg_pages >= 1 && bg_pages < dirty_pages &&
           dirty_pages <= limit_pages;
  }

  // Wake condition: dirty pages climbed past the background threshold.
  bool NeedsWake(uint64_t nr_dirty) const { return nr_dirty > bg_pages; }
  // Throttle condition: dirty pages climbed past the hard dirty threshold.
  bool NeedsThrottle(uint64_t nr_dirty) const {
    return nr_dirty > dirty_pages;
  }
  // Sleep condition: the flusher has drained the cgroup back under the
  // background threshold (the kernel flusher also stops at bg_thresh).
  bool TargetReached(uint64_t nr_dirty) const { return nr_dirty <= bg_pages; }

  // Derive limits from a cgroup limit and a spec. Total: any spec yields a
  // Valid() result for limit_pages >= 2 (ratios are clamped to at most
  // 1024/1024, bg to [1, limit-1], dirty to [bg+1, limit]).
  static DirtyLimits Derive(uint64_t limit_pages, DirtySpec spec) {
    DirtyLimits dl;
    dl.limit_pages = limit_pages;
    if (limit_pages < 2) {
      return dl;  // !Valid(): background writeback cannot engage
    }
    dl.bg_pages = std::clamp<uint64_t>(Scale(limit_pages, spec.bg_per_1024),
                                       1, limit_pages - 1);
    dl.dirty_pages =
        std::clamp<uint64_t>(Scale(limit_pages, spec.dirty_per_1024),
                             dl.bg_pages + 1, limit_pages);
    return dl;
  }

 private:
  // limit * per / 1024 without overflow for any uint64 limit (per <= 1024
  // after clamping, so each term stays below the input).
  static uint64_t Scale(uint64_t limit_pages, uint32_t per_1024) {
    const uint64_t per = std::min<uint64_t>(per_1024, 1024);
    return (limit_pages / 1024) * per + (limit_pages % 1024) * per / 1024;
  }
};

// Derive the dirty limits for a cgroup from its current limit and its
// per-cgroup ratio knobs. Pure arithmetic on racy-relaxed config reads, so
// runtime churn of either is safe — there is no cached state to go stale.
inline DirtyLimits ForCgroup(const MemCgroup& cg) {
  return DirtyLimits::Derive(
      cg.limit_pages(), DirtySpec{cg.dirty_bg_per_1024(), cg.dirty_per_1024()});
}

}  // namespace cache_ext::writeback

#endif  // SRC_WRITEBACK_DIRTY_H_
