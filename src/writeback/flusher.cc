#include "src/writeback/flusher.h"

#include <algorithm>

#include "src/fault/fault_injector.h"
#include "src/mm/address_space.h"

namespace cache_ext::writeback {

void SortFlushItems(std::vector<FlushItem>& items) {
  std::sort(items.begin(), items.end(),
            [](const FlushItem& a, const FlushItem& b) {
              const bool a_keyed = a.key >= 0;
              const bool b_keyed = b.key >= 0;
              if (a_keyed != b_keyed) {
                return a_keyed;
              }
              if (a_keyed && a.key != b.key) {
                return a.key < b.key;
              }
              if (a.mapping != b.mapping) {
                return a.mapping->id() < b.mapping->id();
              }
              return a.index < b.index;
            });
}

std::vector<FlushExtent> SortAndCoalesce(std::vector<FlushItem> items,
                                         uint32_t max_extent_pages) {
  if (max_extent_pages == 0) {
    max_extent_pages = 1;
  }
  SortFlushItems(items);
  std::vector<FlushExtent> extents;
  for (const FlushItem& item : items) {
    if (!extents.empty()) {
      FlushExtent& tail = extents.back();
      if (tail.mapping == item.mapping &&
          tail.index + tail.nr_pages == item.index &&
          tail.nr_pages + item.nr_pages <= max_extent_pages) {
        tail.nr_pages += item.nr_pages;
        continue;
      }
    }
    extents.push_back(FlushExtent{item.mapping, item.index, item.nr_pages});
  }
  return extents;
}

void CgroupFlushControl::NoteDirtied(AddressSpace* mapping, uint64_t nr) {
  nr_dirty_.fetch_add(nr, std::memory_order_relaxed);
  mapping->nr_dirty.fetch_add(nr, std::memory_order_relaxed);
  bool expected = false;
  if (mapping->wb_on_dirty_list.compare_exchange_strong(
          expected, true, std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(files_mu_);
    dirty_files_.push_back(mapping);
  }
}

void CgroupFlushControl::NoteCleaned(AddressSpace* mapping, uint64_t nr) {
  nr_dirty_.fetch_sub(nr, std::memory_order_relaxed);
  mapping->nr_dirty.fetch_sub(nr, std::memory_order_relaxed);
}

bool CgroupFlushControl::ShouldWake(const DirtyLimits& dl) {
  const uint64_t nr_dirty = nr_dirty_.load(std::memory_order_relaxed);
  if (active_.load(std::memory_order_relaxed)) {
    if (dl.TargetReached(nr_dirty)) {
      active_.store(false, std::memory_order_relaxed);
      return false;
    }
    return true;
  }
  if (!dl.NeedsWake(nr_dirty)) {
    return false;
  }
  // Idle->active edge. A lost wakeup (injected) leaves the latch unarmed so
  // the kick is genuinely dropped — the poll backstop or the next dirtying
  // operation must rediscover the pressure.
  if (fault::InjectFault(fault::points::kWritebackLostWakeup)) {
    lost_wakeups_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  active_.store(true, std::memory_order_relaxed);
  wakeups_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

FlushTickOutcome CgroupFlushControl::EnterTick(const DirtyLimits& dl) {
  // Stall injection wedges the lane for `magnitude` ticks (default 8):
  // decrement the remaining-ticks counter and make no progress. Writers
  // above the dirty ratio keep throttling until the lane heals.
  uint64_t remaining = stall_ticks_remaining_.load(std::memory_order_relaxed);
  while (remaining > 0) {
    if (stall_ticks_remaining_.compare_exchange_weak(
            remaining, remaining - 1, std::memory_order_relaxed)) {
      stalled_ticks_.fetch_add(1, std::memory_order_relaxed);
      return FlushTickOutcome::kStalled;
    }
  }
  uint64_t magnitude = 0;
  if (fault::InjectFault(fault::points::kWritebackStall, &magnitude)) {
    const uint64_t ticks =
        magnitude != 0 ? magnitude : kDefaultStallTicks;
    stall_ticks_remaining_.store(ticks - 1, std::memory_order_relaxed);
    stalled_ticks_.fetch_add(1, std::memory_order_relaxed);
    return FlushTickOutcome::kStalled;
  }
  const uint64_t nr_dirty = nr_dirty_.load(std::memory_order_relaxed);
  if (nr_dirty == 0) {
    active_.store(false, std::memory_order_relaxed);
    return FlushTickOutcome::kIdle;
  }
  // Run whenever anything is dirty and the latch is armed; when idle, only
  // bother once the background threshold is crossed (an explicit sync still
  // flushes via SyncFile, not the background lane).
  if (!active_.load(std::memory_order_relaxed) && !dl.NeedsWake(nr_dirty)) {
    return FlushTickOutcome::kIdle;
  }
  return FlushTickOutcome::kRun;
}

bool CgroupFlushControl::PartialFlushInjected() {
  if (fault::InjectFault(fault::points::kWritebackPartialFlush)) {
    partial_flushes_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

std::vector<AddressSpace*> CgroupFlushControl::TakeDirtyFiles() {
  std::vector<AddressSpace*> files;
  {
    std::lock_guard<std::mutex> lock(files_mu_);
    files.swap(dirty_files_);
  }
  for (AddressSpace* mapping : files) {
    mapping->wb_on_dirty_list.store(false, std::memory_order_relaxed);
  }
  return files;
}

void CgroupFlushControl::RequeueDirtyFile(AddressSpace* mapping) {
  bool expected = false;
  if (mapping->wb_on_dirty_list.compare_exchange_strong(
          expected, true, std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(files_mu_);
    dirty_files_.push_back(mapping);
  }
}

WritebackCounterSnapshot CgroupFlushControl::Snapshot() const {
  WritebackCounterSnapshot s;
  s.dirty_pages = Load(nr_dirty_);
  s.wakeups = Load(wakeups_);
  s.flush_ticks = Load(flush_ticks_);
  s.pages_written = Load(pages_written_);
  s.extents_written = Load(extents_written_);
  s.deferred_pages = Load(deferred_pages_);
  s.throttle_entries = Load(throttle_entries_);
  s.dirty_throttle_ns = Load(dirty_throttle_ns_);
  s.writeback_ns = Load(writeback_ns_);
  s.sync_entries = Load(sync_entries_);
  s.stalled_ticks = Load(stalled_ticks_);
  s.lost_wakeups = Load(lost_wakeups_);
  s.partial_flushes = Load(partial_flushes_);
  return s;
}

}  // namespace cache_ext::writeback
