// Per-cgroup background flusher lanes: the bdi-flusher analogue (ISSUE 9).
//
// The kernel keeps writeback off the write() path by letting per-bdi
// flusher threads harvest dirty inodes (wb->b_dirty) once dirty pages cross
// dirty_background_ratio, and only throttles writers in
// balance_dirty_pages once they outrun the device past dirty_ratio. This
// module is that machinery for the simulated page cache:
//
//  - `CgroupFlushControl` is the per-cgroup control block (one per
//    CgroupState, next to its CgroupReclaimControl): the dirty-page gauge,
//    the dirty-file set (the b_dirty inode list analogue), the hysteresis
//    latch that turns dirty-threshold crossings into wakeups, the flusher's
//    own virtual Lane (writeback CPU time is charged here, not to the
//    dirtying writer), and every writeback counter surfaced through
//    CgroupCacheStats — including the PSI-style stall split the issue asks
//    for: `dirty_throttle_ns` (writers stalled in the balance_dirty_pages
//    analogue) vs `writeback_ns` (lane time actually writing).
//
//  - `FlushItem`/`SortAndCoalesce` are the harvest/coalesce step: dirty
//    folios collected under
//    the stripe become sort-keyed items, and SortAndCoalesce() merges
//    contiguous same-file runs into extents so one SubmitWrite covers a
//    whole run (the block layer's request merging).
//
//  - The MT harness reuses reclaim::ReclaimerPool for real flusher threads;
//    single-threaded simulators tick the lane synchronously at dirtying
//    sites, which models an always-prompt flusher on its own clock.
//
// Fault points `writeback.stall`, `writeback.lost_wakeup` and
// `writeback.partial_flush` (armed by the chaos suite) wedge a lane, drop a
// kick, or truncate a tick; all InjectFault call sites live in flusher.cc.

#ifndef SRC_WRITEBACK_FLUSHER_H_
#define SRC_WRITEBACK_FLUSHER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/sim/lane.h"
#include "src/writeback/dirty.h"

namespace cache_ext {
class AddressSpace;
struct Folio;
}  // namespace cache_ext

namespace cache_ext::writeback {

// Master switches and knobs, embedded in PageCacheOptions.
struct WritebackOptions {
  // Enable background writeback. False (the `writeback.background=false`
  // ablation and the default) preserves the historical behaviour: dirty
  // folios are only written back by fsync or at eviction time, inline on
  // the acting lane.
  bool background = false;
  // Real flusher threads (MT harness). False = virtual lanes: the flusher
  // is ticked synchronously at dirtying sites in the single-threaded
  // simulators, charging its work to its own virtual clock.
  bool use_threads = false;
  uint32_t nr_threads = 1;
  // Thread poll period (microseconds of wall time) when no kick arrives —
  // the backstop that keeps a cgroup draining after a lost wakeup.
  uint32_t thread_poll_us = 200;
  // Dirty pages one flush tick may harvest before yielding (the analogue of
  // MAX_WRITEBACK_PAGES bounding one wb_writeback chunk).
  uint32_t max_pages_per_tick = 1024;
  // Upper bound on one coalesced extent, in pages (device request cap).
  uint32_t max_extent_pages = 256;
  // Nanoseconds a throttled writer stalls per balance_dirty_pages round
  // before re-checking the gauge (kernel: ~one pause() of HZ/5 scaled).
  uint64_t throttle_pause_ns = 200 * 1000;
  // Rounds a single Write may be throttled before it proceeds anyway —
  // bounds writer latency when the device simply cannot keep up.
  uint32_t max_throttle_rounds = 16;
};

// Outcome of a tick attempt, decided before any harvest work.
enum class FlushTickOutcome : uint8_t {
  kRun,      // proceed with harvest + flush
  kStalled,  // wedged this tick (writeback.stall): no progress
  kIdle,     // nothing dirty enough to flush
};

// Counter snapshot, copied into CgroupCacheStats under the cgroup lock.
struct WritebackCounterSnapshot {
  uint64_t dirty_pages = 0;  // live gauge, not cumulative
  uint64_t wakeups = 0;
  uint64_t flush_ticks = 0;
  uint64_t pages_written = 0;
  uint64_t extents_written = 0;
  uint64_t deferred_pages = 0;   // should_writeback vetoes
  uint64_t throttle_entries = 0;
  uint64_t dirty_throttle_ns = 0;  // writers stalled above the dirty ratio
  uint64_t writeback_ns = 0;       // lane time spent writing (bg + sync)
  uint64_t sync_entries = 0;
  uint64_t stalled_ticks = 0;
  uint64_t lost_wakeups = 0;
  uint64_t partial_flushes = 0;
};

// One dirty folio harvested for flushing, plus its policy sort key. The
// folio pointer is an opaque cookie for the harvester (it holds a pin on it
// across the submit); the sort/coalesce step never dereferences it.
struct FlushItem {
  AddressSpace* mapping = nullptr;
  uint64_t index = 0;
  uint32_t nr_pages = 0;
  int64_t key = -1;  // policy writeback_order key; <0 = file offset order
  Folio* folio = nullptr;
};

// A contiguous per-file run of harvested pages: one device write.
struct FlushExtent {
  AddressSpace* mapping = nullptr;
  uint64_t index = 0;
  uint64_t nr_pages = 0;
};

// Sort items by (key, mapping, index): keyed items first in ascending key
// order, then unkeyed ones (key < 0) in file offset order — a policy keying
// only some folios still flushes those first. Ties break by (mapping,
// index) so contiguous runs of the same file end up adjacent and mergeable
// regardless of harvest order.
void SortFlushItems(std::vector<FlushItem>& items);

// SortFlushItems + merge contiguous same-file runs into extents of at most
// `max_extent_pages` pages each.
std::vector<FlushExtent> SortAndCoalesce(std::vector<FlushItem> items,
                                         uint32_t max_extent_pages);

// Per-cgroup flusher control block. Mutators on the dirty gauge run from
// lockless hit paths, so everything is atomic; the dirty-file set has its
// own small mutex (the kernel's wb->list_lock analogue).
class CgroupFlushControl {
 public:
  explicit CgroupFlushControl(uint32_t cgroup_id)
      : lane_(kLaneIdBase + cgroup_id, TaskContext{0, 0},
              kLaneSeed + cgroup_id) {}
  CgroupFlushControl(const CgroupFlushControl&) = delete;
  CgroupFlushControl& operator=(const CgroupFlushControl&) = delete;

  // The flusher's own virtual clock. Background writeback work is charged
  // here — the point of the subsystem is that this time does NOT appear on
  // any dirtying writer's lane. Guarded by the owning cgroup's lock.
  Lane& lane() { return lane_; }

  // ---- Dirty accounting (writer side) ------------------------------------

  // `nr` pages of `mapping` went clean->dirty: advance the cgroup gauge and
  // the mapping's own dirty count, and put the file on the dirty list.
  // Callable from lockless hit paths.
  void NoteDirtied(AddressSpace* mapping, uint64_t nr);
  // `nr` dirty pages of `mapping` went clean (written back, or removed from
  // the cache with their dirty bit). Counters only — the file drops off the
  // dirty list lazily when a harvest finds it clean.
  void NoteCleaned(AddressSpace* mapping, uint64_t nr);
  uint64_t nr_dirty() const {
    return nr_dirty_.load(std::memory_order_relaxed);
  }

  // Hysteresis latch: returns true while the flusher should be running.
  // Arms when the gauge crosses the background threshold, stays armed until
  // the tick drains back under it, and counts a wakeup only on the
  // idle->active edge. Consults writeback.lost_wakeup: a dropped kick
  // leaves the latch armed but tells the caller not to kick this time.
  bool ShouldWake(const DirtyLimits& dl);
  void NoteTargetReached() { active_.store(false, std::memory_order_relaxed); }

  // Writer throttling above the dirty ratio (balance_dirty_pages).
  void NoteThrottle(uint64_t stall_ns) {
    throttle_entries_.fetch_add(1, std::memory_order_relaxed);
    dirty_throttle_ns_.fetch_add(stall_ns, std::memory_order_relaxed);
  }

  // ---- Flusher side (flush tick) -----------------------------------------

  // Gate at the top of every tick; consults the chaos fault points.
  // writeback.stall wedges the next `magnitude` ticks (default 8).
  FlushTickOutcome EnterTick(const DirtyLimits& dl);
  // writeback.partial_flush: when armed, the tick stops after its first
  // extent. Checked between extents.
  bool PartialFlushInjected();

  // Snapshot the dirty-file list for one harvest round. Files found clean
  // are dropped; files with remaining dirty pages are re-added by the
  // caller via RequeueDirtyFile.
  std::vector<AddressSpace*> TakeDirtyFiles();
  void RequeueDirtyFile(AddressSpace* mapping);

  void NoteFlush(uint64_t pages, uint64_t extents) {
    flush_ticks_.fetch_add(1, std::memory_order_relaxed);
    pages_written_.fetch_add(pages, std::memory_order_relaxed);
    extents_written_.fetch_add(extents, std::memory_order_relaxed);
  }
  void NoteDeferred(uint64_t pages) {
    deferred_pages_.fetch_add(pages, std::memory_order_relaxed);
  }
  void NoteWritebackNs(uint64_t ns) {
    writeback_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  void NoteSyncEntry() {
    sync_entries_.fetch_add(1, std::memory_order_relaxed);
  }

  WritebackCounterSnapshot Snapshot() const;

 private:
  static constexpr uint32_t kLaneIdBase = 0x77000000;  // 'w' for writeback
  static constexpr uint64_t kLaneSeed = 0x7772626b;    // "wrbk"
  static constexpr uint64_t kDefaultStallTicks = 8;

  uint64_t Load(const std::atomic<uint64_t>& v) const {
    return v.load(std::memory_order_relaxed);
  }

  Lane lane_;

  std::atomic<uint64_t> nr_dirty_{0};
  std::atomic<bool> active_{false};
  std::atomic<uint64_t> stall_ticks_remaining_{0};

  // Dirty-file set (wb->b_dirty): files with at least one dirty folio at
  // the time they were noted. Deduplicated via the in-set flag protocol:
  // NoteDirtied only appends a file whose on_dirty_list CAS it wins.
  std::mutex files_mu_;
  std::vector<AddressSpace*> dirty_files_;

  std::atomic<uint64_t> wakeups_{0};
  std::atomic<uint64_t> flush_ticks_{0};
  std::atomic<uint64_t> pages_written_{0};
  std::atomic<uint64_t> extents_written_{0};
  std::atomic<uint64_t> deferred_pages_{0};
  std::atomic<uint64_t> throttle_entries_{0};
  std::atomic<uint64_t> dirty_throttle_ns_{0};
  std::atomic<uint64_t> writeback_ns_{0};
  std::atomic<uint64_t> sync_entries_{0};
  std::atomic<uint64_t> stalled_ticks_{0};
  std::atomic<uint64_t> lost_wakeups_{0};
  std::atomic<uint64_t> partial_flushes_{0};
};

}  // namespace cache_ext::writeback

#endif  // SRC_WRITEBACK_FLUSHER_H_
