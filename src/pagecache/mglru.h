// Native Multi-Generational LRU (§2, §5.3).
//
// Folios are grouped into up to four *generations* (lists in a circular
// buffer indexed by sequence number) capturing access recency, and each
// folio carries an access-frequency counter mapped logarithmically onto four
// *tiers*. Eviction scans the oldest generation; folios whose tier exceeds a
// threshold — computed by a PID controller from per-tier refault/eviction
// statistics — are promoted to the next generation instead of evicted.
//
// Deliberate divergence from mm/vmscan.c, matching the paper's description
// instead: the access-frequency counter is *preserved* across promotions
// rather than reset, so tiers track longer-term frequency ("tiers acting as
// logarithmic buckets based on access frequency", §5.3); protection relaxes
// when the PID controller's refault evidence decays. See DESIGN.md §4 for
// how this interacts with the Fig. 8 cluster-24 OOM reproduction.

#ifndef SRC_PAGECACHE_MGLRU_H_
#define SRC_PAGECACHE_MGLRU_H_

#include <array>
#include <cstdint>
#include <string_view>

#include "src/cgroup/memcg.h"
#include "src/pagecache/eviction.h"
#include "src/util/intrusive_list.h"

namespace cache_ext {

// PID (really PI) controller deciding which tiers to protect, driven by the
// ratio of refaults to evictions per tier relative to tier 0. Statistics are
// EWMA-decayed on every aging event so the controller adapts.
class MglruPidController {
 public:
  static constexpr uint32_t kTiers = 4;
  // Minimum refault observations before a tier may be protected.
  static constexpr uint64_t kMinEvidence = 8;
  // A tier must refault this much more than tier 0 (proportionally, as a
  // num/den ratio) to earn protection.
  static constexpr uint64_t kProtectionGainNum = 2;
  static constexpr uint64_t kProtectionGainDen = 1;
  // Degenerate-thrash regime: when evictions are dominated by *re-used*
  // folios (tier >= 1) and nearly all of them refault, the workingset
  // signal says every page in the cgroup is worth protecting, and the
  // controller protects everything (threshold -1). This is the regime
  // behind Fig. 8's cluster-24 OOM: reclaim proposes nothing, makes no
  // progress, and the memcg eventually OOMs (see DESIGN.md §4).
  static constexpr uint64_t kThrashNum = 17;  // refault ratio > 17/20 = 85%
  static constexpr uint64_t kThrashDen = 20;

  void RecordEviction(uint32_t tier) { evicted_[TierIdx(tier)] += 1; }
  void RecordRefault(uint32_t tier) { refaulted_[TierIdx(tier)] += 1; }

  // Halve all counters (called on aging), the kernel's EWMA with alpha=1/2.
  void Decay();

  // Smallest protected tier minus one: folios with tier > threshold are
  // promoted, others evicted. Tier t (> 0) is protected when its refault
  // ratio substantially exceeds tier 0's. Returns -1 in the degenerate
  // thrash regime: protect everything.
  int32_t Threshold() const;

  uint64_t evicted(uint32_t tier) const { return evicted_[TierIdx(tier)]; }
  uint64_t refaulted(uint32_t tier) const { return refaulted_[TierIdx(tier)]; }

 private:
  static uint32_t TierIdx(uint32_t tier) {
    return tier < kTiers ? tier : kTiers - 1;
  }

  std::array<uint64_t, kTiers> evicted_ = {};
  std::array<uint64_t, kTiers> refaulted_ = {};
};

class MglruPolicy : public ReclaimPolicy {
 public:
  static constexpr uint32_t kMaxGens = 4;
  static constexpr uint32_t kMinGens = 2;
  static constexpr uint32_t kTiers = MglruPidController::kTiers;

  explicit MglruPolicy(uint64_t per_event_cost_ns = 220)
      : per_event_cost_ns_(per_event_cost_ns) {}

  std::string_view name() const override { return "mglru"; }

  void FolioAdded(Folio* folio) override;
  void FolioAccessed(Folio* folio) override;
  void FolioRemoved(Folio* folio) override;
  void EvictFolios(EvictionCtx* ctx, MemCgroup* memcg) override;
  void FolioRefaulted(Folio* folio, uint32_t tier) override;
  uint32_t EvictionTier(const Folio* folio) const override;

  uint64_t PerEventCostNs() const override { return per_event_cost_ns_; }

  uint64_t min_seq() const { return min_seq_; }
  uint64_t max_seq() const { return max_seq_; }
  uint64_t GenSize(uint64_t seq) const { return gens_[seq % kMaxGens].size(); }
  const MglruPidController& pid() const { return pid_; }

  // Frequency counter -> tier: 0 accesses = tier 0, 1 = tier 1, 2-3 = tier
  // 2, >= 4 = tier 3 (logarithmic buckets).
  static uint32_t TierOf(uint32_t accesses);

 private:
  using GenList = IntrusiveList<Folio, &Folio::lru>;

  GenList& GenFor(uint64_t seq) { return gens_[seq % kMaxGens]; }

  // Create a new youngest generation (increment max_seq) if the circular
  // buffer has room; decays PID statistics.
  void TryAge();
  // Retire empty oldest generations.
  void RetireEmptyGens();

  std::array<GenList, kMaxGens> gens_;
  uint64_t min_seq_ = 0;
  uint64_t max_seq_ = kMinGens - 1;
  MglruPidController pid_;
  uint64_t per_event_cost_ns_;
};

}  // namespace cache_ext

#endif  // SRC_PAGECACHE_MGLRU_H_
