#include "src/pagecache/current_task.h"

namespace cache_ext {

namespace {
thread_local TaskContext tls_current_task{};
}  // namespace

TaskContext GetCurrentTask() { return tls_current_task; }

ScopedCurrentTask::ScopedCurrentTask(TaskContext task)
    : saved_(tls_current_task) {
  tls_current_task = task;
}

ScopedCurrentTask::~ScopedCurrentTask() { tls_current_task = saved_; }

}  // namespace cache_ext
