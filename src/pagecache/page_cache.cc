#include "src/pagecache/page_cache.h"

#include <algorithm>
#include <thread>

#include "src/pagecache/current_task.h"
#include "src/pagecache/default_lru.h"
#include "src/pagecache/mglru.h"
#include "src/pagecache/workingset.h"
#include "src/util/ebr.h"
#include "src/util/logging.h"

namespace cache_ext {

namespace {

std::unique_ptr<ReclaimPolicy> MakeBasePolicy(BasePolicyKind kind,
                                              const CpuCostModel& costs) {
  switch (kind) {
    case BasePolicyKind::kDefaultLru:
      return std::make_unique<DefaultLruPolicy>(costs.lru_event_ns);
    case BasePolicyKind::kMglru:
      return std::make_unique<MglruPolicy>(costs.mglru_event_ns);
  }
  return nullptr;
}

}  // namespace

PageCache::PageCache(SimDisk* disk, SsdModel* ssd, PageCacheOptions options)
    : disk_(disk), ssd_(ssd), options_(options) {
  CHECK_NOTNULL(disk_);
  CHECK_NOTNULL(ssd_);
  options_.hook_batch_size = std::clamp<uint32_t>(
      options_.hook_batch_size, 1, static_cast<uint32_t>(kMaxEvictionBatch));
  if (options_.reclaim.background && options_.reclaim.use_threads) {
    reclaimer_pool_ = std::make_unique<reclaim::ReclaimerPool>(
        options_.reclaim,
        [this](void* token) { BackgroundTickForToken(token); });
  }
  if (options_.writeback.background && options_.writeback.use_threads) {
    // Reuse the reclaim pool machinery for flusher threads; it only reads
    // nr_threads / thread_poll_us from the options.
    reclaim::ReclaimOptions pool_opts;
    pool_opts.nr_threads = options_.writeback.nr_threads;
    pool_opts.thread_poll_us = options_.writeback.thread_poll_us;
    flusher_pool_ = std::make_unique<reclaim::ReclaimerPool>(
        pool_opts, [this](void* token) { FlushTickForToken(token); });
  }
}

PageCache::~PageCache() CACHE_EXT_NO_TSA {
  // Reclaimer threads first: they reach through CgroupStates into policies
  // and folios, so they must be joined before anything else is torn down.
  if (reclaimer_pool_ != nullptr) {
    reclaimer_pool_->Stop();
  }
  if (flusher_pool_ != nullptr) {
    flusher_pool_->Stop();
  }
  // Drain every deferred free first (folios and xarray nodes this cache
  // retired): their deleters touch the local-storage directory and must
  // not run after our policies are gone mid-teardown.
  ebr::Synchronize();
  // Free all resident folios. No locks: destruction requires quiescence.
  for (auto& [name, as] : files_) {
    std::vector<Folio*> folios;
    as->pages().ForEach([&folios](uint64_t, XEntry entry) {
      if (Folio* folio = entry.AsPointer<Folio>(); folio != nullptr) {
        folios.push_back(folio);
      }
    });
    for (Folio* folio : folios) {
      delete folio;
    }
  }
}

MemCgroup* PageCache::CreateCgroup(std::string_view name, uint64_t limit_bytes,
                                   BasePolicyKind base) {
  MutexLock lock(registry_mu_);
  auto state = std::make_unique<CgroupState>();
  const uint64_t limit_pages = std::max<uint64_t>(1, limit_bytes / kPageSize);
  state->cg = std::make_unique<MemCgroup>(next_cgroup_id_++, std::string(name),
                                          limit_pages);
  state->base = MakeBasePolicy(base, options_.costs);
  state->base_event_cost_ns = state->base->PerEventCostNs();
  state->reclaim = std::make_unique<reclaim::CgroupReclaimControl>(
      static_cast<uint32_t>(state->cg->id()));
  state->flush = std::make_unique<writeback::CgroupFlushControl>(
      static_cast<uint32_t>(state->cg->id()));
  state->cg->set_priv(state.get());
  MemCgroup* cg = state->cg.get();
  if (reclaimer_pool_ != nullptr) {
    reclaimer_pool_->Register(state.get());
  }
  if (flusher_pool_ != nullptr) {
    flusher_pool_->Register(state.get());
  }
  cgroups_.push_back(std::move(state));
  return cg;
}

MemCgroup* PageCache::FindCgroup(std::string_view name) {
  MutexLock lock(registry_mu_);
  for (auto& st : cgroups_) {
    if (st->cg->name() == name) {
      return st->cg.get();
    }
  }
  return nullptr;
}

Expected<AddressSpace*> PageCache::OpenFile(std::string_view name) {
  MutexLock lock(registry_mu_);
  auto it = files_.find(std::string(name));
  if (it != files_.end()) {
    return it->second.get();
  }
  FileId id = kInvalidFileId;
  if (disk_->Exists(name)) {
    auto opened = disk_->Open(name);
    CACHE_EXT_RETURN_IF_ERROR(opened.status());
    id = *opened;
  } else {
    auto created = disk_->Create(name);
    CACHE_EXT_RETURN_IF_ERROR(created.status());
    id = *created;
  }
  auto as =
      std::make_unique<AddressSpace>(next_mapping_id_++, id, std::string(name));
  AddressSpace* raw = as.get();
  files_[std::string(name)] = std::move(as);
  return raw;
}

Status PageCache::AttachExtPolicy(MemCgroup* cg,
                                  std::unique_ptr<ReclaimPolicy> policy) {
  MutexLock reg(registry_mu_);
  CgroupState* st = StateFor(cg);
  if (st == nullptr) {
    return NotFound("unknown cgroup");
  }
  MutexLock lock(st->mu);
  if (st->ext != nullptr) {
    return AlreadyExists("cgroup already has an ext policy attached");
  }
  st->ext = std::move(policy);
  st->stats.ext_violations.store(0, std::memory_order_relaxed);
  st->watchdog_detached.store(false, std::memory_order_relaxed);
  // A fresh attachment starts with a clean reclaim-failure record — the
  // streak belongs to a policy, not the cgroup.
  st->reclaim->ResetExtFailureStreak();
  st->ext_event_cost_ns.store(st->ext->PerEventCostNs(),
                              std::memory_order_relaxed);
  st->ext_active_hint.store(true, std::memory_order_release);
  // Introduce currently-resident folios so the policy has a complete view
  // (folios inserted before attach would otherwise be invisible to it and
  // unevictable through its lists). Holding st->mu keeps this cgroup's
  // folios from being removed while we walk; the stripe guards each walk.
  for (auto& [name, as] : files_) {
    std::vector<Folio*> own;
    {
      MutexLock stripe(StripeFor(as.get()).mu);
      as->pages().ForEach([&](uint64_t, XEntry entry) {
        Folio* folio = entry.AsPointer<Folio>();
        if (folio != nullptr && folio->memcg == cg) {
          own.push_back(folio);
        }
      });
    }
    for (Folio* folio : own) {
      st->ext->FolioAdded(folio);
    }
  }
  return OkStatus();
}

Status PageCache::DetachExtPolicy(MemCgroup* cg) {
  CgroupState* st = StateFor(cg);
  if (st == nullptr) {
    return NotFound("unknown cgroup");
  }
  MutexLock lock(st->mu);
  if (st->ext == nullptr) {
    return FailedPrecondition("no ext policy attached");
  }
  // Fold the departing attachment's breaker trips into the cgroup's
  // cumulative counters so post-mortem stats survive the detach.
  const PolicyHookHealth health = st->ext->HookHealth();
  for (uint32_t i = 0; i < kNumPolicyHooks; ++i) {
    st->stats.ext_hook_trip_counts[i].fetch_add(health.trips[i],
                                                std::memory_order_relaxed);
  }
  // Same for the hot-path counters (map probes, local-storage hits,
  // eviction-arena bytes): fold the attachment's totals so StatsFor
  // keeps reporting them after the policy is gone.
  const PolicyRuntimeCounters counters = st->ext->RuntimeCounters();
  st->stats.ext_map_lookups.fetch_add(counters.map_lookups,
                                      std::memory_order_relaxed);
  st->stats.ext_local_storage_hits.fetch_add(counters.local_storage_hits,
                                             std::memory_order_relaxed);
  st->stats.ext_evict_alloc_bytes.fetch_add(counters.evict_alloc_bytes,
                                            std::memory_order_relaxed);
  st->stats.ext_evict_arena_reuses.fetch_add(counters.evict_arena_reuses,
                                             std::memory_order_relaxed);
  st->stats.ext_ir_jit_compiles.fetch_add(counters.ir_jit_compiles,
                                          std::memory_order_relaxed);
  st->stats.ext_ir_jit_ns.fetch_add(counters.ir_jit_ns,
                                    std::memory_order_relaxed);
  st->stats.ext_ir_interp_fallbacks.fetch_add(counters.ir_interp_fallbacks,
                                              std::memory_order_relaxed);
  st->ext_active_hint.store(false, std::memory_order_release);
  st->ext.reset();
  return OkStatus();
}

ReclaimPolicy* PageCache::ext_policy(MemCgroup* cg) {
  CgroupState* st = StateFor(cg);
  if (st == nullptr) {
    return nullptr;
  }
  MutexLock lock(st->mu);
  return st->ext.get();
}

void PageCache::RecordLoadRejection(MemCgroup* cg) {
  CgroupState* st = StateFor(cg);
  if (st != nullptr) {
    st->stats.rejected_at_load.fetch_add(1, std::memory_order_relaxed);
  }
}

void PageCache::SetQuarantineInfo(MemCgroup* cg, bool quarantined, bool banned,
                                  uint32_t reattach_attempts) {
  CgroupState* st = StateFor(cg);
  if (st == nullptr) {
    return;
  }
  st->stats.ext_quarantined.store(quarantined, std::memory_order_relaxed);
  st->stats.ext_banned.store(banned, std::memory_order_relaxed);
  st->stats.ext_reattach_attempts.store(reattach_attempts,
                                        std::memory_order_relaxed);
}

bool PageCache::ExtActive(CgroupState& st) {
  if (st.ext == nullptr || st.watchdog_detached.load(std::memory_order_relaxed)) {
    return false;
  }
  if (st.ext->WantsDetach()) {
    // Breaker escalation: latch the watchdog flag so every dispatch site
    // stops consulting the policy; the manager's Poll() finishes the job.
    LOG_WARNING << "cache_ext watchdog: policy '" << st.ext->name()
                << "' on cgroup '" << st.cg->name()
                << "' escalated by its circuit breaker; detaching";
    st.watchdog_detached.store(true, std::memory_order_relaxed);
    st.ext_active_hint.store(false, std::memory_order_release);
    return false;
  }
  return true;
}

ReclaimPolicy* PageCache::base_policy(MemCgroup* cg) {
  CgroupState* st = StateFor(cg);
  if (st == nullptr) {
    return nullptr;
  }
  MutexLock lock(st->mu);
  return st->base.get();
}

// --- Batched hook dispatch -------------------------------------------------

void PageCache::Append(Lane& lane, DispatchBatch& batch, CgroupState* owner,
                       Folio* folio, HookEvent event, CgroupState* locked) {
  CHECK(batch.size < batch.entries.size());
  // The ring owns one pin: the folio cannot be freed before dispatch.
  folio->Pin();
  // Per-event policy cost is charged at append time (the event happened
  // now in virtual time); only the dispatch trampoline is amortized.
  lane.Charge(owner->base_event_cost_ns);
  if (owner->ext_active_hint.load(std::memory_order_relaxed)) {
    lane.Charge(owner->ext_event_cost_ns.load(std::memory_order_relaxed));
  }
  if (PageCacheTracer* tracer = tracer_.load(std::memory_order_relaxed)) {
    if (event == HookEvent::kAdded) {
      tracer->OnFolioAdded(lane, *folio);
    } else {
      tracer->OnFolioAccessed(lane, *folio);
    }
  }
  batch.entries[batch.size++] = PendingHook{folio, owner, event};
  if (batch.size >= options_.hook_batch_size) {
    if (locked != nullptr) {
      DrainLocked(lane, batch, *locked);
    } else {
      Drain(lane, batch);
    }
  }
}

void PageCache::DispatchLocked(Lane& lane, const PendingHook& entry,
                               CgroupState& st) {
  (void)lane;
  if (entry.event == HookEvent::kAdded) {
    st.base->FolioAdded(entry.folio);
    if (ExtActive(st)) {
      st.ext->FolioAdded(entry.folio);
    }
  } else {
    st.base->FolioAccessed(entry.folio);
    if (ExtActive(st)) {
      st.ext->FolioAccessed(entry.folio);
    }
  }
  entry.folio->Unpin();
}

void PageCache::Drain(Lane& lane, DispatchBatch& batch) {
  uint32_t i = 0;
  while (i < batch.size) {
    CgroupState* owner = batch.entries[i].owner;
    MutexLock lock(owner->mu);
    // One amortized dispatch cost per locked run of events (the paper's
    // batch-dispatch argument, §4.2.3).
    lane.Charge(options_.costs.hook_dispatch_ns);
    while (i < batch.size && batch.entries[i].owner == owner) {
      DispatchLocked(lane, batch.entries[i], *owner);
      ++i;
    }
  }
  batch.size = 0;
}

void PageCache::DrainLocked(Lane& lane, DispatchBatch& batch, CgroupState& st) {
  uint32_t kept = 0;
  bool charged = false;
  for (uint32_t i = 0; i < batch.size; ++i) {
    PendingHook& entry = batch.entries[i];
    if (entry.owner == &st) {
      if (!charged) {
        lane.Charge(options_.costs.hook_dispatch_ns);
        charged = true;
      }
      DispatchLocked(lane, entry, st);
    } else {
      batch.entries[kept++] = entry;
    }
  }
  batch.size = kept;
}

void PageCache::DispatchRemoved(Lane& lane, CgroupState& st, Folio* folio) {
  // Ext first so it can clean map state while the folio is still registered.
  if (ExtActive(st)) {
    st.ext->FolioRemoved(folio);
    lane.Charge(st.ext->PerEventCostNs());
  }
  st.base->FolioRemoved(folio);
  lane.Charge(st.base->PerEventCostNs());
  if (PageCacheTracer* tracer = tracer_.load(std::memory_order_relaxed)) {
    tracer->OnFolioEvicted(lane, *folio);
  }
}

// --- Folio lifetime --------------------------------------------------------

Folio* PageCache::LocklessLookup(AddressSpace* as, uint64_t index,
                                 CgroupState& reader) {
  reader.stats.ext_lockless_lookups.fetch_add(1, std::memory_order_relaxed);
  // rcu_read_lock: everything reachable through the xarray stays allocated
  // until the guard drops, even if a racing remover unmaps and retires it.
  ebr::Guard guard;
  constexpr int kMaxAttempts = 4;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    Folio* folio = as->pages().Load(index).AsPointer<Folio>();
    if (folio == nullptr) {
      // Empty or a shadow entry: a miss as far as the fast path is
      // concerned; the locked slow path decides what the slot means.
      return nullptr;
    }
    if (!folio->TryPin()) {
      // Frozen: a remover committed to freeing this folio between our
      // slot load and the pin. Retry into the locked slow path, which
      // waits out the removal on the stripe.
      reader.stats.ext_lockless_retries.fetch_add(1,
                                                  std::memory_order_relaxed);
      return nullptr;
    }
    // Revalidate like folio_try_get + the re-check in filemap_get_entry:
    // the pin guarantees the folio is now immortal, but not that it is
    // still the folio mapped at (as, index). With freeze-before-unmap a
    // successful TryPin implies the folio was never removed, so these
    // checks are expected to pass; they mirror the kernel's xas_reload
    // defence and guard any future folio reuse. A multi-order folio is
    // valid for any index inside its span (the slot load above may have
    // resolved a sibling entry).
    if (folio->mapping == as && folio->Contains(index) &&
        as->pages().Load(index).AsPointer<Folio>() == folio) {
      return folio;
    }
    folio->Unpin();
    reader.stats.ext_lockless_retries.fetch_add(1, std::memory_order_relaxed);
  }
  return nullptr;
}

uint32_t PageCache::SelectOrder(Lane& lane, CgroupState& st, AddressSpace* as,
                                uint64_t index, bool is_write,
                                uint32_t nr_wanted) {
  if (!ExtActive(st)) {
    return 0;
  }
  AdmitOrderCtx octx;
  octx.mapping = as;
  octx.index = index;
  octx.memcg = st.cg.get();
  octx.nr_requested = nr_wanted;
  octx.pid = lane.task().pid;
  octx.tid = lane.task().tid;
  lane.Charge(options_.costs.hook_dispatch_ns);
  uint32_t order = st.ext->AdmitOrder(octx);
  if (order == 0) {
    return 0;
  }
  const uint64_t nr = 1ull << order;
  // Automatic fallbacks (the analogue of __filemap_get_folio dropping to
  // smaller orders when a large allocation fails): a span must be
  // 2^order-aligned at its base, must not run past EOF, and is demoted
  // under memcg pressure — the cgroup already over its limit means
  // allocation has outrun reclaim, the moment the kernel stops handing out
  // large folios. (A span conflict with an already-resident folio is
  // checked under the stripe in InsertFolio.)
  const bool misaligned = (index & (nr - 1)) != 0;
  const bool past_eof = (index + nr) * kPageSize > disk_->SizeOf(as->file());
  const bool pressure =
      nr > st.cg->limit_pages() || st.cg->OverLimit();
  if (misaligned || past_eof || pressure) {
    st.stats.ext_order_fallbacks.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  return order;
}

Folio* PageCache::InsertFolio(Lane& lane, AddressSpace* as, CgroupState& st,
                              uint64_t index, bool is_write, bool via_readahead,
                              DispatchBatch& batch, bool* already_present,
                              uint32_t nr_wanted) {
  *already_present = false;
  MemCgroup* cg = st.cg.get();
  Stripe& stripe = StripeFor(as);

  // First presence probe: lock-free in the default mode (the populated-
  // while-we-missed case is common under readahead); the second probe
  // below, under the stripe, is authoritative either way.
  if (options_.lockless_reads) {
    if (Folio* existing = LocklessLookup(as, index, st); existing != nullptr) {
      *already_present = true;
      return existing;
    }
  } else {
    MutexLock s(stripe.mu);
    if (Folio* existing = as->FindFolio(index); existing != nullptr) {
      existing->Pin();
      *already_present = true;
      return existing;
    }
  }

  // Admission filter (§5.6): only consulted for folios not yet present, and
  // never for a watchdog-detached policy (it must not veto admissions).
  if (ExtActive(st)) {
    AdmissionCtx actx;
    actx.mapping = as;
    actx.index = index;
    actx.memcg = cg;
    actx.pid = lane.task().pid;
    actx.tid = lane.task().tid;
    actx.is_write = is_write;
    lane.Charge(options_.costs.hook_dispatch_ns);
    if (!st.ext->AdmitFolio(actx)) {
      return nullptr;
    }
  }

  uint32_t order = SelectOrder(lane, st, as, index, is_write, nr_wanted);

  lane.Charge(options_.costs.miss_setup_ns);

  Folio* folio = nullptr;
  RefaultDecision refault;
  {
    MutexLock s(stripe.mu);
    // Another lane (a different cgroup sharing the file) may have populated
    // the index while admission ran; the xarray re-check under the stripe
    // is authoritative.
    if (Folio* existing = as->FindFolio(index); existing != nullptr) {
      existing->Pin();
      *already_present = true;
      return existing;
    }

    // Span conflict: any resident folio elsewhere in [index, index + 2^order)
    // demotes the allocation to a single page — a multi-order entry cannot
    // overlay an occupied slot.
    if (order > 0) {
      for (uint64_t i = index + 1; i < index + (1ull << order); ++i) {
        if (as->FindFolio(i) != nullptr) {
          order = 0;
          st.stats.ext_order_fallbacks.fetch_add(1,
                                                 std::memory_order_relaxed);
          break;
        }
      }
    }
    const uint64_t nr = 1ull << order;

    // Refault detection against a shadow entry left by a prior eviction,
    // keyed at the folio's base index (a multi-order store absorbs any
    // shadows in the rest of the span).
    const XEntry old_entry = as->pages().Load(index);
    if (old_entry.IsValue()) {
      refault = WorkingsetRefault(cg, old_entry, cg->limit_pages());
    }

    folio = new Folio();
    folio->mapping = as;
    folio->index = index;
    folio->order = static_cast<uint8_t>(order);
    folio->memcg = cg;
    folio->SetFlag(kFolioUptodate);
    if (refault.activate) {
      folio->SetFlag(kFolioWorkingset);
    }
    if (as->noreuse_hint.load(std::memory_order_relaxed)) {
      folio->SetFlag(kFolioDropBehind);
    }
    folio->Pin();  // returned pinned; the caller unpins

    as->pages().StoreOrder(index, XEntry::FromPointer(folio),
                           static_cast<int>(order));
    as->IncResident(nr);
    total_resident_.fetch_add(nr, std::memory_order_relaxed);
    cg->ChargePages(nr);
    cg->stat_insertions.fetch_add(1, std::memory_order_relaxed);
    if (order > 0) {
      st.stats.ext_order_folios.fetch_add(1, std::memory_order_relaxed);
      st.stats.ext_order_pages.fetch_add(nr, std::memory_order_relaxed);
    }
  }

  if (via_readahead) {
    st.stats.readahead_pages.fetch_add(folio->nr_pages(),
                                       std::memory_order_relaxed);
  }

  if (refault.is_refault) {
    st.base->FolioRefaulted(folio, refault.tier);
    if (ExtActive(st)) {
      st.ext->FolioRefaulted(folio, refault.tier);
    }
  }
  Append(lane, batch, &st, folio, HookEvent::kAdded, &st);
  return folio;
}

bool PageCache::RemoveFolio(Lane& lane, CgroupState& st, AddressSpace* as,
                            uint64_t index, Folio* expected, RemovalKind kind,
                            bool skip_writeback) {
  MemCgroup* cg = st.cg.get();
  Stripe& stripe = StripeFor(as);
  Folio* folio = nullptr;
  {
    MutexLock s(stripe.mu);
    folio = as->FindFolio(index);
    // Authoritative re-checks: the index must still map the folio we were
    // asked about, and it must belong to this cgroup (we hold its lock, so
    // it cannot be concurrently freed).
    if (folio == nullptr || (expected != nullptr && folio != expected) ||
        folio->memcg != cg) {
      return false;
    }
    // Commit point: freeze the pin count. Fails if any lane holds a pin
    // (hit dispatch or device I/O in flight) — then the folio survives,
    // like a pinned folio surviving the kernel's invalidate. On success no
    // lockless TryPin can succeed anymore, and freeze + unmap happen
    // atomically under the stripe, so locked paths never observe a frozen
    // folio that is still mapped.
    if (!folio->TryFreeze()) {
      return false;
    }

    const uint64_t base = folio->index;
    const uint64_t nr = folio->nr_pages();
    if (skip_writeback) {
      if (folio->TestClearFlag(kFolioDirty)) {
        st.flush->NoteCleaned(as, nr);
      }
    } else if (folio->TestClearFlag(kFolioDirty)) {
      // Writeback of a dirty victim: the device write occupies a channel
      // but the evicting lane does not wait for it (async flush). The whole
      // span flushes as one device write (a multi-order folio is dirty as a
      // unit). With background writeback on, the CPU cost of issuing the
      // write is handed to the cgroup's flusher lane — reclaim no longer
      // pays writeback_page_ns on the reclaiming (or allocating) lane;
      // inline mode preserves the historical on-lane charge. Either way the
      // completion is merged into the mapping so a later fsync waits for it.
      st.flush->NoteCleaned(as, nr);
      as->wb_seq_started.fetch_add(1, std::memory_order_relaxed);
      uint64_t completion = 0;
      if (options_.writeback.background) {
        Lane& wlane = st.flush->lane();
        wlane.AdvanceTo(lane.now_ns());
        completion = ssd_->SubmitWrite(wlane.now_ns(), nr * kPageSize);
        wlane.Charge(nr * options_.costs.writeback_page_ns);
        st.flush->NoteWritebackNs(nr * options_.costs.writeback_page_ns);
      } else {
        completion = ssd_->SubmitWrite(lane.now_ns(), nr * kPageSize);
        lane.Charge(nr * options_.costs.writeback_page_ns);
      }
      as->NoteWritebackCompletion(completion);
      as->wb_seq_done.fetch_add(1, std::memory_order_release);
      st.stats.writeback_pages.fetch_add(nr, std::memory_order_relaxed);
    }

    XEntry shadow = XEntry::Empty();
    if (kind == RemovalKind::kEvict) {
      const uint32_t tier = st.base->EvictionTier(folio);
      shadow = WorkingsetEviction(cg, tier);
      cg->stat_evictions.fetch_add(1, std::memory_order_relaxed);
    } else {
      st.stats.invalidations.fetch_add(1, std::memory_order_relaxed);
    }
    if (nr == 1) {
      as->pages().Store(base, shadow);
    } else {
      // Clear the whole span first (siblings before canonical), then leave
      // an order-0 shadow at every index so a refault anywhere in the old
      // span sees the eviction record.
      as->pages().EraseOrder(base, static_cast<int>(folio->order));
      if (!shadow.IsEmpty()) {
        for (uint64_t i = base; i < base + nr; ++i) {
          as->pages().Store(i, shadow);
        }
      }
    }
    as->DecResident(nr);
    const uint64_t prev =
        total_resident_.fetch_sub(nr, std::memory_order_relaxed);
    DCHECK(prev >= nr);
    (void)prev;
    cg->UnchargePages(nr);
  }

  // The folio is unmapped and frozen: no lane can take a new reference
  // (policy lists and the registry are behind st.mu, which we hold; the
  // lockless path bounces off the frozen pin count). A guarded reader may
  // still be *inspecting* it, so the free is deferred to EBR — kfree_rcu,
  // not kfree.
  DispatchRemoved(lane, st, folio);
  ebr::Retire(folio);
  return true;
}

void PageCache::InvalidateForDontNeed(Lane& lane, CgroupState& st,
                                      AddressSpace* as, uint64_t index,
                                      uint64_t first, uint64_t last) {
  MemCgroup* cg = st.cg.get();
  // Capture the span before removal. Holding the owner's lock keeps the
  // folio alive and mapped (removal always happens under the owner's lock),
  // so the captured pointer stays valid to use as `expected`.
  Folio* folio = nullptr;
  uint64_t base = 0;
  uint64_t nr = 0;
  bool was_dirty = false;
  {
    MutexLock s(StripeFor(as).mu);
    folio = as->FindFolio(index);
    if (folio == nullptr || folio->memcg != cg) {
      return;
    }
    base = folio->index;
    nr = folio->nr_pages();
    was_dirty = folio->TestFlag(kFolioDirty);
  }
  const uint64_t span_last = base + nr - 1;
  const bool partial = nr > 1 && !(base >= first && span_last <= last);
  // A partial invalidate of a dirty multi-order folio skips the removal's
  // whole-span writeback: only the invalidated subrange is flushed (below,
  // inline — DONTNEED writes back what it drops), and the kept subpages are
  // re-inserted with kFolioDirty intact. Splitting must not launder the
  // kept pages clean, or an fsync after the split would miss them.
  if (!RemoveFolio(lane, st, as, base, /*expected=*/folio,
                   RemovalKind::kInvalidate,
                   /*skip_writeback=*/partial && was_dirty)) {
    return;  // pinned by another lane: the whole folio survives
  }
  // Partial invalidate of a multi-order folio: the kernel splits the large
  // folio and truncates only the pages in range (truncate_inode_partial_folio).
  // Here the removal already dropped the whole span (SimDisk holds canonical
  // bytes), so the split is a re-insert of the kept subpages as order-0
  // folios.
  if (nr == 1 || !partial) {
    return;  // fully covered: a plain invalidate, nothing kept
  }
  if (was_dirty) {
    // Flush the dropped subrange inline on the caller's lane (DONTNEED pays
    // for the writeback it forces, like the kernel's invalidate path).
    uint64_t dropped = 0;
    for (uint64_t i = base; i <= span_last; ++i) {
      if (i >= first && i <= last) {
        ++dropped;
      }
    }
    if (dropped > 0) {
      const uint64_t completion =
          ssd_->SubmitWrite(lane.now_ns(), dropped * kPageSize);
      lane.Charge(dropped * options_.costs.writeback_page_ns);
      as->NoteWritebackCompletion(completion);
      st.stats.writeback_pages.fetch_add(dropped, std::memory_order_relaxed);
    }
  }
  st.stats.ext_order_splits.fetch_add(1, std::memory_order_relaxed);
  std::vector<Folio*> kept;
  uint64_t kept_dirty = 0;
  {
    MutexLock s(StripeFor(as).mu);
    for (uint64_t i = base; i <= span_last; ++i) {
      if (i >= first && i <= last) {
        continue;  // the invalidated part
      }
      if (as->FindFolio(i) != nullptr) {
        continue;  // repopulated by a racing miss
      }
      Folio* nf = new Folio();
      nf->mapping = as;
      nf->index = i;
      nf->memcg = cg;
      nf->SetFlag(kFolioUptodate);
      if (was_dirty) {
        nf->SetFlag(kFolioDirty);  // both split halves stay dirty
        ++kept_dirty;
      }
      if (as->noreuse_hint.load(std::memory_order_relaxed)) {
        nf->SetFlag(kFolioDropBehind);
      }
      as->pages().Store(i, XEntry::FromPointer(nf));
      as->IncResident();
      total_resident_.fetch_add(1, std::memory_order_relaxed);
      cg->ChargePages(1);
      kept.push_back(nf);
    }
  }
  if (kept_dirty > 0) {
    st.flush->NoteDirtied(as, kept_dirty);
  }
  for (Folio* nf : kept) {
    lane.Charge(st.base_event_cost_ns);
    st.base->FolioAdded(nf);
    if (ExtActive(st)) {
      lane.Charge(st.ext_event_cost_ns.load(std::memory_order_relaxed));
      st.ext->FolioAdded(nf);
    }
  }
}

bool PageCache::CandidateValid(CgroupState& st, Folio* folio, bool from_ext,
                               bool* violation) {
  *violation = false;
  if (folio == nullptr) {
    *violation = from_ext;
    return false;
  }
  if (from_ext) {
    // The valid-folio registry check (§4.4) happens inside the adapter via
    // ValidateCandidate *before* the pointer may be dereferenced. Only a
    // failure here is a safety violation (bad/stale pointer); a pinned or
    // concurrently-removed folio is a normal race, not misbehaviour.
    if (!st.ext->ValidateCandidate(folio)) {
      *violation = true;
      return false;
    }
  }
  // Residency and pin state are re-checked under the stripe in RemoveFolio;
  // here we only reject candidates that obviously belong elsewhere.
  return folio->mapping != nullptr && folio->memcg == st.cg.get();
}

uint64_t PageCache::RunEvictionBatch(Lane& lane, CgroupState& st,
                                     uint64_t requested,
                                     ReclaimSource source) {
  MemCgroup* cg = st.cg.get();
  lane.Charge(options_.costs.reclaim_batch_ns);
  EvictionCtx ctx;
  ctx.nr_candidates_requested = requested;
  ctx.source = source;

  const bool use_ext = ExtActive(st);
  if (use_ext) {
    st.ext->EvictFolios(&ctx, cg);
  } else {
    st.base->EvictFolios(&ctx, cg);
  }

  uint64_t evicted = 0;
  for (uint64_t i = 0; i < ctx.nr_candidates_proposed; ++i) {
    Folio* folio = ctx.candidates[i];
    bool violation = false;
    if (!CandidateValid(st, folio, use_ext, &violation)) {
      if (violation) {
        st.stats.ext_violations.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }
    if (RemoveFolio(lane, st, folio->mapping, folio->index, folio,
                    RemovalKind::kEvict)) {
      ++evicted;
      lane.Charge(options_.costs.reclaim_per_folio_ns);
    }
  }
  const uint64_t ext_evicted = use_ext ? evicted : 0;

  // Eviction fallback (§4.4): if the ext policy under-proposed, the kernel
  // falls back to the default policy for the remainder.
  uint64_t fallback_evicted = 0;
  if (use_ext && evicted < requested && cg->OverLimit()) {
    EvictionCtx fallback_ctx;
    fallback_ctx.nr_candidates_requested = requested - evicted;
    fallback_ctx.source = source;
    st.base->EvictFolios(&fallback_ctx, cg);
    for (uint64_t i = 0; i < fallback_ctx.nr_candidates_proposed; ++i) {
      Folio* folio = fallback_ctx.candidates[i];
      bool violation = false;
      if (!CandidateValid(st, folio, /*from_ext=*/false, &violation)) {
        continue;
      }
      if (RemoveFolio(lane, st, folio->mapping, folio->index, folio,
                      RemovalKind::kEvict)) {
        ++evicted;
        ++fallback_evicted;
        st.stats.fallback_evictions.fetch_add(1, std::memory_order_relaxed);
        lane.Charge(options_.costs.reclaim_per_folio_ns);
      }
    }
  }

  // Watchdog (§4.4): forcibly unload a persistently misbehaving policy.
  if (use_ext && st.stats.ext_violations.load(std::memory_order_relaxed) >
                     options_.watchdog_violation_limit) {
    LOG_WARNING << "cache_ext watchdog: detaching policy '"
                << st.ext->name() << "' from cgroup '" << cg->name()
                << "' after "
                << st.stats.ext_violations.load(std::memory_order_relaxed)
                << " invalid candidates";
    st.watchdog_detached.store(true, std::memory_order_relaxed);
    st.ext_active_hint.store(false, std::memory_order_release);
  }

  // Circuit-breaker feed (opt-in, options_.reclaim.ext_failure_limit): a
  // streak of rounds where the ext policy produced nothing usable while the
  // base fallback evicted fine is the unambiguous "broken policy, working
  // reclaim" signal. Latching watchdog_detached here hands the policy to
  // the PolicyManager's revert -> quarantine machinery — reclaim keeps
  // making progress through the base policy instead of silently looping on
  // a dead ext hook.
  if (use_ext &&
      st.reclaim->NoteExtRound(ext_evicted > 0, fallback_evicted > 0,
                               options_.reclaim.ext_failure_limit)) {
    LOG_WARNING << "reclaim watchdog: detaching policy '" << st.ext->name()
                << "' from cgroup '" << cg->name() << "' after "
                << options_.reclaim.ext_failure_limit
                << " consecutive reclaim rounds rescued by the base policy";
    st.watchdog_detached.store(true, std::memory_order_relaxed);
    st.ext_active_hint.store(false, std::memory_order_release);
  }

  return evicted;
}

void PageCache::DirectReclaim(Lane& lane, CgroupState& st,
                              DispatchBatch& batch) {
  MemCgroup* cg = st.cg.get();
  // The policy must see every buffered notification for this cgroup before
  // proposing victims (batching bounds staleness at the batch size).
  DrainLocked(lane, batch, st);
  const uint64_t start_ns = lane.now_ns();
  uint64_t zero_progress_ns = 0;
  uint64_t total_evicted = 0;
  const uint64_t slack = std::min<uint64_t>(cg->limit_pages() / 8,
                                            kMaxEvictionBatch - 1);
  int zero_progress_rounds = 0;
  while (cg->OverLimit()) {
    const uint64_t round_start_ns = lane.now_ns();
    const uint64_t requested =
        std::min<uint64_t>(kMaxEvictionBatch, cg->ExcessPages() + slack);
    const uint64_t evicted =
        RunEvictionBatch(lane, st, requested, ReclaimSource::kDirect);
    total_evicted += evicted;
    if (evicted == 0) {
      zero_progress_ns += lane.now_ns() - round_start_ns;
      if (++zero_progress_rounds >= options_.max_reclaim_retries) {
        st.oom_killed.store(true, std::memory_order_relaxed);
        cg->stat_oom_events.fetch_add(1, std::memory_order_relaxed);
        LOG_WARNING << "memcg OOM: cgroup '" << cg->name()
                    << "' could not reclaim below its limit (policy "
                    << (ExtActive(st) ? st.ext->name() : st.base->name())
                    << ")";
        break;
      }
    } else {
      zero_progress_rounds = 0;
    }
  }
  st.reclaim->NoteDirect(lane.now_ns() - start_ns, zero_progress_ns,
                         total_evicted);
}

void PageCache::BackgroundTick(CgroupState& st, DispatchBatch* batch,
                               uint64_t now_hint_ns) {
  MemCgroup* cg = st.cg.get();
  reclaim::CgroupReclaimControl& rc = *st.reclaim;
  const reclaim::Watermarks wm = reclaim::ForCgroup(*cg);
  if (!wm.Valid() || st.oom_killed.load(std::memory_order_relaxed)) {
    return;
  }
  switch (rc.EnterTick()) {
    case reclaim::TickOutcome::kDead:
    case reclaim::TickOutcome::kStalled:
      return;  // no progress, no heartbeat — the watchdog's problem now
    case reclaim::TickOutcome::kRun:
      break;
  }
  Lane& rlane = rc.lane();
  // The daemon cannot have acted before the pressure that woke it: pin its
  // clock forward to the waker's (pool threads pass 0 — no virtual waker).
  rlane.AdvanceTo(now_hint_ns);
  // Eviction hooks run as the reclaimer task (the kswapd analogue), not as
  // whichever reader happened to trip the wakeup.
  ScopedCurrentTask current_task(rc.task());
  if (batch != nullptr) {
    DrainLocked(rlane, *batch, st);
  }
  const uint64_t start_ns = rlane.now_ns();
  uint32_t batches = 0;
  while (!wm.TargetReached(cg->charged_pages()) &&
         batches < options_.reclaim.max_batches_per_tick) {
    if (rc.InjectedUnderReclaim()) {
      break;  // chaos: give up early, occupancy drifts toward the limit
    }
    const uint64_t charged = cg->charged_pages();
    const uint64_t above_target = charged > wm.target_charged()
                                      ? charged - wm.target_charged()
                                      : 1;
    const uint64_t requested =
        std::min<uint64_t>(kMaxEvictionBatch, above_target);
    const uint64_t evicted =
        RunEvictionBatch(rlane, st, requested, ReclaimSource::kBackground);
    rc.NoteBatch(evicted);
    ++batches;
    if (evicted == 0) {
      break;  // everything pinned / nothing proposed: retry on a later tick
    }
  }
  rc.NoteBackgroundNs(rlane.now_ns() - start_ns);
  if (wm.TargetReached(cg->charged_pages())) {
    rc.NoteTargetReached();
  }
}

void PageCache::KickBackground(Lane& lane, CgroupState& st,
                               DispatchBatch& batch) {
  if (reclaimer_pool_ != nullptr) {
    // Async: allocation pays a condvar signal, never reclaim work.
    reclaimer_pool_->Kick(&st);
    return;
  }
  // Virtual lane (single-threaded sims): tick synchronously, modelling an
  // always-prompt daemon. The eviction work is charged to the reclaimer's
  // own clock — the allocating lane's latency is untouched.
  BackgroundTick(st, &batch, lane.now_ns());
}

void PageCache::BackgroundTickForToken(void* token) CACHE_EXT_NO_TSA {
  auto* st = static_cast<CgroupState*>(token);
  if (st->oom_killed.load(std::memory_order_relaxed)) {
    return;
  }
  const reclaim::Watermarks wm = reclaim::ForCgroup(*st->cg);
  // Lock-free pressure gate: idle cgroups cost the pool two relaxed loads
  // per poll, never a lock acquisition that could contend the hot path.
  if (!wm.Valid() ||
      !st->reclaim->ShouldWake(st->cg->charged_pages(), wm)) {
    return;
  }
  MutexLock lock(st->mu);
  BackgroundTick(*st, nullptr, 0);
}

void PageCache::ReclaimIfNeeded(Lane& lane, CgroupState& st,
                                DispatchBatch& batch) {
  MemCgroup* cg = st.cg.get();
  if (st.oom_killed.load(std::memory_order_relaxed)) {
    return;
  }
  if (!options_.reclaim.background) {
    // Inline-only (the historical behaviour and the
    // `reclaim.background=false` ablation): the allocator pays for
    // eviction itself, but only once actually over the limit.
    if (cg->OverLimit()) {
      DirectReclaim(lane, st, batch);
    }
    return;
  }
  reclaim::CgroupReclaimControl& rc = *st.reclaim;
  const reclaim::Watermarks wm = reclaim::ForCgroup(*cg);
  if (!wm.Valid()) {
    // A cgroup too small for two watermarks (limit < 2 pages) runs
    // inline-only; the hard limit is still enforced.
    if (cg->OverLimit()) {
      DirectReclaim(lane, st, batch);
    }
    return;
  }
  if (rc.ShouldWake(cg->charged_pages(), wm) && rc.KickAllowed()) {
    KickBackground(lane, st, batch);
  }
  if (!cg->OverLimit()) {
    // The common case with a healthy daemon: allocate from pre-reclaimed
    // headroom, zero reclaim work (and zero stall time) on this lane.
    return;
  }
  // Over the hard limit despite background reclaim: allocation outran the
  // daemon, or the daemon is stalled/dead. The control block's watchdog
  // compares heartbeats across these entries; when it still believes a
  // kick can help (healthy lane, or a backed-off probe of a stalled one),
  // try that once before paying inline.
  const uint64_t overshoot = cg->charged_pages() - cg->limit_pages();
  if (rc.NoteEmergencyEntry(overshoot, options_.reclaim)) {
    KickBackground(lane, st, batch);
    if (!cg->OverLimit()) {
      return;
    }
  }
  // Bounded emergency: reclaim back under the hard limit only — the high
  // watermark stays the daemon's job, so a wedged daemon costs allocators
  // the minimum, not the full balance_pgdat sweep.
  DirectReclaim(lane, st, batch);
}

void PageCache::FlushTick(CgroupState& st, DispatchBatch* batch,
                          uint64_t now_hint_ns) {
  writeback::CgroupFlushControl& fc = *st.flush;
  const writeback::DirtyLimits dl = writeback::ForCgroup(*st.cg);
  if (!dl.Valid()) {
    return;
  }
  switch (fc.EnterTick(dl)) {
    case writeback::FlushTickOutcome::kStalled:
    case writeback::FlushTickOutcome::kIdle:
      return;
    case writeback::FlushTickOutcome::kRun:
      break;
  }
  Lane& wlane = fc.lane();
  // The flusher cannot have acted before the dirtying that woke it: pin its
  // clock forward to the waker's (pool threads pass 0 — no virtual waker).
  wlane.AdvanceTo(now_hint_ns);
  // Writeback hooks run as the flusher task, not as whichever writer
  // happened to trip the wakeup.
  ScopedCurrentTask current_task(wlane.task());
  if (batch != nullptr) {
    DrainLocked(wlane, *batch, st);
  }
  const uint64_t start_ns = wlane.now_ns();
  const bool use_ext = ExtActive(st);
  uint64_t budget = options_.writeback.max_pages_per_tick;

  // Harvest: walk each dirty file under its stripe, clear dirty bits, mark
  // + pin the folios for the in-flight window (kFolioWriteback; the pin
  // keeps eviction off them), and collect sort-keyed items. The policy's
  // should_writeback hook may veto a folio (it stays dirty — deferred);
  // writeback_order assigns the flush key (SSTable key order etc.).
  std::vector<writeback::FlushItem> items;
  const std::vector<AddressSpace*> files = fc.TakeDirtyFiles();
  for (AddressSpace* as : files) {
    if (budget == 0) {
      fc.RequeueDirtyFile(as);
      continue;
    }
    bool leftover = false;
    {
      MutexLock s(StripeFor(as).mu);
      as->pages().ForEach([&](uint64_t idx, XEntry entry) {
        Folio* folio = entry.AsPointer<Folio>();
        if (folio == nullptr || folio->index != idx ||
            folio->memcg != st.cg.get() ||
            !folio->TestFlag(kFolioDirty)) {
          return;  // files are shared: flush only this cgroup's folios
        }
        const uint64_t nr = folio->nr_pages();
        if (budget < nr) {
          leftover = true;  // tick budget spent: finish on a later tick
          return;
        }
        int64_t key = -1;
        if (use_ext) {
          WritebackCtx ctx;
          ctx.mapping = as;
          ctx.index = folio->index;
          ctx.nr_pages = static_cast<uint32_t>(nr);
          ctx.nr_dirty = fc.nr_dirty();
          ctx.memcg = st.cg.get();
          ctx.for_sync = false;
          wlane.Charge(options_.costs.hook_dispatch_ns);
          if (!st.ext->ShouldWriteback(ctx)) {
            fc.NoteDeferred(nr);
            leftover = true;  // stays dirty: keep the file on the list
            return;
          }
          wlane.Charge(options_.costs.hook_dispatch_ns);
          key = st.ext->WritebackOrder(ctx);
        }
        if (!folio->TestClearFlag(kFolioDirty)) {
          return;  // raced clean (a concurrent fsync got here first)
        }
        as->wb_seq_started.fetch_add(1, std::memory_order_relaxed);
        folio->SetFlag(kFolioWriteback);
        folio->Pin();
        fc.NoteCleaned(as, nr);
        budget -= nr;
        items.push_back(writeback::FlushItem{
            as, folio->index, static_cast<uint32_t>(nr), key, folio});
      });
    }
    if (leftover || as->nr_dirty.load(std::memory_order_relaxed) > 0) {
      fc.RequeueDirtyFile(as);
    }
  }

  // Submit: sort into policy-key/file-offset order and merge contiguous
  // same-file runs so one device write covers a whole extent (the block
  // layer's request merging). All CPU time lands on the flusher lane.
  writeback::SortFlushItems(items);
  uint64_t pages = 0;
  uint64_t extents = 0;
  size_t reverted_from = items.size();
  size_t i = 0;
  while (i < items.size()) {
    if (extents > 0 && fc.PartialFlushInjected()) {
      reverted_from = i;  // chaos: the tick dies after its first extent
      break;
    }
    size_t j = i;
    uint64_t run_pages = items[i].nr_pages;
    while (j + 1 < items.size() && items[j + 1].mapping == items[j].mapping &&
           items[j + 1].index == items[j].index + items[j].nr_pages &&
           run_pages + items[j + 1].nr_pages <=
               options_.writeback.max_extent_pages) {
      ++j;
      run_pages += items[j].nr_pages;
    }
    const uint64_t completion =
        ssd_->SubmitWrite(wlane.now_ns(), run_pages * kPageSize);
    wlane.Charge(run_pages * options_.costs.writeback_page_ns);
    items[i].mapping->NoteWritebackCompletion(completion);
    st.stats.writeback_pages.fetch_add(run_pages, std::memory_order_relaxed);
    for (size_t k = i; k <= j; ++k) {
      items[k].folio->ClearFlag(kFolioWriteback);
      items[k].mapping->wb_seq_done.fetch_add(1, std::memory_order_release);
      items[k].folio->Unpin();
    }
    pages += run_pages;
    ++extents;
    i = j + 1;
  }
  for (size_t k = reverted_from; k < items.size(); ++k) {
    // Un-submitted items revert to dirty (contents are safe — SimDisk is
    // write-through; only durability timing was pending). NoteDirtied also
    // requeues the file, so the next tick retries the lost work.
    items[k].folio->SetFlag(kFolioDirty);
    items[k].folio->ClearFlag(kFolioWriteback);
    fc.NoteDirtied(items[k].mapping, items[k].nr_pages);
    items[k].mapping->wb_seq_done.fetch_add(1, std::memory_order_release);
    items[k].folio->Unpin();
  }
  if (pages > 0) {
    fc.NoteFlush(pages, extents);
  }
  fc.NoteWritebackNs(wlane.now_ns() - start_ns);
  if (dl.TargetReached(fc.nr_dirty())) {
    fc.NoteTargetReached();
  }
}

void PageCache::KickFlusher(Lane& lane, CgroupState& st, DispatchBatch* batch) {
  if (flusher_pool_ != nullptr) {
    // Async: dirtying pays a condvar signal, never writeback work.
    flusher_pool_->Kick(&st);
    return;
  }
  // Virtual lane (single-threaded sims): tick synchronously, modelling an
  // always-prompt flusher. The writeback work is charged to the flusher's
  // own clock — the writer's latency is untouched.
  FlushTick(st, batch, lane.now_ns());
}

void PageCache::FlushTickForToken(void* token) CACHE_EXT_NO_TSA {
  auto* st = static_cast<CgroupState*>(token);
  // Lock-free gate: clean cgroups cost the pool one relaxed load per poll.
  if (st->flush->nr_dirty() == 0) {
    return;
  }
  MutexLock lock(st->mu);
  FlushTick(*st, nullptr, 0);
}

void PageCache::BalanceDirty(Lane& lane, CgroupState& st) {
  if (!options_.writeback.background) {
    return;
  }
  const writeback::DirtyLimits dl = writeback::ForCgroup(*st.cg);
  // Lock-free fast path for the common case (under the background
  // threshold): the hot write path never takes the cgroup lock for this.
  if (!dl.Valid() || !dl.NeedsWake(st.flush->nr_dirty())) {
    return;
  }
  MutexLock lock(st.mu);
  BalanceDirtyLocked(lane, st, nullptr);
}

void PageCache::BalanceDirtyLocked(Lane& lane, CgroupState& st,
                                   DispatchBatch* batch) {
  if (!options_.writeback.background) {
    return;
  }
  writeback::CgroupFlushControl& fc = *st.flush;
  const writeback::DirtyLimits dl = writeback::ForCgroup(*st.cg);
  if (!dl.Valid()) {
    return;
  }
  if (fc.ShouldWake(dl)) {
    KickFlusher(lane, st, batch);
  }
  if (!dl.NeedsThrottle(fc.nr_dirty())) {
    return;
  }
  // balance_dirty_pages: the writer outran the device past the dirty ratio.
  // Stall it in bounded pauses until the flusher drains back under the
  // ratio (or the round cap hits — writer latency stays bounded even when
  // the device cannot keep up). The stall is the PSI-style
  // `ext_dirty_throttle_ns` half of the writeback accounting.
  const uint64_t start_ns = lane.now_ns();
  uint32_t rounds = 0;
  while (dl.NeedsThrottle(fc.nr_dirty()) &&
         rounds < options_.writeback.max_throttle_rounds) {
    KickFlusher(lane, st, batch);
    lane.Charge(options_.writeback.throttle_pause_ns);
    if (flusher_pool_ != nullptr) {
      std::this_thread::yield();  // real threads: let the flusher run
    }
    ++rounds;
  }
  fc.NoteThrottle(lane.now_ns() - start_ns);
}

uint32_t PageCache::ReadaheadWindow(Lane& lane, CgroupState& st,
                                    AddressSpace* as, uint64_t index,
                                    uint32_t nr_requested) {
  // Readahead state is read and advanced without any lock — racy
  // load/store like the kernel's file_ra_state; a lost update costs a
  // readahead decision, never correctness.
  uint32_t heuristic = 0;
  const uint64_t prev_index = as->ra_prev_index.load(std::memory_order_relaxed);
  if (!as->ra_random_hint.load(std::memory_order_relaxed)) {
    const uint32_t max_window =
        as->ra_sequential_hint.load(std::memory_order_relaxed)
            ? 2 * options_.max_readahead_pages
            : options_.max_readahead_pages;
    if (prev_index != UINT64_MAX && index == prev_index + 1) {
      // Sequential pattern: grow the window (ondemand_readahead-style).
      const uint32_t window = as->ra_window.load(std::memory_order_relaxed);
      heuristic = std::min(max_window, window == 0 ? 4 : window * 2);
    }
    as->ra_window.store(heuristic, std::memory_order_relaxed);
  }

  // Policy override. The readahead hook (ondemand_readahead analogue) is
  // asked first — one dispatch per miss run, with the full stream context.
  // A deferral (< 0) falls through to the legacy per-page prefetch hook
  // (§7 extension) for compatibility with policies written against it.
  // EVERY policy-returned window — either hook, including an injected
  // readahead.misfire — is clamped to options_.max_readahead_pages;
  // clamped answers are surfaced via ext_readahead_clamped.
  if (ExtActive(st)) {
    lane.Charge(options_.costs.hook_dispatch_ns);
    ReadaheadCtx rctx;
    rctx.mapping = as;
    rctx.index = index;
    rctx.prev_index = prev_index;
    rctx.default_window = heuristic;
    rctx.nr_requested = nr_requested;
    rctx.pid = lane.task().pid;
    rctx.tid = lane.task().tid;
    int64_t requested = st.ext->RequestReadahead(rctx);
    if (requested < 0) {
      PrefetchCtx ctx;
      ctx.mapping = as;
      ctx.index = index;
      ctx.prev_index = prev_index;
      ctx.default_window = heuristic;
      ctx.pid = lane.task().pid;
      ctx.tid = lane.task().tid;
      requested = st.ext->RequestPrefetch(ctx);
    }
    if (requested >= 0) {
      const int64_t cap = static_cast<int64_t>(options_.max_readahead_pages);
      if (requested > cap) {
        st.stats.ext_readahead_clamped.fetch_add(1, std::memory_order_relaxed);
        requested = cap;
      }
      return static_cast<uint32_t>(requested);
    }
  }
  return heuristic;
}

void PageCache::Prefetch(Lane& lane, AddressSpace* as, CgroupState& st,
                         uint64_t first_index, uint32_t nr_pages,
                         DispatchBatch& batch) {
  uint64_t run_bytes = 0;
  const uint64_t end = first_index + nr_pages;
  uint64_t index = first_index;
  while (index < end) {
    bool already = false;
    Folio* inserted = InsertFolio(
        lane, as, st, index, /*is_write=*/false, /*via_readahead=*/true,
        batch, &already, static_cast<uint32_t>(end - index));
    if (inserted == nullptr) {
      ++index;  // admission denied
      continue;
    }
    // Step over the whole folio (an existing one may cover several of our
    // indices; a fresh multi-order one certainly does).
    const uint64_t next = inserted->index + inserted->nr_pages();
    if (!already) {
      run_bytes += inserted->nr_pages() * kPageSize;
    }
    inserted->Unpin();
    index = std::max(index + 1, next);
  }
  if (run_bytes > 0) {
    // The device read happens asynchronously: it occupies a channel but the
    // triggering lane does not wait (readahead runs ahead of the reader).
    ssd_->SubmitRead(lane.now_ns(), run_bytes);
    ReclaimIfNeeded(lane, st, batch);
  }
}

// --- Data path -------------------------------------------------------------

Status PageCache::Read(Lane& lane, AddressSpace* as, MemCgroup* cg,
                       uint64_t offset, std::span<uint8_t> out) {
  if (as == nullptr || cg == nullptr) {
    return InvalidArgument("null mapping or cgroup");
  }
  CgroupState* st = StateFor(cg);
  if (st == nullptr) {
    return NotFound("unknown cgroup");
  }
  if (st->oom_killed.load(std::memory_order_relaxed)) {
    return ResourceExhausted("cgroup was OOM-killed");
  }
  if (out.empty()) {
    return OkStatus();
  }
  ScopedCurrentTask current(lane.task());
  lane.Charge(options_.costs.per_op_syscall_ns);

  const uint64_t first = offset / kPageSize;
  const uint64_t last = (offset + out.size() - 1) / kPageSize;
  DispatchBatch batch;
  std::vector<Folio*> run_pins;
  Stripe& stripe = StripeFor(as);

  uint64_t index = first;
  while (index <= last) {
    // Hit check. Default mode: lock-free xarray walk + speculative TryPin
    // under an ebr::Guard (filemap_get_folio under rcu_read_lock) — the
    // stripe is never required for a hit. Ablation (lockless_reads=false):
    // the whole hit service runs under the stripe, whose virtual-time
    // frontier serializes hits across lanes the way a contended xa_lock
    // serializes real CPUs.
    Folio* hit = nullptr;
    if (options_.lockless_reads) {
      hit = LocklessLookup(as, index, *st);
      if (hit != nullptr) {
        lane.Charge(options_.costs.hit_ns);
      }
    } else {
      MutexLock s(stripe.mu);
      lane.AdvanceTo(stripe.frontier_ns);  // wait for the previous holder
      hit = as->FindFolio(index);
      if (hit != nullptr) {
        hit->Pin();  // guard across the stripe release, until the ring pins
        lane.Charge(options_.costs.hit_ns);
        stripe.frontier_ns = lane.now_ns();
      }
    }
    if (hit != nullptr) {
      // Hit. Metadata updates go to the *owning* cgroup's policy, which may
      // differ from the reader's cgroup (§2.1 cross-cgroup semantics); the
      // notification is buffered and dispatched under the owner's lock at
      // the next drain. A multi-order hit services every requested page the
      // folio covers in this one step — one hit charge, one hit count, one
      // policy event for up to 2^order pages (the CPU amortization large
      // folios buy on the filemap fast path).
      CgroupState* owner = StateFor(hit->memcg);
      CHECK_NOTNULL(owner);
      hit->memcg->stat_hits.fetch_add(1, std::memory_order_relaxed);
      Append(lane, batch, owner, hit, HookEvent::kAccessed, nullptr);
      const uint64_t next =
          std::min(last + 1, hit->index + hit->nr_pages());
      hit->Unpin();
      as->ra_prev_index.store(next - 1, std::memory_order_relaxed);
      index = std::max(index + 1, next);
      continue;
    }

    // Miss: gather the contiguous run of missing pages within the request.
    uint64_t run_end = index;
    {
      MutexLock s(stripe.mu);
      while (run_end + 1 <= last && as->FindFolio(run_end + 1) == nullptr) {
        ++run_end;
      }
    }

    // Flush buffered events before taking our cgroup lock: while it is
    // held, the ring must only accumulate our own cgroup's events.
    Drain(lane, batch);

    bool oom = false;
    {
      MutexLock cg_lock(st->mu);
      const uint32_t ra_window = ReadaheadWindow(
          lane, *st, as, index,
          static_cast<uint32_t>(std::min<uint64_t>(last - index + 1,
                                                   UINT32_MAX)));

      // Pin the folios of this run while its device read is "in flight" and
      // its charges are reclaimed, then release them; pins must never cover
      // more than one run or a large read could pin the whole cgroup.
      uint64_t cached_pages = 0;
      run_pins.clear();
      uint64_t next_index = index;
      while (next_index <= run_end) {
        bool already = false;
        Folio* inserted = InsertFolio(
            lane, as, *st, next_index, /*is_write=*/false,
            /*via_readahead=*/false, batch, &already,
            static_cast<uint32_t>(
                std::min<uint64_t>(run_end - next_index + 1, UINT32_MAX)));
        if (already) {
          // Another lane populated the page; reprocess it as a hit outside
          // our cgroup lock (its owner may differ).
          inserted->Unpin();
          break;
        }
        cg->stat_misses.fetch_add(1, std::memory_order_relaxed);
        if (inserted == nullptr) {
          ++next_index;
          st->stats.direct_reads.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        // The inserted folio may span past next_index (multi-order); the
        // whole span is populated by this run's device read.
        next_index = inserted->index + inserted->nr_pages();
        cached_pages += inserted->nr_pages();
        run_pins.push_back(inserted);  // carries the InsertFolio pin
        Append(lane, batch, st, inserted, HookEvent::kAccessed, st);
        // Very long runs (whole-file reads): cap concurrent pins at the
        // device queue granularity, releasing the oldest.
        if (run_pins.size() > kMaxEvictionBatch) {
          run_pins.front()->Unpin();
          run_pins.erase(run_pins.begin());
          ReclaimIfNeeded(lane, *st, batch);
          if (st->oom_killed.load(std::memory_order_relaxed)) {
            oom = true;
            break;
          }
        }
      }

      const uint64_t run_pages = next_index - index;
      if (!oom && run_pages > 0) {
        // One device read covers the whole run (block-layer merging); the
        // lane waits for it.
        const uint64_t completion =
            ssd_->SubmitRead(lane.now_ns(), run_pages * kPageSize);
        lane.AdvanceTo(completion);
        as->ra_prev_index.store(next_index - 1, std::memory_order_relaxed);
      }

      if (!oom && cached_pages > 0) {
        ReclaimIfNeeded(lane, *st, batch);
      }
      for (Folio* pinned : run_pins) {
        pinned->Unpin();
      }
      run_pins.clear();
      if (st->oom_killed.load(std::memory_order_relaxed)) {
        oom = true;
      }

      // Readahead past the end of the request (a multi-order tail folio may
      // already have carried us past `last`).
      if (!oom && ra_window > 0 && run_pages > 0 && next_index - 1 >= last) {
        Prefetch(lane, as, *st, next_index, ra_window, batch);
      }
      index = next_index;
    }
    if (oom) {
      Drain(lane, batch);
      return ResourceExhausted("cgroup was OOM-killed");
    }
  }

  Drain(lane, batch);
  // Copy the data out. SimDisk holds canonical bytes (dirty pages write
  // through for *contents*; only the device *timing* is deferred to
  // writeback), so a single disk read covers hits and misses alike.
  return disk_->ReadAt(as->file(), offset, out);
}

Status PageCache::Write(Lane& lane, AddressSpace* as, MemCgroup* cg,
                        uint64_t offset, std::span<const uint8_t> data) {
  if (as == nullptr || cg == nullptr) {
    return InvalidArgument("null mapping or cgroup");
  }
  CgroupState* st = StateFor(cg);
  if (st == nullptr) {
    return NotFound("unknown cgroup");
  }
  if (st->oom_killed.load(std::memory_order_relaxed)) {
    return ResourceExhausted("cgroup was OOM-killed");
  }
  if (data.empty()) {
    return OkStatus();
  }
  ScopedCurrentTask current(lane.task());
  lane.Charge(options_.costs.per_op_syscall_ns);

  // Contents become canonical immediately; device write timing is charged
  // when the dirty folio is written back.
  CACHE_EXT_RETURN_IF_ERROR(disk_->WriteAt(as->file(), offset, data));

  const uint64_t first = offset / kPageSize;
  const uint64_t last = (offset + data.size() - 1) / kPageSize;
  DispatchBatch batch;
  Stripe& stripe = StripeFor(as);

  uint64_t index = first;
  while (index <= last) {
    Folio* hit = nullptr;
    {
      MutexLock s(stripe.mu);
      hit = as->FindFolio(index);
      if (hit != nullptr) {
        hit->Pin();
      }
    }
    if (hit != nullptr) {
      CgroupState* owner = StateFor(hit->memcg);
      CHECK_NOTNULL(owner);
      hit->memcg->stat_hits.fetch_add(1, std::memory_order_relaxed);
      if (!hit->TestSetFlag(kFolioDirty)) {
        // Exactly-once clean->dirty accounting, routed to the folio owner's
        // flush control (files are shared; the dirtier may be a different
        // cgroup than the one that cached the page).
        owner->flush->NoteDirtied(as, hit->nr_pages());
      }
      lane.Charge(options_.costs.write_page_ns);
      Append(lane, batch, owner, hit, HookEvent::kAccessed, nullptr);
      // A multi-order folio absorbs every covered page of the write in this
      // one step (it is dirtied — and later written back — as a unit).
      const uint64_t next =
          std::min(last + 1, hit->index + hit->nr_pages());
      hit->Unpin();
      BalanceDirty(lane, *owner);
      index = std::max(index + 1, next);
      continue;
    }

    Drain(lane, batch);
    bool oom = false;
    {
      MutexLock cg_lock(st->mu);
      while (index <= last) {
        bool already = false;
        Folio* inserted = InsertFolio(
            lane, as, *st, index, /*is_write=*/true,
            /*via_readahead=*/false, batch, &already,
            static_cast<uint32_t>(
                std::min<uint64_t>(last - index + 1, UINT32_MAX)));
        if (already) {
          inserted->Unpin();  // reprocess as a hit outside our lock
          break;
        }
        cg->stat_misses.fetch_add(1, std::memory_order_relaxed);
        if (inserted == nullptr) {
          // Admission denied: service like direct I/O — the lane waits for
          // the device write.
          st->stats.direct_writes.fetch_add(1, std::memory_order_relaxed);
          const uint64_t completion =
              ssd_->SubmitWrite(lane.now_ns(), kPageSize);
          lane.AdvanceTo(completion);
          ++index;
        } else {
          if (!inserted->TestSetFlag(kFolioDirty)) {
            st->flush->NoteDirtied(as, inserted->nr_pages());
          }
          lane.Charge(options_.costs.write_page_ns);
          Append(lane, batch, st, inserted, HookEvent::kAccessed, st);
          // The InsertFolio pin covers this folio's own charge being
          // reclaimed (the kernel holds one locked folio at a time in the
          // buffered-write loop; a single huge write must not pin more
          // pages than the cgroup can hold).
          ReclaimIfNeeded(lane, *st, batch);
          BalanceDirtyLocked(lane, *st, &batch);
          index = inserted->index + inserted->nr_pages();
          inserted->Unpin();
          if (st->oom_killed.load(std::memory_order_relaxed)) {
            oom = true;
            break;
          }
        }
        if (index > last) {
          break;
        }
        bool next_missing = false;
        {
          MutexLock s(stripe.mu);
          next_missing = as->FindFolio(index) == nullptr;
        }
        if (!next_missing) {
          break;  // leave the miss streak; the outer loop handles the hit
        }
      }
    }
    if (oom) {
      Drain(lane, batch);
      return ResourceExhausted("cgroup was OOM-killed");
    }
  }
  Drain(lane, batch);
  return OkStatus();
}

Status PageCache::SyncFile(Lane& lane, AddressSpace* as) {
  if (as == nullptr) {
    return InvalidArgument("null mapping");
  }
  // Phase 1 — collect under the stripe, charge nothing: clear dirty bits,
  // mark + pin the folios for the in-flight window, and snapshot the
  // mapping's writeback sequence. CPU charges and device submits happen
  // outside the lock so concurrent readers of this stripe never wait behind
  // an fsync's device work.
  //
  // Durability vs a concurrent fsync: every clear of kFolioDirty (here and
  // in the flusher) bumps wb_seq_started under the stripe first and
  // wb_seq_done only after the device write is submitted. A second fsync
  // that finds the bits already clear still snapshots `started` covering
  // those in-flight writes, drains to it below, and advances to the merged
  // completion — it cannot return before the data it depends on is durable.
  std::vector<writeback::FlushItem> items;
  std::vector<CgroupState*> sync_owners;
  uint64_t started = 0;
  {
    MutexLock s(StripeFor(as).mu);
    as->pages().ForEach([&](uint64_t, XEntry entry) {
      Folio* folio = entry.AsPointer<Folio>();
      if (folio == nullptr || !folio->TestClearFlag(kFolioDirty)) {
        return;
      }
      as->wb_seq_started.fetch_add(1, std::memory_order_relaxed);
      folio->SetFlag(kFolioWriteback);
      folio->Pin();
      const uint64_t nr = folio->nr_pages();  // whole span flushes as a unit
      CgroupState* owner = StateFor(folio->memcg);
      if (owner != nullptr) {
        owner->flush->NoteCleaned(as, nr);
        if (std::find(sync_owners.begin(), sync_owners.end(), owner) ==
            sync_owners.end()) {
          sync_owners.push_back(owner);
        }
      }
      items.push_back(writeback::FlushItem{
          as, folio->index, static_cast<uint32_t>(nr), -1, folio});
    });
    started = as->wb_seq_started.load(std::memory_order_relaxed);
  }
  for (CgroupState* owner : sync_owners) {
    owner->flush->NoteSyncEntry();
  }

  // Phase 2 — submit outside the stripe in file-offset order, merging
  // contiguous runs into extents. fsync is synchronous by definition, so
  // the CPU cost stays on the calling lane (unlike background flushing).
  writeback::SortFlushItems(items);
  size_t i = 0;
  while (i < items.size()) {
    size_t j = i;
    uint64_t run_pages = items[i].nr_pages;
    while (j + 1 < items.size() &&
           items[j + 1].index == items[j].index + items[j].nr_pages &&
           run_pages + items[j + 1].nr_pages <=
               options_.writeback.max_extent_pages) {
      ++j;
      run_pages += items[j].nr_pages;
    }
    const uint64_t completion =
        ssd_->SubmitWrite(lane.now_ns(), run_pages * kPageSize);
    lane.Charge(run_pages * options_.costs.writeback_page_ns);
    as->NoteWritebackCompletion(completion);
    for (size_t k = i; k <= j; ++k) {
      if (CgroupState* owner = StateFor(items[k].folio->memcg);
          owner != nullptr) {
        owner->stats.writeback_pages.fetch_add(items[k].nr_pages,
                                               std::memory_order_relaxed);
      }
      items[k].folio->ClearFlag(kFolioWriteback);
      as->wb_seq_done.fetch_add(1, std::memory_order_release);
      items[k].folio->Unpin();
    }
    i = j + 1;
  }

  // Phase 3 — drain: wait for every writeback this fsync depends on (its
  // own plus any in flight on other lanes at snapshot time), then wait out
  // the device. Single-threaded simulators never spin here (all ticks are
  // synchronous); MT lanes yield to the flusher threads.
  while (as->wb_seq_done.load(std::memory_order_acquire) < started) {
    std::this_thread::yield();
  }
  lane.AdvanceTo(as->wb_last_completion_ns.load(std::memory_order_relaxed));
  return OkStatus();
}

Status PageCache::FadviseRange(Lane& lane, AddressSpace* as, MemCgroup* cg,
                               Fadvise advice, uint64_t offset, uint64_t len) {
  if (as == nullptr) {
    return InvalidArgument("null mapping");
  }
  const uint64_t first = offset / kPageSize;
  const uint64_t last = len == 0 ? UINT64_MAX
                                 : (offset + len - 1) / kPageSize;
  switch (advice) {
    // Readahead-mode hints are plain relaxed stores: the fields are racy
    // best-effort hints (file_ra_state semantics) and need no lock at all.
    case Fadvise::kNormal: {
      as->ra_sequential_hint.store(false, std::memory_order_relaxed);
      as->ra_random_hint.store(false, std::memory_order_relaxed);
      as->noreuse_hint.store(false, std::memory_order_relaxed);
      return OkStatus();
    }
    case Fadvise::kSequential: {
      as->ra_sequential_hint.store(true, std::memory_order_relaxed);
      as->ra_random_hint.store(false, std::memory_order_relaxed);
      return OkStatus();
    }
    case Fadvise::kRandom: {
      as->ra_random_hint.store(true, std::memory_order_relaxed);
      as->ra_sequential_hint.store(false, std::memory_order_relaxed);
      return OkStatus();
    }
    case Fadvise::kNoReuse: {
      // v6.6 semantics: accesses to these folios do not feed promotion. The
      // folios still enter and occupy the cache. The range walk still wants
      // the stripe: ForEachInRange is not safe against concurrent pruning.
      MutexLock s(StripeFor(as).mu);
      as->noreuse_hint.store(true, std::memory_order_relaxed);
      // A multi-order folio spanning `first` from below has its canonical
      // base outside the walk range; probe for it explicitly.
      if (Folio* head = as->FindFolio(first); head != nullptr) {
        head->SetFlag(kFolioDropBehind);
      }
      as->pages().ForEachInRange(first, last, [](uint64_t, XEntry entry) {
        if (Folio* folio = entry.AsPointer<Folio>(); folio != nullptr) {
          folio->SetFlag(kFolioDropBehind);
        }
      });
      return OkStatus();
    }
    case Fadvise::kDontNeed: {
      // Invalidate clean + dirty folios in range (after writeback). This is
      // a removal in circumvention of the eviction path: no shadow entries.
      // Victims are recorded as (index, owner) — not folio pointers — and
      // re-validated under the owner lock + stripe; pinned folios (in use
      // by another lane) survive, like the kernel's invalidate path.
      struct Victim {
        uint64_t index;
        CgroupState* owner;
      };
      std::vector<Victim> victims;
      {
        MutexLock s(StripeFor(as).mu);
        // A multi-order folio spanning `first` from below has its canonical
        // base outside the walk range; probe for it explicitly.
        if (Folio* head = as->FindFolio(first);
            head != nullptr && head->index < first) {
          victims.push_back(Victim{head->index, StateFor(head->memcg)});
        }
        as->pages().ForEachInRange(first, last, [&](uint64_t idx,
                                                    XEntry entry) {
          if (Folio* folio = entry.AsPointer<Folio>(); folio != nullptr) {
            victims.push_back(Victim{idx, StateFor(folio->memcg)});
          }
        });
      }
      for (const Victim& v : victims) {
        if (v.owner == nullptr) {
          continue;
        }
        MutexLock lock(v.owner->mu);
        InvalidateForDontNeed(lane, *v.owner, as, v.index, first, last);
      }
      return OkStatus();
    }
    case Fadvise::kWillNeed: {
      if (cg == nullptr) {
        return InvalidArgument("WILLNEED requires a cgroup");
      }
      CgroupState* st = StateFor(cg);
      if (st == nullptr) {
        return NotFound("unknown cgroup");
      }
      const uint64_t file_pages =
          (disk_->SizeOf(as->file()) + kPageSize - 1) / kPageSize;
      const uint64_t end = std::min<uint64_t>(
          last, file_pages == 0 ? 0 : file_pages - 1);
      constexpr uint64_t kWillNeedCap = 1024;
      const uint64_t count =
          end >= first ? std::min<uint64_t>(end - first + 1, kWillNeedCap) : 0;
      if (count > 0) {
        DispatchBatch batch;
        {
          MutexLock lock(st->mu);
          Prefetch(lane, as, *st, first, static_cast<uint32_t>(count), batch);
          DrainLocked(lane, batch, *st);
        }
        Drain(lane, batch);
      }
      return OkStatus();
    }
  }
  return InvalidArgument("bad advice");
}

Status PageCache::DeleteFile(Lane& lane, AddressSpace* as) {
  if (as == nullptr) {
    return InvalidArgument("null mapping");
  }
  // Outermost lock held for the whole operation: no new opens of this name,
  // and consistent registry <-> cgroup lock ordering. The hot path never
  // takes registry_mu_, so lanes holding pins on this file's folios can
  // still drain and unpin, which the retry loop below waits for.
  MutexLock reg(registry_mu_);
  struct Victim {
    uint64_t index;
    CgroupState* owner;
  };
  for (;;) {
    std::vector<Victim> victims;
    {
      MutexLock s(StripeFor(as).mu);
      as->pages().ForEach([&](uint64_t idx, XEntry entry) {
        if (Folio* folio = entry.AsPointer<Folio>(); folio != nullptr) {
          victims.push_back(Victim{idx, StateFor(folio->memcg)});
        }
      });
    }
    if (victims.empty()) {
      break;
    }
    bool all_removed = true;
    for (const Victim& v : victims) {
      if (v.owner == nullptr) {
        continue;
      }
      MutexLock lock(v.owner->mu);
      // Deleted files are not written back and leave no shadows.
      if (!RemoveFolio(lane, *v.owner, as, v.index, /*expected=*/nullptr,
                       RemovalKind::kInvalidate, /*skip_writeback=*/true)) {
        all_removed = false;
      }
    }
    if (!all_removed) {
      std::this_thread::yield();  // a pinned folio: its lane will unpin soon
    }
  }
  {
    // Clear any remaining shadow entries.
    MutexLock s(StripeFor(as).mu);
    std::vector<uint64_t> shadows;
    as->pages().ForEach([&shadows](uint64_t index, XEntry entry) {
      if (entry.IsValue()) {
        shadows.push_back(index);
      }
    });
    for (uint64_t index : shadows) {
      as->pages().Erase(index);
    }
  }
  const std::string name = as->name();
  CACHE_EXT_RETURN_IF_ERROR(disk_->Delete(name));
  files_.erase(name);  // destroys `as`
  return OkStatus();
}

CgroupCacheStats PageCache::StatsFor(MemCgroup* cg) {
  CgroupState* st = StateFor(cg);
  if (st == nullptr) {
    return CgroupCacheStats{};
  }
  MutexLock lock(st->mu);
  return SnapshotStats(*st);
}

CgroupCacheStats PageCache::SnapshotStats(CgroupState& st) {
  // Latch a pending breaker escalation even if no cache event has run since
  // the trip — the policy manager polls these stats to drive its revert.
  (void)ExtActive(st);
  const auto& a = st.stats;
  CgroupCacheStats stats;
  stats.fallback_evictions = a.fallback_evictions.load(std::memory_order_relaxed);
  stats.ext_violations = a.ext_violations.load(std::memory_order_relaxed);
  stats.direct_reads = a.direct_reads.load(std::memory_order_relaxed);
  stats.direct_writes = a.direct_writes.load(std::memory_order_relaxed);
  stats.readahead_pages = a.readahead_pages.load(std::memory_order_relaxed);
  stats.writeback_pages = a.writeback_pages.load(std::memory_order_relaxed);
  stats.invalidations = a.invalidations.load(std::memory_order_relaxed);
  stats.rejected_at_load = a.rejected_at_load.load(std::memory_order_relaxed);
  stats.ext_detached_by_watchdog =
      st.watchdog_detached.load(std::memory_order_relaxed);
  stats.oom_killed = st.oom_killed.load(std::memory_order_relaxed);
  for (uint32_t i = 0; i < kNumPolicyHooks; ++i) {
    stats.ext_hook_trip_counts[i] =
        a.ext_hook_trip_counts[i].load(std::memory_order_relaxed);
  }
  stats.ext_quarantined = a.ext_quarantined.load(std::memory_order_relaxed);
  stats.ext_banned = a.ext_banned.load(std::memory_order_relaxed);
  stats.ext_reattach_attempts =
      a.ext_reattach_attempts.load(std::memory_order_relaxed);
  stats.ext_map_lookups = a.ext_map_lookups.load(std::memory_order_relaxed);
  stats.ext_local_storage_hits =
      a.ext_local_storage_hits.load(std::memory_order_relaxed);
  stats.ext_evict_alloc_bytes =
      a.ext_evict_alloc_bytes.load(std::memory_order_relaxed);
  stats.ext_evict_arena_reuses =
      a.ext_evict_arena_reuses.load(std::memory_order_relaxed);
  stats.ext_ir_jit_compiles =
      a.ext_ir_jit_compiles.load(std::memory_order_relaxed);
  stats.ext_ir_jit_ns = a.ext_ir_jit_ns.load(std::memory_order_relaxed);
  stats.ext_ir_interp_fallbacks =
      a.ext_ir_interp_fallbacks.load(std::memory_order_relaxed);
  stats.ext_lockless_lookups =
      a.ext_lockless_lookups.load(std::memory_order_relaxed);
  stats.ext_lockless_retries =
      a.ext_lockless_retries.load(std::memory_order_relaxed);
  stats.ext_readahead_clamped =
      a.ext_readahead_clamped.load(std::memory_order_relaxed);
  stats.ext_order_folios = a.ext_order_folios.load(std::memory_order_relaxed);
  stats.ext_order_pages = a.ext_order_pages.load(std::memory_order_relaxed);
  stats.ext_order_fallbacks =
      a.ext_order_fallbacks.load(std::memory_order_relaxed);
  stats.ext_order_splits = a.ext_order_splits.load(std::memory_order_relaxed);
  const reclaim::ReclaimCounterSnapshot r = st.reclaim->Snapshot();
  stats.reclaim_wakeups = r.wakeups;
  stats.reclaim_background_batches = r.background_batches;
  stats.reclaim_background_evicted = r.background_evicted;
  stats.ext_background_reclaim_ns = r.background_reclaim_ns;
  stats.reclaim_direct_entries = r.direct_entries;
  stats.reclaim_direct_evicted = r.direct_evicted;
  stats.ext_direct_reclaim_ns = r.direct_reclaim_ns;
  stats.reclaim_emergency_entries = r.emergency_entries;
  stats.reclaim_watchdog_trips = r.watchdog_trips;
  stats.reclaim_stalled_ticks = r.stalled_ticks;
  stats.reclaim_max_overshoot_pages = r.max_overshoot_pages;
  stats.ext_reclaim_failures = r.ext_reclaim_failures;
  stats.psi_some_ns = r.psi_some_ns;
  stats.psi_full_ns = r.psi_full_ns;
  stats.reclaim_health = r.health;
  // Writeback counters live on the flush control block (they survive policy
  // detach naturally — nothing to fold). dirty_pages is the live gauge;
  // pages_written is not surfaced separately because every submit site
  // already bumps the cumulative writeback_pages stat above.
  const writeback::WritebackCounterSnapshot w = st.flush->Snapshot();
  stats.dirty_pages = w.dirty_pages;
  stats.writeback_wakeups = w.wakeups;
  stats.writeback_flush_ticks = w.flush_ticks;
  stats.writeback_extents = w.extents_written;
  stats.writeback_deferred_pages = w.deferred_pages;
  stats.writeback_throttle_entries = w.throttle_entries;
  stats.ext_dirty_throttle_ns = w.dirty_throttle_ns;
  stats.ext_writeback_ns = w.writeback_ns;
  stats.writeback_sync_entries = w.sync_entries;
  stats.writeback_stalled_ticks = w.stalled_ticks;
  stats.writeback_lost_wakeups = w.lost_wakeups;
  stats.writeback_partial_flushes = w.partial_flushes;
  if (st.ext != nullptr) {
    // Overlay the live attachment's breaker state: current degraded mask,
    // plus its trips on top of the cumulative per-cgroup counters.
    const PolicyHookHealth health = st.ext->HookHealth();
    stats.ext_degraded_hook_mask = health.degraded_mask;
    for (uint32_t i = 0; i < kNumPolicyHooks; ++i) {
      stats.ext_hook_trip_counts[i] += health.trips[i];
    }
    // ... and its hot-path counters on top of the folded history.
    const PolicyRuntimeCounters counters = st.ext->RuntimeCounters();
    stats.ext_map_lookups += counters.map_lookups;
    stats.ext_local_storage_hits += counters.local_storage_hits;
    stats.ext_evict_alloc_bytes += counters.evict_alloc_bytes;
    stats.ext_evict_arena_reuses += counters.evict_arena_reuses;
    stats.ext_ir_jit_compiles += counters.ir_jit_compiles;
    stats.ext_ir_jit_ns += counters.ir_jit_ns;
    stats.ext_ir_interp_fallbacks += counters.ir_interp_fallbacks;
  }
  return stats;
}

}  // namespace cache_ext
