#include "src/pagecache/page_cache.h"

#include <algorithm>

#include "src/pagecache/current_task.h"
#include "src/pagecache/default_lru.h"
#include "src/pagecache/mglru.h"
#include "src/pagecache/workingset.h"
#include "src/util/logging.h"

namespace cache_ext {

namespace {

std::unique_ptr<ReclaimPolicy> MakeBasePolicy(BasePolicyKind kind,
                                              const CpuCostModel& costs) {
  switch (kind) {
    case BasePolicyKind::kDefaultLru:
      return std::make_unique<DefaultLruPolicy>(costs.lru_event_ns);
    case BasePolicyKind::kMglru:
      return std::make_unique<MglruPolicy>(costs.mglru_event_ns);
  }
  return nullptr;
}

}  // namespace

PageCache::PageCache(SimDisk* disk, SsdModel* ssd, PageCacheOptions options)
    : disk_(disk), ssd_(ssd), options_(options) {
  CHECK_NOTNULL(disk_);
  CHECK_NOTNULL(ssd_);
}

PageCache::~PageCache() {
  // Free all resident folios.
  for (auto& [name, as] : files_) {
    std::vector<Folio*> folios;
    as->pages().ForEach([&folios](uint64_t, XEntry entry) {
      if (Folio* folio = entry.AsPointer<Folio>(); folio != nullptr) {
        folios.push_back(folio);
      }
    });
    for (Folio* folio : folios) {
      delete folio;
    }
  }
}

MemCgroup* PageCache::CreateCgroup(std::string_view name, uint64_t limit_bytes,
                                   BasePolicyKind base) {
  std::lock_guard<std::mutex> lock(mu_);
  auto state = std::make_unique<CgroupState>();
  const uint64_t limit_pages = std::max<uint64_t>(1, limit_bytes / kPageSize);
  state->cg = std::make_unique<MemCgroup>(next_cgroup_id_++, std::string(name),
                                          limit_pages);
  state->base = MakeBasePolicy(base, options_.costs);
  MemCgroup* cg = state->cg.get();
  cgroups_.push_back(std::move(state));
  return cg;
}

MemCgroup* PageCache::FindCgroup(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& st : cgroups_) {
    if (st->cg->name() == name) {
      return st->cg.get();
    }
  }
  return nullptr;
}

PageCache::CgroupState* PageCache::StateFor(MemCgroup* cg) {
  for (auto& st : cgroups_) {
    if (st->cg.get() == cg) {
      return st.get();
    }
  }
  return nullptr;
}

Expected<AddressSpace*> PageCache::OpenFile(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(std::string(name));
  if (it != files_.end()) {
    return it->second.get();
  }
  FileId id = kInvalidFileId;
  if (disk_->Exists(name)) {
    auto opened = disk_->Open(name);
    CACHE_EXT_RETURN_IF_ERROR(opened.status());
    id = *opened;
  } else {
    auto created = disk_->Create(name);
    CACHE_EXT_RETURN_IF_ERROR(created.status());
    id = *created;
  }
  auto as =
      std::make_unique<AddressSpace>(next_mapping_id_++, id, std::string(name));
  AddressSpace* raw = as.get();
  files_[std::string(name)] = std::move(as);
  return raw;
}

Status PageCache::AttachExtPolicy(MemCgroup* cg,
                                  std::unique_ptr<ReclaimPolicy> policy) {
  std::lock_guard<std::mutex> lock(mu_);
  CgroupState* st = StateFor(cg);
  if (st == nullptr) {
    return NotFound("unknown cgroup");
  }
  if (st->ext != nullptr) {
    return AlreadyExists("cgroup already has an ext policy attached");
  }
  st->ext = std::move(policy);
  st->stats.ext_violations = 0;
  st->stats.ext_detached_by_watchdog = false;
  // Introduce currently-resident folios so the policy has a complete view
  // (folios inserted before attach would otherwise be invisible to it and
  // unevictable through its lists).
  for (auto& [name, as] : files_) {
    as->pages().ForEach([&](uint64_t, XEntry entry) {
      Folio* folio = entry.AsPointer<Folio>();
      if (folio != nullptr && folio->memcg == cg) {
        st->ext->FolioAdded(folio);
      }
    });
  }
  return OkStatus();
}

Status PageCache::DetachExtPolicy(MemCgroup* cg) {
  std::lock_guard<std::mutex> lock(mu_);
  CgroupState* st = StateFor(cg);
  if (st == nullptr) {
    return NotFound("unknown cgroup");
  }
  if (st->ext == nullptr) {
    return FailedPrecondition("no ext policy attached");
  }
  // Fold the departing attachment's breaker trips into the cgroup's
  // cumulative counters so post-mortem stats survive the detach.
  const PolicyHookHealth health = st->ext->HookHealth();
  for (uint32_t i = 0; i < kNumPolicyHooks; ++i) {
    st->stats.ext_hook_trip_counts[i] += health.trips[i];
  }
  st->ext.reset();
  return OkStatus();
}

ReclaimPolicy* PageCache::ext_policy(MemCgroup* cg) {
  std::lock_guard<std::mutex> lock(mu_);
  CgroupState* st = StateFor(cg);
  return st == nullptr ? nullptr : st->ext.get();
}

void PageCache::RecordLoadRejection(MemCgroup* cg) {
  std::lock_guard<std::mutex> lock(mu_);
  CgroupState* st = StateFor(cg);
  if (st != nullptr) {
    ++st->stats.rejected_at_load;
  }
}

void PageCache::SetQuarantineInfo(MemCgroup* cg, bool quarantined, bool banned,
                                  uint32_t reattach_attempts) {
  std::lock_guard<std::mutex> lock(mu_);
  CgroupState* st = StateFor(cg);
  if (st == nullptr) {
    return;
  }
  st->stats.ext_quarantined = quarantined;
  st->stats.ext_banned = banned;
  st->stats.ext_reattach_attempts = reattach_attempts;
}

bool PageCache::ExtActive(CgroupState& st) {
  if (st.ext == nullptr || st.stats.ext_detached_by_watchdog) {
    return false;
  }
  if (st.ext->WantsDetach()) {
    // Breaker escalation: latch the watchdog flag so every dispatch site
    // stops consulting the policy; the manager's Poll() finishes the job.
    LOG_WARNING << "cache_ext watchdog: policy '" << st.ext->name()
                << "' on cgroup '" << st.cg->name()
                << "' escalated by its circuit breaker; detaching";
    st.stats.ext_detached_by_watchdog = true;
    return false;
  }
  return true;
}

ReclaimPolicy* PageCache::base_policy(MemCgroup* cg) {
  std::lock_guard<std::mutex> lock(mu_);
  CgroupState* st = StateFor(cg);
  return st == nullptr ? nullptr : st->base.get();
}

void PageCache::DispatchAdded(Lane& lane, CgroupState& st, Folio* folio) {
  st.base->FolioAdded(folio);
  lane.Charge(st.base->PerEventCostNs());
  if (ExtActive(st)) {
    st.ext->FolioAdded(folio);
    lane.Charge(st.ext->PerEventCostNs());
  }
  if (tracer_ != nullptr) {
    tracer_->OnFolioAdded(lane, *folio);
  }
}

void PageCache::DispatchAccessed(Lane& lane, CgroupState& st, Folio* folio) {
  st.base->FolioAccessed(folio);
  lane.Charge(st.base->PerEventCostNs());
  if (ExtActive(st)) {
    st.ext->FolioAccessed(folio);
    lane.Charge(st.ext->PerEventCostNs());
  }
  if (tracer_ != nullptr) {
    tracer_->OnFolioAccessed(lane, *folio);
  }
}

void PageCache::DispatchRemoved(Lane& lane, CgroupState& st, Folio* folio) {
  // Ext first so it can clean map state while the folio is still registered.
  if (ExtActive(st)) {
    st.ext->FolioRemoved(folio);
    lane.Charge(st.ext->PerEventCostNs());
  }
  st.base->FolioRemoved(folio);
  lane.Charge(st.base->PerEventCostNs());
  if (tracer_ != nullptr) {
    tracer_->OnFolioEvicted(lane, *folio);
  }
}

Folio* PageCache::InsertFolio(Lane& lane, AddressSpace* as, CgroupState& st,
                              uint64_t index, bool is_write,
                              bool via_readahead) {
  MemCgroup* cg = st.cg.get();

  // Admission filter (§5.6): only consulted for folios not yet present, and
  // never for a watchdog-detached policy (it must not veto admissions).
  if (ExtActive(st)) {
    AdmissionCtx actx;
    actx.mapping = as;
    actx.index = index;
    actx.memcg = cg;
    actx.pid = lane.task().pid;
    actx.tid = lane.task().tid;
    actx.is_write = is_write;
    lane.Charge(options_.costs.hook_dispatch_ns);
    if (!st.ext->AdmitFolio(actx)) {
      return nullptr;
    }
  }

  lane.Charge(options_.costs.miss_setup_ns);

  // Refault detection against a shadow entry left by a prior eviction.
  const XEntry old_entry = as->pages().Load(index);
  RefaultDecision refault;
  if (old_entry.IsValue()) {
    refault = WorkingsetRefault(cg, old_entry, cg->limit_pages());
  }

  auto* folio = new Folio();
  folio->mapping = as;
  folio->index = index;
  folio->memcg = cg;
  folio->SetFlag(kFolioUptodate);
  if (refault.activate) {
    folio->SetFlag(kFolioWorkingset);
  }
  if (as->noreuse_hint) {
    folio->SetFlag(kFolioDropBehind);
  }

  as->pages().Store(index, XEntry::FromPointer(folio));
  as->IncResident();
  ++total_resident_;
  cg->ChargePage();
  cg->stat_insertions.fetch_add(1, std::memory_order_relaxed);
  if (via_readahead) {
    ++st.stats.readahead_pages;
  }

  if (refault.is_refault) {
    st.base->FolioRefaulted(folio, refault.tier);
    if (ExtActive(st)) {
      st.ext->FolioRefaulted(folio, refault.tier);
    }
  }
  DispatchAdded(lane, st, folio);
  return folio;
}

bool PageCache::RemoveFolio(Lane& lane, Folio* folio, RemovalKind kind) {
  if (folio->pinned()) {
    return false;
  }
  AddressSpace* as = folio->mapping;
  MemCgroup* cg = folio->memcg;
  CgroupState* st = StateFor(cg);
  CHECK_NOTNULL(st);

  if (folio->TestFlag(kFolioDirty)) {
    // Writeback: the device write occupies a channel but the reclaiming
    // lane does not wait for it (async flush).
    ssd_->SubmitWrite(lane.now_ns(), kPageSize);
    lane.Charge(options_.costs.writeback_page_ns);
    folio->ClearFlag(kFolioDirty);
    ++st->stats.writeback_pages;
  }

  XEntry shadow = XEntry::Empty();
  if (kind == RemovalKind::kEvict) {
    const uint32_t tier = st->base->EvictionTier(folio);
    shadow = WorkingsetEviction(cg, tier);
    cg->stat_evictions.fetch_add(1, std::memory_order_relaxed);
  } else {
    ++st->stats.invalidations;
  }
  as->pages().Store(folio->index, shadow);
  as->DecResident();
  DCHECK(total_resident_ > 0);
  --total_resident_;
  cg->UnchargePage();

  DispatchRemoved(lane, *st, folio);
  delete folio;
  return true;
}

bool PageCache::CandidateValid(CgroupState& st, Folio* folio, bool from_ext,
                               bool* violation) {
  *violation = false;
  if (folio == nullptr) {
    *violation = from_ext;
    return false;
  }
  if (from_ext) {
    // The valid-folio registry check (§4.4) happens inside the adapter via
    // ValidateCandidate *before* the pointer may be dereferenced. Only a
    // failure here is a safety violation (bad/stale pointer); a pinned or
    // concurrently-removed folio is a normal race, not misbehaviour.
    if (!st.ext->ValidateCandidate(folio)) {
      *violation = true;
      return false;
    }
  }
  if (folio->mapping == nullptr || folio->memcg != st.cg.get()) {
    return false;
  }
  if (folio->mapping->FindFolio(folio->index) != folio) {
    return false;
  }
  return !folio->pinned();
}

void PageCache::ReclaimIfNeeded(Lane& lane, CgroupState& st) {
  MemCgroup* cg = st.cg.get();
  if (!cg->OverLimit() || st.stats.oom_killed) {
    return;
  }
  const uint64_t slack = std::min<uint64_t>(cg->limit_pages() / 8,
                                            kMaxEvictionBatch - 1);
  int zero_progress_rounds = 0;
  while (cg->OverLimit()) {
    lane.Charge(options_.costs.reclaim_batch_ns);
    EvictionCtx ctx;
    ctx.nr_candidates_requested =
        std::min<uint64_t>(kMaxEvictionBatch, cg->ExcessPages() + slack);

    const bool use_ext = ExtActive(st);
    if (use_ext) {
      st.ext->EvictFolios(&ctx, cg);
    } else {
      st.base->EvictFolios(&ctx, cg);
    }

    uint64_t evicted = 0;
    for (uint64_t i = 0; i < ctx.nr_candidates_proposed; ++i) {
      Folio* folio = ctx.candidates[i];
      bool violation = false;
      if (!CandidateValid(st, folio, use_ext, &violation)) {
        if (violation) {
          ++st.stats.ext_violations;
        }
        continue;
      }
      if (RemoveFolio(lane, folio, RemovalKind::kEvict)) {
        ++evicted;
        lane.Charge(options_.costs.reclaim_per_folio_ns);
      }
    }

    // Eviction fallback (§4.4): if the ext policy under-proposed, the kernel
    // falls back to the default policy for the remainder.
    if (use_ext && evicted < ctx.nr_candidates_requested && cg->OverLimit()) {
      EvictionCtx fallback_ctx;
      fallback_ctx.nr_candidates_requested =
          ctx.nr_candidates_requested - evicted;
      st.base->EvictFolios(&fallback_ctx, cg);
      for (uint64_t i = 0; i < fallback_ctx.nr_candidates_proposed; ++i) {
        Folio* folio = fallback_ctx.candidates[i];
        bool violation = false;
        if (!CandidateValid(st, folio, /*from_ext=*/false, &violation)) {
          continue;
        }
        if (RemoveFolio(lane, folio, RemovalKind::kEvict)) {
          ++evicted;
          ++st.stats.fallback_evictions;
          lane.Charge(options_.costs.reclaim_per_folio_ns);
        }
      }
    }

    // Watchdog (§4.4): forcibly unload a persistently misbehaving policy.
    if (use_ext &&
        st.stats.ext_violations > options_.watchdog_violation_limit) {
      LOG_WARNING << "cache_ext watchdog: detaching policy '"
                  << st.ext->name() << "' from cgroup '" << cg->name()
                  << "' after " << st.stats.ext_violations
                  << " invalid candidates";
      st.stats.ext_detached_by_watchdog = true;
    }

    if (evicted == 0) {
      if (++zero_progress_rounds >= options_.max_reclaim_retries) {
        st.stats.oom_killed = true;
        cg->stat_oom_events.fetch_add(1, std::memory_order_relaxed);
        LOG_WARNING << "memcg OOM: cgroup '" << cg->name()
                    << "' could not reclaim below its limit (policy "
                    << (use_ext ? st.ext->name() : st.base->name()) << ")";
        return;
      }
    } else {
      zero_progress_rounds = 0;
    }
  }
}

uint32_t PageCache::ReadaheadWindow(Lane& lane, CgroupState& st,
                                    AddressSpace* as, uint64_t index) {
  uint32_t heuristic = 0;
  if (!as->ra_random_hint) {
    const uint32_t max_window =
        as->ra_sequential_hint ? 2 * options_.max_readahead_pages
                               : options_.max_readahead_pages;
    if (as->ra_prev_index != UINT64_MAX && index == as->ra_prev_index + 1) {
      // Sequential pattern: grow the window (ondemand_readahead-style).
      as->ra_window = std::min(max_window, as->ra_window == 0
                                               ? 4
                                               : as->ra_window * 2);
    } else {
      as->ra_window = 0;
    }
    heuristic = as->ra_window;
  }

  // Prefetch-policy extension (§7): an attached policy may override the
  // heuristic; the answer is clamped to a sane ceiling.
  if (ExtActive(st)) {
    PrefetchCtx ctx;
    ctx.mapping = as;
    ctx.index = index;
    ctx.prev_index = as->ra_prev_index;
    ctx.default_window = heuristic;
    ctx.pid = lane.task().pid;
    ctx.tid = lane.task().tid;
    lane.Charge(options_.costs.hook_dispatch_ns);
    const int64_t requested = st.ext->RequestPrefetch(ctx);
    if (requested >= 0) {
      constexpr int64_t kPrefetchCeiling = 256;
      return static_cast<uint32_t>(std::min(requested, kPrefetchCeiling));
    }
  }
  return heuristic;
}

void PageCache::Prefetch(Lane& lane, AddressSpace* as, CgroupState& st,
                         uint64_t first_index, uint32_t nr_pages) {
  uint64_t run_bytes = 0;
  for (uint32_t i = 0; i < nr_pages; ++i) {
    const uint64_t index = first_index + i;
    if (as->FindFolio(index) != nullptr) {
      continue;
    }
    if (InsertFolio(lane, as, st, index, /*is_write=*/false,
                    /*via_readahead=*/true) != nullptr) {
      run_bytes += kPageSize;
    }
  }
  if (run_bytes > 0) {
    // The device read happens asynchronously: it occupies a channel but the
    // triggering lane does not wait (readahead runs ahead of the reader).
    ssd_->SubmitRead(lane.now_ns(), run_bytes);
    ReclaimIfNeeded(lane, st);
  }
}

Status PageCache::Read(Lane& lane, AddressSpace* as, MemCgroup* cg,
                       uint64_t offset, std::span<uint8_t> out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (as == nullptr || cg == nullptr) {
    return InvalidArgument("null mapping or cgroup");
  }
  CgroupState* st = StateFor(cg);
  if (st == nullptr) {
    return NotFound("unknown cgroup");
  }
  if (st->stats.oom_killed) {
    return ResourceExhausted("cgroup was OOM-killed");
  }
  if (out.empty()) {
    return OkStatus();
  }
  ScopedCurrentTask current(lane.task());
  lane.Charge(options_.costs.per_op_syscall_ns);

  const uint64_t first = offset / kPageSize;
  const uint64_t last = (offset + out.size() - 1) / kPageSize;
  std::vector<Folio*> run_pins;

  uint64_t index = first;
  while (index <= last) {
    Folio* folio = as->FindFolio(index);
    if (folio != nullptr) {
      // Hit. Metadata updates go to the *owning* cgroup's policy, which may
      // differ from the reader's cgroup (§2.1 cross-cgroup semantics).
      CgroupState* owner = StateFor(folio->memcg);
      CHECK_NOTNULL(owner);
      folio->memcg->stat_hits.fetch_add(1, std::memory_order_relaxed);
      lane.Charge(options_.costs.hit_ns);
      DispatchAccessed(lane, *owner, folio);
      as->ra_prev_index = index;
      ++index;
      continue;
    }

    // Miss: gather the contiguous run of missing pages within the request.
    uint64_t run_end = index;
    while (run_end + 1 <= last && as->FindFolio(run_end + 1) == nullptr) {
      ++run_end;
    }
    const uint64_t run_pages = run_end - index + 1;
    cg->stat_misses.fetch_add(run_pages, std::memory_order_relaxed);

    const uint32_t ra_window = ReadaheadWindow(lane, *st, as, index);

    // Pin the folios of this run while its device read is "in flight" and
    // its charges are reclaimed, then release them; pins must never cover
    // more than one run or a large read could pin the whole cgroup.
    uint64_t cached_pages = 0;
    run_pins.clear();
    for (uint64_t i = index; i <= run_end; ++i) {
      Folio* inserted =
          InsertFolio(lane, as, *st, i, /*is_write=*/false,
                      /*via_readahead=*/false);
      if (inserted != nullptr) {
        ++cached_pages;
        inserted->Pin();
        run_pins.push_back(inserted);
        DispatchAccessed(lane, *st, inserted);
      } else {
        ++st->stats.direct_reads;
      }
      // Very long runs (whole-file reads): cap concurrent pins at the
      // device queue granularity, releasing the oldest.
      if (run_pins.size() > kMaxEvictionBatch) {
        run_pins.front()->Unpin();
        run_pins.erase(run_pins.begin());
        ReclaimIfNeeded(lane, *st);
        if (st->stats.oom_killed) {
          for (Folio* pinned : run_pins) {
            pinned->Unpin();
          }
          return ResourceExhausted("cgroup was OOM-killed");
        }
      }
    }

    // One device read covers the whole run (block-layer merging); the lane
    // waits for it.
    const uint64_t completion =
        ssd_->SubmitRead(lane.now_ns(), run_pages * kPageSize);
    lane.AdvanceTo(completion);
    as->ra_prev_index = run_end;

    if (cached_pages > 0) {
      ReclaimIfNeeded(lane, *st);
    }
    for (Folio* pinned : run_pins) {
      pinned->Unpin();
    }
    run_pins.clear();
    if (st->stats.oom_killed) {
      return ResourceExhausted("cgroup was OOM-killed");
    }

    // Readahead past the end of the request.
    if (ra_window > 0 && run_end == last) {
      Prefetch(lane, as, *st, last + 1, ra_window);
    }
    index = run_end + 1;
  }

  // Copy the data out. SimDisk holds canonical bytes (dirty pages write
  // through for *contents*; only the device *timing* is deferred to
  // writeback), so a single disk read covers hits and misses alike.
  return disk_->ReadAt(as->file(), offset, out);
}

Status PageCache::Write(Lane& lane, AddressSpace* as, MemCgroup* cg,
                        uint64_t offset, std::span<const uint8_t> data) {
  std::lock_guard<std::mutex> lock(mu_);
  if (as == nullptr || cg == nullptr) {
    return InvalidArgument("null mapping or cgroup");
  }
  CgroupState* st = StateFor(cg);
  if (st == nullptr) {
    return NotFound("unknown cgroup");
  }
  if (st->stats.oom_killed) {
    return ResourceExhausted("cgroup was OOM-killed");
  }
  if (data.empty()) {
    return OkStatus();
  }
  ScopedCurrentTask current(lane.task());
  lane.Charge(options_.costs.per_op_syscall_ns);

  // Contents become canonical immediately; device write timing is charged
  // when the dirty folio is written back.
  CACHE_EXT_RETURN_IF_ERROR(disk_->WriteAt(as->file(), offset, data));

  const uint64_t first = offset / kPageSize;
  const uint64_t last = (offset + data.size() - 1) / kPageSize;

  for (uint64_t index = first; index <= last; ++index) {
    Folio* folio = as->FindFolio(index);
    if (folio != nullptr) {
      CgroupState* owner = StateFor(folio->memcg);
      CHECK_NOTNULL(owner);
      folio->memcg->stat_hits.fetch_add(1, std::memory_order_relaxed);
      folio->SetFlag(kFolioDirty);
      lane.Charge(options_.costs.write_page_ns);
      DispatchAccessed(lane, *owner, folio);
      continue;
    }
    cg->stat_misses.fetch_add(1, std::memory_order_relaxed);
    Folio* inserted = InsertFolio(lane, as, *st, index, /*is_write=*/true,
                                  /*via_readahead=*/false);
    if (inserted == nullptr) {
      // Admission denied: service like direct I/O — the lane waits for the
      // device write.
      ++st->stats.direct_writes;
      const uint64_t completion = ssd_->SubmitWrite(lane.now_ns(), kPageSize);
      lane.AdvanceTo(completion);
      continue;
    }
    inserted->SetFlag(kFolioDirty);
    lane.Charge(options_.costs.write_page_ns);
    DispatchAccessed(lane, *st, inserted);
    // Pin only while this page's own charge is being reclaimed (the kernel
    // holds one locked page at a time in the buffered-write loop; a single
    // huge write must not pin more pages than the cgroup can hold).
    inserted->Pin();
    ReclaimIfNeeded(lane, *st);
    inserted->Unpin();
    if (st->stats.oom_killed) {
      return ResourceExhausted("cgroup was OOM-killed");
    }
  }
  return OkStatus();
}

Status PageCache::SyncFile(Lane& lane, AddressSpace* as) {
  std::lock_guard<std::mutex> lock(mu_);
  if (as == nullptr) {
    return InvalidArgument("null mapping");
  }
  uint64_t dirty_pages = 0;
  uint64_t last_completion = 0;
  as->pages().ForEach([&](uint64_t, XEntry entry) {
    Folio* folio = entry.AsPointer<Folio>();
    if (folio == nullptr || !folio->TestFlag(kFolioDirty)) {
      return;
    }
    folio->ClearFlag(kFolioDirty);
    ++dirty_pages;
    lane.Charge(options_.costs.writeback_page_ns);
    CgroupState* st = StateFor(folio->memcg);
    if (st != nullptr) {
      ++st->stats.writeback_pages;
    }
  });
  if (dirty_pages > 0) {
    last_completion = ssd_->SubmitWrite(lane.now_ns(), dirty_pages * kPageSize);
    lane.AdvanceTo(last_completion);  // fsync waits
  }
  return OkStatus();
}

Status PageCache::FadviseRange(Lane& lane, AddressSpace* as, MemCgroup* cg,
                               Fadvise advice, uint64_t offset, uint64_t len) {
  std::lock_guard<std::mutex> lock(mu_);
  if (as == nullptr) {
    return InvalidArgument("null mapping");
  }
  const uint64_t first = offset / kPageSize;
  const uint64_t last = len == 0 ? UINT64_MAX
                                 : (offset + len - 1) / kPageSize;
  switch (advice) {
    case Fadvise::kNormal:
      as->ra_sequential_hint = false;
      as->ra_random_hint = false;
      as->noreuse_hint = false;
      return OkStatus();
    case Fadvise::kSequential:
      as->ra_sequential_hint = true;
      as->ra_random_hint = false;
      return OkStatus();
    case Fadvise::kRandom:
      as->ra_random_hint = true;
      as->ra_sequential_hint = false;
      return OkStatus();
    case Fadvise::kNoReuse: {
      // v6.6 semantics: accesses to these folios do not feed promotion. The
      // folios still enter and occupy the cache.
      as->noreuse_hint = true;
      as->pages().ForEachInRange(first, last, [](uint64_t, XEntry entry) {
        if (Folio* folio = entry.AsPointer<Folio>(); folio != nullptr) {
          folio->SetFlag(kFolioDropBehind);
        }
      });
      return OkStatus();
    }
    case Fadvise::kDontNeed: {
      // Invalidate clean + dirty folios in range (after writeback). This is
      // a removal in circumvention of the eviction path: no shadow entries.
      std::vector<Folio*> victims;
      as->pages().ForEachInRange(first, last, [&](uint64_t, XEntry entry) {
        if (Folio* folio = entry.AsPointer<Folio>(); folio != nullptr) {
          victims.push_back(folio);
        }
      });
      for (Folio* folio : victims) {
        RemoveFolio(lane, folio, RemovalKind::kInvalidate);
      }
      return OkStatus();
    }
    case Fadvise::kWillNeed: {
      if (cg == nullptr) {
        return InvalidArgument("WILLNEED requires a cgroup");
      }
      CgroupState* st = StateFor(cg);
      if (st == nullptr) {
        return NotFound("unknown cgroup");
      }
      const uint64_t file_pages =
          (disk_->SizeOf(as->file()) + kPageSize - 1) / kPageSize;
      const uint64_t end = std::min<uint64_t>(
          last, file_pages == 0 ? 0 : file_pages - 1);
      constexpr uint64_t kWillNeedCap = 1024;
      const uint64_t count =
          end >= first ? std::min<uint64_t>(end - first + 1, kWillNeedCap) : 0;
      if (count > 0) {
        Prefetch(lane, as, *st, first, static_cast<uint32_t>(count));
      }
      return OkStatus();
    }
  }
  return InvalidArgument("bad advice");
}

Status PageCache::DeleteFile(Lane& lane, AddressSpace* as) {
  std::lock_guard<std::mutex> lock(mu_);
  if (as == nullptr) {
    return InvalidArgument("null mapping");
  }
  std::vector<Folio*> victims;
  as->pages().ForEach([&](uint64_t, XEntry entry) {
    if (Folio* folio = entry.AsPointer<Folio>(); folio != nullptr) {
      victims.push_back(folio);
    }
  });
  for (Folio* folio : victims) {
    // Deleted files are not written back and leave no shadows.
    folio->ClearFlag(kFolioDirty);
    RemoveFolio(lane, folio, RemovalKind::kInvalidate);
  }
  // Clear any remaining shadow entries.
  std::vector<uint64_t> shadows;
  as->pages().ForEach([&shadows](uint64_t index, XEntry entry) {
    if (entry.IsValue()) {
      shadows.push_back(index);
    }
  });
  for (uint64_t index : shadows) {
    as->pages().Erase(index);
  }
  CACHE_EXT_RETURN_IF_ERROR(disk_->Delete(as->name()));
  files_.erase(as->name());  // destroys `as`
  return OkStatus();
}

CgroupCacheStats PageCache::StatsFor(MemCgroup* cg) {
  std::lock_guard<std::mutex> lock(mu_);
  CgroupState* st = StateFor(cg);
  if (st == nullptr) {
    return CgroupCacheStats{};
  }
  // Latch a pending breaker escalation even if no cache event has run since
  // the trip — the policy manager polls these stats to drive its revert.
  (void)ExtActive(*st);
  CgroupCacheStats stats = st->stats;
  if (st->ext != nullptr) {
    // Overlay the live attachment's breaker state: current degraded mask,
    // plus its trips on top of the cumulative per-cgroup counters.
    const PolicyHookHealth health = st->ext->HookHealth();
    stats.ext_degraded_hook_mask = health.degraded_mask;
    for (uint32_t i = 0; i < kNumPolicyHooks; ++i) {
      stats.ext_hook_trip_counts[i] += health.trips[i];
    }
  }
  return stats;
}

uint64_t PageCache::TotalResidentPages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_resident_;
}

}  // namespace cache_ext
