// "current" task context, the analogue of the kernel's `current` task
// pointer that eBPF programs reach via bpf_get_current_pid_tgid().
//
// The page cache publishes the acting lane's TaskContext for the duration of
// each operation; policy programs read it through CacheExtApi kfuncs. The
// GET-SCAN policy (§5.5) and the compaction admission filter (§5.6) key
// their decisions on it.

#ifndef SRC_PAGECACHE_CURRENT_TASK_H_
#define SRC_PAGECACHE_CURRENT_TASK_H_

#include "src/sim/lane.h"

namespace cache_ext {

TaskContext GetCurrentTask();

class ScopedCurrentTask {
 public:
  explicit ScopedCurrentTask(TaskContext task);
  ~ScopedCurrentTask();
  ScopedCurrentTask(const ScopedCurrentTask&) = delete;
  ScopedCurrentTask& operator=(const ScopedCurrentTask&) = delete;

 private:
  TaskContext saved_;
};

}  // namespace cache_ext

#endif  // SRC_PAGECACHE_CURRENT_TASK_H_
