// The simulated Linux page cache.
//
// Faithfully reproduces the structure the paper builds on (§2.1):
//  - per-file xarray of folios + shadow entries (mm/filemap.c);
//  - per-cgroup charging and cgroup-local reclaim in batches of up to 32
//    candidates proposed by a pluggable eviction policy;
//  - a *base* (native) policy per cgroup — default two-list LRU or native
//    MGLRU — whose bookkeeping always runs, exactly like the kernel keeps
//    folios on its own LRU lists even when cache_ext is attached ("the
//    actual folios are still stored and maintained by the default kernel
//    page cache implementation", §4.2.2);
//  - an optional *ext* policy per cgroup (the cache_ext adapter) that
//    overrides eviction proposals, with validation, default-policy fallback
//    and a misbehaviour watchdog (§4.4);
//  - workingset shadow entries / refault activation, dirty writeback on
//    eviction, readahead, and fadvise() hints.
//
// Timing: operations charge CPU costs and SSD time to the acting Lane's
// virtual clock (see src/sim/cpu_cost.h and DESIGN.md §4).

#ifndef SRC_PAGECACHE_PAGE_CACHE_H_
#define SRC_PAGECACHE_PAGE_CACHE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/cgroup/memcg.h"
#include "src/mm/address_space.h"
#include "src/mm/folio.h"
#include "src/pagecache/eviction.h"
#include "src/sim/cpu_cost.h"
#include "src/sim/lane.h"
#include "src/sim/sim_disk.h"
#include "src/sim/ssd_model.h"
#include "src/util/status.h"

namespace cache_ext {

enum class BasePolicyKind {
  kDefaultLru,
  kMglru,
};

enum class Fadvise {
  kNormal,
  kWillNeed,
  kDontNeed,
  kSequential,
  kRandom,
  kNoReuse,
};

// Observation hook for page-cache events; used by the Table 1 bench to model
// a userspace-dispatch architecture (every event posted to a ring buffer).
class PageCacheTracer {
 public:
  virtual ~PageCacheTracer() = default;
  virtual void OnFolioAdded(Lane& lane, const Folio& folio) = 0;
  virtual void OnFolioAccessed(Lane& lane, const Folio& folio) = 0;
  virtual void OnFolioEvicted(Lane& lane, const Folio& folio) = 0;
};

struct PageCacheOptions {
  CpuCostModel costs;
  // Reclaim gives up and OOM-kills the cgroup after this many consecutive
  // zero-progress rounds (kernel: MAX_RECLAIM_RETRIES-style bound).
  int max_reclaim_retries = 8;
  // An attached ext policy is forcibly unloaded after this many invalid
  // eviction candidates (the watchdog of §4.4).
  uint64_t watchdog_violation_limit = 128;
  // Readahead cap in pages (doubled by FADV_SEQUENTIAL).
  uint32_t max_readahead_pages = 8;
};

// Per-cgroup snapshot of counters that live inside the page cache (the
// cgroup's own counters — hits, misses, evictions... — live on MemCgroup).
struct CgroupCacheStats {
  uint64_t fallback_evictions = 0;  // evicted via default-policy fallback
  uint64_t ext_violations = 0;      // invalid candidates from the ext policy
  uint64_t direct_reads = 0;        // pages served uncached (admission deny)
  uint64_t direct_writes = 0;
  uint64_t readahead_pages = 0;
  uint64_t writeback_pages = 0;
  uint64_t invalidations = 0;  // removals circumventing eviction
  // Policies rejected by the load-time verifier before they ever attached
  // (the static half of §4.4; ext_violations counts the runtime half).
  uint64_t rejected_at_load = 0;
  bool ext_detached_by_watchdog = false;
  bool oom_killed = false;
  // Per-hook circuit-breaker state (§4.4 hardening). The mask covers the
  // CURRENT attachment (PolicyHookBit per degraded hook); trip counts
  // accumulate across attachments of this cgroup.
  uint32_t ext_degraded_hook_mask = 0;
  std::array<uint64_t, kNumPolicyHooks> ext_hook_trip_counts{};
  // Quarantine state published by the policy manager: the cgroup's last
  // managed policy was watchdog-reverted and is awaiting (or banned from)
  // backoff re-attach.
  bool ext_quarantined = false;
  bool ext_banned = false;
  uint32_t ext_reattach_attempts = 0;
};

class PageCache {
 public:
  PageCache(SimDisk* disk, SsdModel* ssd, PageCacheOptions options = {});
  ~PageCache();
  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  // --- Setup -------------------------------------------------------------

  MemCgroup* CreateCgroup(std::string_view name, uint64_t limit_bytes,
                          BasePolicyKind base = BasePolicyKind::kDefaultLru);
  MemCgroup* FindCgroup(std::string_view name);

  // Opens `name` on the disk (creating it if absent) and returns its
  // address space. Address spaces are process-global, like the kernel's.
  Expected<AddressSpace*> OpenFile(std::string_view name);

  // Attach / detach a cache_ext policy for a cgroup. Used by the cache_ext
  // loader; `policy` is the framework adapter. Detaching reverts eviction to
  // the base policy. Folios resident at attach time are introduced to the
  // policy via FolioAdded, so it starts with a complete view.
  Status AttachExtPolicy(MemCgroup* cg, std::unique_ptr<ReclaimPolicy> policy);
  Status DetachExtPolicy(MemCgroup* cg);
  ReclaimPolicy* ext_policy(MemCgroup* cg);
  // Count a policy the load-time verifier rejected before attach; shows up
  // as rejected_at_load in StatsFor(cg).
  void RecordLoadRejection(MemCgroup* cg);
  // Published by the policy manager so quarantine/backoff state shows up in
  // StatsFor(cg) next to the watchdog counters it reacts to.
  void SetQuarantineInfo(MemCgroup* cg, bool quarantined, bool banned,
                         uint32_t reattach_attempts);
  ReclaimPolicy* base_policy(MemCgroup* cg);

  void SetTracer(PageCacheTracer* tracer) { tracer_ = tracer; }

  // --- Data path ----------------------------------------------------------

  // pread()-style read through the cache; out.size() bytes from `offset`.
  Status Read(Lane& lane, AddressSpace* as, MemCgroup* cg, uint64_t offset,
              std::span<uint8_t> out);
  // pwrite()-style write through the cache (write-back).
  Status Write(Lane& lane, AddressSpace* as, MemCgroup* cg, uint64_t offset,
               std::span<const uint8_t> data);
  // Flush all dirty folios of the file; lane waits for completion (fsync).
  Status SyncFile(Lane& lane, AddressSpace* as);
  Status FadviseRange(Lane& lane, AddressSpace* as, MemCgroup* cg,
                      Fadvise advice, uint64_t offset, uint64_t len);
  // Remove all folios of `as` in circumvention of the eviction path (file
  // deletion / truncation, §4.2.1) and delete the backing file.
  Status DeleteFile(Lane& lane, AddressSpace* as);

  // --- Introspection -------------------------------------------------------

  CgroupCacheStats StatsFor(MemCgroup* cg);
  uint64_t TotalResidentPages() const;
  uint64_t FileSize(AddressSpace* as) const { return disk_->SizeOf(as->file()); }
  SimDisk* disk() { return disk_; }
  SsdModel* ssd() { return ssd_; }
  const PageCacheOptions& options() const { return options_; }

 private:
  struct CgroupState {
    std::unique_ptr<MemCgroup> cg;
    std::unique_ptr<ReclaimPolicy> base;
    std::unique_ptr<ReclaimPolicy> ext;
    CgroupCacheStats stats;
  };

  CgroupState* StateFor(MemCgroup* cg);

  // True when the cgroup's ext policy should still be consulted. False once
  // the watchdog flagged it — EVERY dispatch site must check this, so a
  // "detached" policy's programs never run and its per-event cost is never
  // charged — and latches the flag when the policy's own circuit breaker
  // escalates (multiple hooks tripped / persistently high violation rate).
  bool ExtActive(CgroupState& st);

  // Hook dispatch helpers; all charge the lane per-event CPU cost.
  void DispatchAdded(Lane& lane, CgroupState& st, Folio* folio);
  void DispatchAccessed(Lane& lane, CgroupState& st, Folio* folio);
  void DispatchRemoved(Lane& lane, CgroupState& st, Folio* folio);

  // Insert a folio for (as, index), charged to cg. Returns nullptr when the
  // ext admission filter rejected it (caller services the I/O directly).
  Folio* InsertFolio(Lane& lane, AddressSpace* as, CgroupState& st,
                     uint64_t index, bool is_write, bool via_readahead);

  // Writeback (if dirty) and remove `folio`. kEvict stores a shadow entry;
  // kInvalidate does not. Returns false if the folio is pinned.
  enum class RemovalKind { kEvict, kInvalidate };
  bool RemoveFolio(Lane& lane, Folio* folio, RemovalKind kind);

  // Bring `cg` back under its limit; may OOM-kill the cgroup.
  void ReclaimIfNeeded(Lane& lane, CgroupState& st);

  // Readahead: called on a miss at `index`; returns how many extra pages to
  // prefetch after `last_requested`. Consults the ext policy's prefetch
  // hook (§7 extension) when one is attached.
  uint32_t ReadaheadWindow(Lane& lane, CgroupState& st, AddressSpace* as,
                           uint64_t index);
  void Prefetch(Lane& lane, AddressSpace* as, CgroupState& st,
                uint64_t first_index, uint32_t nr_pages);

  bool CandidateValid(CgroupState& st, Folio* folio, bool from_ext,
                      bool* violation);

  SimDisk* disk_;
  SsdModel* ssd_;
  PageCacheOptions options_;
  PageCacheTracer* tracer_ = nullptr;

  mutable std::mutex mu_;
  uint64_t next_cgroup_id_ = 1;
  uint64_t next_mapping_id_ = 1;
  std::vector<std::unique_ptr<CgroupState>> cgroups_;
  std::unordered_map<std::string, std::unique_ptr<AddressSpace>> files_;
  uint64_t total_resident_ = 0;
};

}  // namespace cache_ext

#endif  // SRC_PAGECACHE_PAGE_CACHE_H_
