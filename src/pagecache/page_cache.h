// The simulated Linux page cache.
//
// Faithfully reproduces the structure the paper builds on (§2.1):
//  - per-file xarray of folios + shadow entries (mm/filemap.c);
//  - per-cgroup charging and cgroup-local reclaim in batches of up to 32
//    candidates proposed by a pluggable eviction policy;
//  - a *base* (native) policy per cgroup — default two-list LRU or native
//    MGLRU — whose bookkeeping always runs, exactly like the kernel keeps
//    folios on its own LRU lists even when cache_ext is attached ("the
//    actual folios are still stored and maintained by the default kernel
//    page cache implementation", §4.2.2);
//  - an optional *ext* policy per cgroup (the cache_ext adapter) that
//    overrides eviction proposals, with validation, default-policy fallback
//    and a misbehaviour watchdog (§4.4);
//  - workingset shadow entries / refault activation, dirty writeback on
//    eviction, readahead, and fadvise() hints.
//
// Timing: operations charge CPU costs and SSD time to the acting Lane's
// virtual clock (see src/sim/cpu_cost.h and DESIGN.md §4).
//
// Concurrency (DESIGN.md "Concurrency model"): the cache is sharded the way
// the kernel shards, so lanes in different cgroups / on different files run
// in parallel. Three lock levels, always acquired top-down:
//
//   registry_mu_          cgroup/file creation, attach/detach, DeleteFile
//   CgroupState::mu       per-cgroup: policies + reclaim (per-memcg lru_lock)
//   mapping stripes       per-file index: xarray writes + folio lifetime
//                         (i_pages xa_lock; striped, not per-file, to
//                         bound memory)
//
// Invariants: never two cgroup locks at once, never two stripes at once,
// stripe is only ever taken *inside* a cgroup lock (never the reverse),
// and the stripe is never REQUIRED for a hit: the read path's hit check
// walks the xarray lock-free under an ebr::Guard (filemap_get_folio under
// rcu_read_lock) and pins the folio with a speculative TryPin, falling
// back to the locked miss path on any race. Writers (insert, truncate,
// eviction) keep the stripe.
// Folio lifetime: a folio is only freed by its owning cgroup's RemoveFolio,
// which — under the stripe — re-checks "still mapped" and *freezes* the pin
// count (Folio::TryFreeze) so no lockless TryPin can resurrect it, then
// unmaps it and defers the free to EBR (ebr::Retire) so concurrent guarded
// readers never touch freed memory. Any path that uses a folio outside the
// stripe holds a pin (taken under the stripe, or via TryPin + revalidate).

#ifndef SRC_PAGECACHE_PAGE_CACHE_H_
#define SRC_PAGECACHE_PAGE_CACHE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/cgroup/memcg.h"
#include "src/mm/address_space.h"
#include "src/mm/folio.h"
#include "src/pagecache/eviction.h"
#include "src/reclaim/reclaimer.h"
#include "src/sim/cpu_cost.h"
#include "src/sim/lane.h"
#include "src/sim/sim_disk.h"
#include "src/sim/ssd_model.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"
#include "src/writeback/dirty.h"
#include "src/writeback/flusher.h"

namespace cache_ext {

enum class BasePolicyKind {
  kDefaultLru,
  kMglru,
};

enum class Fadvise {
  kNormal,
  kWillNeed,
  kDontNeed,
  kSequential,
  kRandom,
  kNoReuse,
};

// Observation hook for page-cache events; used by the Table 1 bench to model
// a userspace-dispatch architecture (every event posted to a ring buffer).
// Called concurrently from all lanes; implementations must be thread-safe.
class PageCacheTracer {
 public:
  virtual ~PageCacheTracer() = default;
  virtual void OnFolioAdded(Lane& lane, const Folio& folio) = 0;
  virtual void OnFolioAccessed(Lane& lane, const Folio& folio) = 0;
  virtual void OnFolioEvicted(Lane& lane, const Folio& folio) = 0;
};

struct PageCacheOptions {
  CpuCostModel costs;
  // Reclaim gives up and OOM-kills the cgroup after this many consecutive
  // zero-progress rounds (kernel: MAX_RECLAIM_RETRIES-style bound).
  int max_reclaim_retries = 8;
  // An attached ext policy is forcibly unloaded after this many invalid
  // eviction candidates (the watchdog of §4.4).
  uint64_t watchdog_violation_limit = 128;
  // Readahead cap in pages (doubled by FADV_SEQUENTIAL).
  uint32_t max_readahead_pages = 8;
  // folio_added/folio_accessed notifications are buffered per operation and
  // dispatched to the owning cgroup's policies in batches of up to this many
  // events (drained at reclaim boundaries and operation end), charging one
  // amortized hook-dispatch cost per batch — the hot-path analogue of the
  // batch-scoring mode in eviction_list (§4.2.3).
  uint32_t hook_batch_size = 16;
  // Background reclaim (src/reclaim): watermark-paced reclaimer lanes, the
  // allocator-side watchdog, and the `reclaim.background=false` ablation.
  // Off by default — inline-only direct reclaim, the historical behaviour.
  reclaim::ReclaimOptions reclaim;
  // Background writeback (src/writeback): per-cgroup flusher lanes paced by
  // dirty ratios, writer throttling above the dirty threshold, and the
  // `writeback.background=false` ablation. Off by default — dirty folios
  // are only written back by fsync or at eviction time, inline.
  writeback::WritebackOptions writeback;
  // Serve read hits lock-free (EBR guard + TryPin + revalidate, the
  // filemap_get_folio fast path). When false — the `--locked-reads`
  // ablation — every hit takes the mapping stripe for the full hit service
  // and the stripe behaves as a serializing resource in virtual time (its
  // frontier orders the hits of all lanes), modelling what a stripe-locked
  // hit path costs under contention.
  bool lockless_reads = true;
};

// Per-cgroup snapshot of counters that live inside the page cache (the
// cgroup's own counters — hits, misses, evictions... — live on MemCgroup).
struct CgroupCacheStats {
  uint64_t fallback_evictions = 0;  // evicted via default-policy fallback
  uint64_t ext_violations = 0;      // invalid candidates from the ext policy
  uint64_t direct_reads = 0;        // pages served uncached (admission deny)
  uint64_t direct_writes = 0;
  uint64_t readahead_pages = 0;
  uint64_t writeback_pages = 0;
  uint64_t invalidations = 0;  // removals circumventing eviction
  // Policies rejected by the load-time verifier before they ever attached
  // (the static half of §4.4; ext_violations counts the runtime half).
  uint64_t rejected_at_load = 0;
  bool ext_detached_by_watchdog = false;
  bool oom_killed = false;
  // Per-hook circuit-breaker state (§4.4 hardening). The mask covers the
  // CURRENT attachment (PolicyHookBit per degraded hook); trip counts
  // accumulate across attachments of this cgroup.
  uint32_t ext_degraded_hook_mask = 0;
  std::array<uint64_t, kNumPolicyHooks> ext_hook_trip_counts{};
  // Quarantine state published by the policy manager: the cgroup's last
  // managed policy was watchdog-reverted and is awaiting (or banned from)
  // backoff re-attach.
  bool ext_quarantined = false;
  bool ext_banned = false;
  uint32_t ext_reattach_attempts = 0;
  // Hot-path counters from the attached cache_ext policy (cumulative
  // across attachments of this cgroup, live attachment overlaid):
  // per-folio metadata resolutions that paid a hash probe vs those
  // served by a folio-embedded storage slot, and heap bytes the
  // eviction scoring path allocated (flat in steady state — the arena).
  // See PolicyRuntimeCounters in src/pagecache/eviction.h.
  uint64_t ext_map_lookups = 0;
  uint64_t ext_local_storage_hits = 0;
  uint64_t ext_evict_alloc_bytes = 0;
  uint64_t ext_evict_arena_reuses = 0;
  // IR compilation backend (src/bpf/jit): hooks lowered to native
  // closures, cumulative ns spent lowering them, and dispatches that fell
  // back to the reference interpreter (JIT declined the shape or
  // jit.compile_fail was injected). fallbacks > 0 with compiles == 0 is
  // the "interpreter kept the policy attached" signature.
  uint64_t ext_ir_jit_compiles = 0;
  uint64_t ext_ir_jit_ns = 0;
  uint64_t ext_ir_interp_fallbacks = 0;
  // Lockless read path (EBR): lookups attempted without the stripe by this
  // cgroup's readers, and how many of those lost a race (TryPin on a
  // frozen folio / failed revalidation) and retried into the locked slow
  // path. The retry rate under truncate/eviction churn is the health
  // signal for the lock-free hit path.
  uint64_t ext_lockless_lookups = 0;
  uint64_t ext_lockless_retries = 0;
  // Readahead + multi-order admission (the readahead/admit_order hooks).
  // ext_readahead_clamped counts policy-returned windows cut down to
  // max_readahead_pages; the ext_order_* trio tracks multi-order folios:
  // admitted (with their aggregate page count), policy requests that fell
  // back to order 0 (misalignment, span conflict, memcg pressure), and
  // folios split back to order 0 by a partial invalidate.
  uint64_t ext_readahead_clamped = 0;
  uint64_t ext_order_folios = 0;
  uint64_t ext_order_pages = 0;
  uint64_t ext_order_fallbacks = 0;
  uint64_t ext_order_splits = 0;
  // Background reclaim (src/reclaim). The ns split is the point: eviction
  // time that used to be folded into miss latency is now attributed either
  // to allocating tasks (`ext_direct_reclaim_ns`, PSI `some`) or to the
  // cgroup's reclaimer lane (`ext_background_reclaim_ns`, invisible to
  // allocation latency). `psi_full_ns` is the zero-progress subset of the
  // direct stall. Emergency entries, watchdog trips, stalled ticks and the
  // max overshoot quantify the degradation path (stalled/dead lane ->
  // bounded inline reclaim); `ext_reclaim_failures` counts rounds where the
  // ext policy proposed nothing usable while the base fallback evicted
  // (the circuit-breaker feed).
  uint64_t reclaim_wakeups = 0;
  uint64_t reclaim_background_batches = 0;
  uint64_t reclaim_background_evicted = 0;
  uint64_t ext_background_reclaim_ns = 0;
  uint64_t reclaim_direct_entries = 0;
  uint64_t reclaim_direct_evicted = 0;
  uint64_t ext_direct_reclaim_ns = 0;
  uint64_t reclaim_emergency_entries = 0;
  uint64_t reclaim_watchdog_trips = 0;
  uint64_t reclaim_stalled_ticks = 0;
  uint64_t reclaim_max_overshoot_pages = 0;
  uint64_t ext_reclaim_failures = 0;
  uint64_t psi_some_ns = 0;
  uint64_t psi_full_ns = 0;
  reclaim::LaneHealth reclaim_health = reclaim::LaneHealth::kIdle;
  // Background writeback (src/writeback). `dirty_pages` is the LIVE gauge
  // of dirty pages charged to the cgroup (writeback_pages above is the
  // cumulative flushed count). The ns split mirrors reclaim's: writer wall
  // time stalled in the balance_dirty_pages analogue (`ext_dirty_throttle_ns`,
  // the PSI-visible cost) vs flusher-lane time spent writing
  // (`ext_writeback_ns`, invisible to writer latency when background
  // writeback is on). Stalled ticks / lost wakeups / partial flushes count
  // chaos-injected degradation the throttle must contain.
  uint64_t dirty_pages = 0;
  uint64_t writeback_wakeups = 0;
  uint64_t writeback_flush_ticks = 0;
  uint64_t writeback_extents = 0;
  uint64_t writeback_deferred_pages = 0;
  uint64_t writeback_throttle_entries = 0;
  uint64_t ext_dirty_throttle_ns = 0;
  uint64_t ext_writeback_ns = 0;
  uint64_t writeback_sync_entries = 0;
  uint64_t writeback_stalled_ticks = 0;
  uint64_t writeback_lost_wakeups = 0;
  uint64_t writeback_partial_flushes = 0;
};

class PageCache {
 public:
  PageCache(SimDisk* disk, SsdModel* ssd, PageCacheOptions options = {});
  ~PageCache();
  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  // --- Setup -------------------------------------------------------------

  MemCgroup* CreateCgroup(std::string_view name, uint64_t limit_bytes,
                          BasePolicyKind base = BasePolicyKind::kDefaultLru);
  MemCgroup* FindCgroup(std::string_view name);

  // Opens `name` on the disk (creating it if absent) and returns its
  // address space. Address spaces are process-global, like the kernel's.
  Expected<AddressSpace*> OpenFile(std::string_view name);

  // Attach / detach a cache_ext policy for a cgroup. Used by the cache_ext
  // loader; `policy` is the framework adapter. Detaching reverts eviction to
  // the base policy. Folios resident at attach time are introduced to the
  // policy via FolioAdded, so it starts with a complete view.
  Status AttachExtPolicy(MemCgroup* cg, std::unique_ptr<ReclaimPolicy> policy);
  Status DetachExtPolicy(MemCgroup* cg);
  ReclaimPolicy* ext_policy(MemCgroup* cg);
  // Count a policy the load-time verifier rejected before attach; shows up
  // as rejected_at_load in StatsFor(cg).
  void RecordLoadRejection(MemCgroup* cg);
  // Published by the policy manager so quarantine/backoff state shows up in
  // StatsFor(cg) next to the watchdog counters it reacts to.
  void SetQuarantineInfo(MemCgroup* cg, bool quarantined, bool banned,
                         uint32_t reattach_attempts);
  ReclaimPolicy* base_policy(MemCgroup* cg);

  void SetTracer(PageCacheTracer* tracer) { tracer_ = tracer; }

  // --- Data path ----------------------------------------------------------
  //
  // Thread-safe: concurrent calls from different lanes proceed in parallel
  // when they touch different cgroups/files. Callers must not race a
  // DeleteFile against other operations on the same AddressSpace (the
  // kernel equivalent: an open fd holds the inode alive).

  // pread()-style read through the cache; out.size() bytes from `offset`.
  Status Read(Lane& lane, AddressSpace* as, MemCgroup* cg, uint64_t offset,
              std::span<uint8_t> out);
  // pwrite()-style write through the cache (write-back).
  Status Write(Lane& lane, AddressSpace* as, MemCgroup* cg, uint64_t offset,
               std::span<const uint8_t> data);
  // Flush all dirty folios of the file; lane waits for completion (fsync).
  Status SyncFile(Lane& lane, AddressSpace* as);
  Status FadviseRange(Lane& lane, AddressSpace* as, MemCgroup* cg,
                      Fadvise advice, uint64_t offset, uint64_t len);
  // Remove all folios of `as` in circumvention of the eviction path (file
  // deletion / truncation, §4.2.1) and delete the backing file.
  Status DeleteFile(Lane& lane, AddressSpace* as);

  // --- Introspection -------------------------------------------------------

  CgroupCacheStats StatsFor(MemCgroup* cg);
  uint64_t TotalResidentPages() const {
    return total_resident_.load(std::memory_order_relaxed);
  }
  uint64_t FileSize(AddressSpace* as) const { return disk_->SizeOf(as->file()); }
  SimDisk* disk() { return disk_; }
  SsdModel* ssd() { return ssd_; }
  const PageCacheOptions& options() const { return options_; }

 private:
  // Internal mirror of CgroupCacheStats with relaxed atomics: counters are
  // bumped from whichever lock (cgroup or stripe) the path holds; StatsFor
  // takes the cgroup lock and loads a coherent snapshot.
  struct AtomicCgroupStats {
    std::atomic<uint64_t> fallback_evictions{0};
    std::atomic<uint64_t> ext_violations{0};
    std::atomic<uint64_t> direct_reads{0};
    std::atomic<uint64_t> direct_writes{0};
    std::atomic<uint64_t> readahead_pages{0};
    std::atomic<uint64_t> writeback_pages{0};
    std::atomic<uint64_t> invalidations{0};
    std::atomic<uint64_t> rejected_at_load{0};
    std::array<std::atomic<uint64_t>, kNumPolicyHooks> ext_hook_trip_counts{};
    std::atomic<uint64_t> ext_map_lookups{0};
    std::atomic<uint64_t> ext_local_storage_hits{0};
    std::atomic<uint64_t> ext_evict_alloc_bytes{0};
    std::atomic<uint64_t> ext_evict_arena_reuses{0};
    std::atomic<uint64_t> ext_ir_jit_compiles{0};
    std::atomic<uint64_t> ext_ir_jit_ns{0};
    std::atomic<uint64_t> ext_ir_interp_fallbacks{0};
    std::atomic<uint64_t> ext_lockless_lookups{0};
    std::atomic<uint64_t> ext_lockless_retries{0};
    std::atomic<uint64_t> ext_readahead_clamped{0};
    std::atomic<uint64_t> ext_order_folios{0};
    std::atomic<uint64_t> ext_order_pages{0};
    std::atomic<uint64_t> ext_order_fallbacks{0};
    std::atomic<uint64_t> ext_order_splits{0};
    std::atomic<bool> ext_quarantined{false};
    std::atomic<bool> ext_banned{false};
    std::atomic<uint32_t> ext_reattach_attempts{0};
  };

  struct CgroupState {
    std::unique_ptr<MemCgroup> cg;
    // Per-cgroup lock: the analogue of the kernel's per-memcg lru_lock.
    // Guards both policies' internal state and serializes this cgroup's
    // reclaim; folio removal always happens under the OWNER's lock.
    Mutex mu;
    std::unique_ptr<ReclaimPolicy> base CACHE_EXT_GUARDED_BY(mu);
    std::unique_ptr<ReclaimPolicy> ext CACHE_EXT_GUARDED_BY(mu);
    AtomicCgroupStats stats;
    std::atomic<bool> oom_killed{false};
    std::atomic<bool> watchdog_detached{false};
    // Lock-free hints for the hit path's append-time cost accounting: the
    // authoritative ext state lives behind mu, but charging an event's
    // dispatch cost must not take the owner's lock on every hit.
    std::atomic<bool> ext_active_hint{false};
    std::atomic<uint64_t> ext_event_cost_ns{0};
    uint64_t base_event_cost_ns = 0;  // immutable after CreateCgroup
    // Background-reclaim control block (hysteresis latch, heartbeat,
    // watchdog, the reclaimer's own virtual lane, and all reclaim
    // counters). The lruvec->kswapd link; heavy mutation happens under mu,
    // wake checks are lock-free atomics.
    std::unique_ptr<reclaim::CgroupReclaimControl> reclaim;
    // Background-writeback control block (dirty gauge + file set, wakeup
    // latch, the flusher's own virtual lane, and all writeback counters).
    // The bdi_writeback analogue; the dirty gauge mutates lock-free from
    // hit paths, flush ticks run under mu.
    std::unique_ptr<writeback::CgroupFlushControl> flush;
  };

  // One buffered folio_added/folio_accessed notification. The ring holds a
  // pin on the folio, so it cannot be freed before dispatch.
  enum class HookEvent : uint8_t { kAdded, kAccessed };
  struct PendingHook {
    Folio* folio;
    CgroupState* owner;
    HookEvent event;
  };
  // Operation-local dispatch ring. Capacity leaves slack above the largest
  // configurable drain threshold (kMaxEvictionBatch) because a locked drain
  // can only retire the locked cgroup's entries and must keep the rest.
  struct DispatchBatch {
    std::array<PendingHook, 2 * kMaxEvictionBatch> entries;
    uint32_t size = 0;
  };

  // O(1), lock-free: CgroupStates are never destroyed before the cache.
  // Null for a null cgroup or one not created by this cache.
  CgroupState* StateFor(MemCgroup* cg) {
    return cg == nullptr ? nullptr : static_cast<CgroupState*>(cg->priv());
  }

  struct alignas(64) Stripe {
    Mutex mu;
    // Virtual-time frontier of the stripe as a serializing resource: only
    // the `lockless_reads = false` ablation uses it, making each locked
    // hit wait (in virtual time) for the previous hit on the same stripe —
    // the contention a real xa_lock imposes that per-lane virtual clocks
    // cannot otherwise see. The default lockless mode never touches it.
    uint64_t frontier_ns CACHE_EXT_GUARDED_BY(mu) = 0;
  };

  Stripe& StripeFor(const AddressSpace* as) {
    return stripes_[as->id() & (kNumStripes - 1)];
  }

  // True when the cgroup's ext policy should still be consulted. False once
  // the watchdog flagged it — EVERY dispatch site must check this, so a
  // "detached" policy's programs never run and its per-event cost is never
  // charged — and latches the flag when the policy's own circuit breaker
  // escalates (multiple hooks tripped / persistently high violation rate).
  bool ExtActive(CgroupState& st) CACHE_EXT_REQUIRES(st.mu);

  // --- Batched hook dispatch ---------------------------------------------
  //
  // Append charges the per-event policy costs (using the lock-free hints)
  // and runs the tracer inline; the policy calls themselves are deferred.
  // `locked` is the cgroup lock the caller currently holds (nullptr if
  // none): a full ring drains through DrainLocked for that cgroup instead
  // of Drain, which would self-deadlock.
  void Append(Lane& lane, DispatchBatch& batch, CgroupState* owner,
              Folio* folio, HookEvent event, CgroupState* locked);
  // Dispatch every buffered event, taking each owner's lock in turn (the
  // caller must hold no cgroup lock). Charges one amortized dispatch cost
  // per locked run of events.
  void Drain(Lane& lane, DispatchBatch& batch);
  // Dispatch the buffered events owned by `st` (whose lock the caller
  // holds); events for other cgroups are kept. Called at reclaim entry so
  // the policy sees all pending notifications before proposing victims.
  void DrainLocked(Lane& lane, DispatchBatch& batch, CgroupState& st)
      CACHE_EXT_REQUIRES(st.mu);
  void DispatchLocked(Lane& lane, const PendingHook& entry,
                      CgroupState& st) CACHE_EXT_REQUIRES(st.mu);

  void DispatchRemoved(Lane& lane, CgroupState& st, Folio* folio)
      CACHE_EXT_REQUIRES(st.mu);

  // Insert a folio for (as, index), charged to st's cgroup. Returns the
  // folio PINNED (caller unpins), or nullptr when the ext admission filter
  // rejected it (caller services the I/O directly). If another lane
  // populated the index concurrently, returns that folio pinned with
  // *already_present = true (its owner may differ from st).
  //
  // `nr_wanted` is how many further contiguous pages the caller's miss run
  // still wants (>= 1, counting `index`); it seeds the admit_order hook so
  // a policy can match the folio order to the stream. The inserted folio
  // may span [index, index + 2^order) — callers advance by
  // folio->nr_pages(), not by 1.
  Folio* InsertFolio(Lane& lane, AddressSpace* as, CgroupState& st,
                     uint64_t index, bool is_write, bool via_readahead,
                     DispatchBatch& batch, bool* already_present,
                     uint32_t nr_wanted = 1) CACHE_EXT_REQUIRES(st.mu);

  // Order selection for an admission at `index`: dispatch the ext policy's
  // admit_order hook, then fall back to 0 on misalignment, span conflicts
  // (a resident folio already inside the span), EOF overrun, or memcg
  // pressure (the cgroup already over its limit — allocation has outrun
  // reclaim). Counted via ext_order_fallbacks when a nonzero request is
  // demoted.
  uint32_t SelectOrder(Lane& lane, CgroupState& st, AddressSpace* as,
                       uint64_t index, bool is_write, uint32_t nr_wanted)
      CACHE_EXT_REQUIRES(st.mu);

  // Writeback (if dirty) and remove the folio at (as, index), which must be
  // owned by st's cgroup. kEvict stores a shadow entry; kInvalidate does
  // not. Re-checks under the stripe that the index still maps `expected`
  // (when non-null) and that the folio is unpinned; returns false (no
  // removal) otherwise.
  enum class RemovalKind { kEvict, kInvalidate };
  bool RemoveFolio(Lane& lane, CgroupState& st, AddressSpace* as,
                   uint64_t index, Folio* expected, RemovalKind kind,
                   bool skip_writeback = false) CACHE_EXT_REQUIRES(st.mu);

  // FADV_DONTNEED on one victim folio: invalidate it, and when it was a
  // multi-order folio only partially covered by [first, last], split — the
  // kept subpages are re-inserted as order-0 folios (counted via
  // ext_order_splits), like truncate_inode_partial_folio.
  void InvalidateForDontNeed(Lane& lane, CgroupState& st, AddressSpace* as,
                             uint64_t index, uint64_t first, uint64_t last)
      CACHE_EXT_REQUIRES(st.mu);

  // --- Reclaim -------------------------------------------------------------
  //
  // The allocation-side entry point. With background reclaim off (the
  // default / ablation) this is the historical inline loop: over the limit
  // -> DirectReclaim until under. With it on, this becomes the kernel's
  // shape: check watermarks, kick the cgroup's reclaimer lane on the
  // low-watermark crossing, and only pay DirectReclaim (bounded: back under
  // the hard limit, not down to the high watermark) when allocation outran
  // the daemon — or when the daemon is stalled/dead, which the allocator
  // watchdog detects by heartbeat and degrades around. May OOM-kill the
  // cgroup after repeated zero-progress rounds.
  void ReclaimIfNeeded(Lane& lane, CgroupState& st, DispatchBatch& batch)
      CACHE_EXT_REQUIRES(st.mu);

  // One policy dispatch round: charge the batch cost, ask the active policy
  // for up to `requested` candidates, validate + evict them, run the
  // under-proposal fallback and the two watchdogs (violation limit, ext
  // reclaim-failure streak). Returns folios actually evicted. The extracted
  // body of the old inline loop, now shared by direct and background
  // reclaim — `lane` is the allocator's clock for the former, the
  // reclaimer lane for the latter.
  uint64_t RunEvictionBatch(Lane& lane, CgroupState& st, uint64_t requested,
                            ReclaimSource source) CACHE_EXT_REQUIRES(st.mu);

  // Inline reclaim to the hard limit on the allocator's own clock, with
  // PSI some/full stall accounting. Both the inline-only ablation and the
  // emergency path of background mode land here.
  void DirectReclaim(Lane& lane, CgroupState& st, DispatchBatch& batch)
      CACHE_EXT_REQUIRES(st.mu);

  // One reclaimer-lane tick: batches toward the high watermark on the
  // control block's own virtual lane, as the reclaimer task. `batch` (may
  // be null from pool threads) is drained first so the policy sees pending
  // notifications; `now_hint_ns` pins the reclaimer clock forward to the
  // waker's (0 = none).
  void BackgroundTick(CgroupState& st, DispatchBatch* batch,
                      uint64_t now_hint_ns) CACHE_EXT_REQUIRES(st.mu);

  // Wake the cgroup's reclaimer: async condvar kick in threaded mode, a
  // synchronous virtual-lane tick otherwise (whose cost lands on the
  // reclaimer's clock, not the allocator's).
  void KickBackground(Lane& lane, CgroupState& st, DispatchBatch& batch)
      CACHE_EXT_REQUIRES(st.mu);

  // ReclaimerPool callback: pressure-check the cgroup without its lock,
  // then lock and tick.
  void BackgroundTickForToken(void* token);

  // --- Writeback -----------------------------------------------------------
  //
  // The dirtying-side entry points of the flusher subsystem (src/writeback).
  // A clean->dirty transition calls NoteDirtied on the owner's flush control
  // (gauge + dirty-file set), then balances: crossing the background
  // threshold kicks the cgroup's flusher lane; crossing the dirty threshold
  // additionally stalls the writer (balance_dirty_pages), accounted as
  // ext_dirty_throttle_ns.

  // Balance from a path holding no locks (the write hit path; `st` is the
  // dirtied folio's OWNER). Takes st.mu only when the lock-free gauge check
  // says the thresholds demand it.
  void BalanceDirty(Lane& lane, CgroupState& st);
  void BalanceDirtyLocked(Lane& lane, CgroupState& st, DispatchBatch* batch)
      CACHE_EXT_REQUIRES(st.mu);

  // One flusher-lane tick: harvest dirty folios from the cgroup's dirty
  // files (consulting the policy's should_writeback / writeback_order
  // hooks), coalesce them into contiguous per-file extents, and submit each
  // extent on the flusher's own virtual lane. `now_hint_ns` pins the
  // flusher clock forward to the waker's (0 = none, pool threads).
  void FlushTick(CgroupState& st, DispatchBatch* batch, uint64_t now_hint_ns)
      CACHE_EXT_REQUIRES(st.mu);

  // Wake the cgroup's flusher: async condvar kick in threaded mode, a
  // synchronous virtual-lane tick otherwise (cost lands on the flusher's
  // clock, not the dirtying writer's).
  void KickFlusher(Lane& lane, CgroupState& st, DispatchBatch* batch)
      CACHE_EXT_REQUIRES(st.mu);

  // Flusher pool callback: dirty-check the cgroup without its lock, then
  // lock and tick.
  void FlushTickForToken(void* token);

  // Readahead: called on a miss at `index`; returns how many extra pages to
  // prefetch after `last_requested`. Consults the ext policy's readahead
  // hook (ondemand_readahead analogue) when one is attached, then the
  // legacy per-page prefetch hook (§7 extension) for compat; every policy
  // window is clamped to max_readahead_pages (ext_readahead_clamped).
  // `nr_requested` is how many pages the current read call still wants.
  uint32_t ReadaheadWindow(Lane& lane, CgroupState& st, AddressSpace* as,
                           uint64_t index, uint32_t nr_requested)
      CACHE_EXT_REQUIRES(st.mu);
  void Prefetch(Lane& lane, AddressSpace* as, CgroupState& st,
                uint64_t first_index, uint32_t nr_pages, DispatchBatch& batch)
      CACHE_EXT_REQUIRES(st.mu);

  bool CandidateValid(CgroupState& st, Folio* folio, bool from_ext,
                      bool* violation) CACHE_EXT_REQUIRES(st.mu);

  // The lockless hit lookup (filemap_get_folio fast path): walks the
  // xarray under an ebr::Guard, TryPins the folio, then revalidates
  // mapping/index and reloads the slot (folio_try_get + the re-check in
  // filemap_get_entry). Returns the folio PINNED, or nullptr on a miss /
  // shadow entry / lost race — the caller falls back to the locked slow
  // path, which is authoritative. Bumps `reader`'s lockless counters.
  Folio* LocklessLookup(AddressSpace* as, uint64_t index,
                        CgroupState& reader);

  CgroupCacheStats SnapshotStats(CgroupState& st) CACHE_EXT_REQUIRES(st.mu);

  SimDisk* disk_;
  SsdModel* ssd_;
  PageCacheOptions options_;
  std::atomic<PageCacheTracer*> tracer_{nullptr};

  // Striped per-mapping locks (cache-line padded): the analogue of the
  // kernel's per-mapping i_pages xa_lock, striped by mapping id.
  static constexpr uint64_t kNumStripes = 64;
  std::array<Stripe, kNumStripes> stripes_;

  // Registry lock (outermost): cgroup/file creation and lookup, DeleteFile.
  // The data path never takes it — lanes reach their CgroupState through
  // MemCgroup::priv() and carry AddressSpace pointers.
  Mutex registry_mu_;
  uint64_t next_cgroup_id_ CACHE_EXT_GUARDED_BY(registry_mu_) = 1;
  uint64_t next_mapping_id_ CACHE_EXT_GUARDED_BY(registry_mu_) = 1;
  std::vector<std::unique_ptr<CgroupState>> cgroups_
      CACHE_EXT_GUARDED_BY(registry_mu_);
  std::unordered_map<std::string, std::unique_ptr<AddressSpace>> files_
      CACHE_EXT_GUARDED_BY(registry_mu_);
  std::atomic<uint64_t> total_resident_{0};
  // Real reclaimer threads (options_.reclaim.use_threads); null in the
  // single-threaded simulators. Stopped in ~PageCache before
  // ebr::Synchronize() and policy teardown.
  std::unique_ptr<reclaim::ReclaimerPool> reclaimer_pool_;
  // Real flusher threads (options_.writeback.use_threads); reuses the
  // reclaim pool machinery (threads + condvar kick + poll backstop are
  // identical — only the tick callback differs). Null in the
  // single-threaded simulators.
  std::unique_ptr<reclaim::ReclaimerPool> flusher_pool_;
};

}  // namespace cache_ext

#endif  // SRC_PAGECACHE_PAGE_CACHE_H_
