// Reclaim-policy interface between the page cache and eviction policies.
//
// EvictionCtx mirrors the paper's struct (Fig. 3): the kernel asks a policy
// for up to nr_candidates_requested folios (max 32 per batch); the policy
// fills `candidates` and sets nr_candidates_proposed. Policies only
// *propose* — the page cache validates each candidate (still resident, not
// pinned, right cgroup, and for cache_ext policies: present in the
// valid-folio registry) before actually evicting (§4.2.3).

#ifndef SRC_PAGECACHE_EVICTION_H_
#define SRC_PAGECACHE_EVICTION_H_

#include <array>
#include <cstdint>
#include <string_view>

#include "src/mm/folio.h"

namespace cache_ext {

class MemCgroup;
class AddressSpace;

inline constexpr uint64_t kMaxEvictionBatch = 32;

// The dispatchable hooks of a loaded policy, as failure domains: the
// cache_ext framework tracks violations per hook so a policy with one
// broken program degrades only that hook to default behaviour while the
// rest keep running (§4.4 hardening).
enum class PolicyHook : uint32_t {
  kEvict = 0,
  kAdmit,
  kAccess,
  kAdded,
  kRemoved,
  kPrefetch,
  kRefault,
  kReadahead,
  kOrder,
  kShouldWriteback,
  kWritebackOrder,
};
inline constexpr uint32_t kNumPolicyHooks = 11;

constexpr std::string_view PolicyHookName(PolicyHook hook) {
  switch (hook) {
    case PolicyHook::kEvict:     return "evict";
    case PolicyHook::kAdmit:     return "admit";
    case PolicyHook::kAccess:    return "access";
    case PolicyHook::kAdded:     return "added";
    case PolicyHook::kRemoved:   return "removed";
    case PolicyHook::kPrefetch:  return "prefetch";
    case PolicyHook::kRefault:   return "refault";
    case PolicyHook::kReadahead: return "readahead";
    case PolicyHook::kOrder:     return "order";
    case PolicyHook::kShouldWriteback: return "should_writeback";
    case PolicyHook::kWritebackOrder:  return "writeback_order";
  }
  return "?";
}

constexpr uint32_t PolicyHookBit(PolicyHook hook) {
  return 1u << static_cast<uint32_t>(hook);
}

// Per-hook health snapshot surfaced through CgroupCacheStats. `trips[i]` is
// how many times hook i tripped its circuit breaker (0/1 per attachment),
// `degraded_mask` the currently-degraded hooks as PolicyHookBit()s.
struct PolicyHookHealth {
  uint32_t degraded_mask = 0;
  std::array<uint64_t, kNumPolicyHooks> trips{};
  std::array<uint64_t, kNumPolicyHooks> violations{};
  std::array<uint64_t, kNumPolicyHooks> invocations{};
  bool escalate_detach = false;
};

// Hot-path observability counters a policy reports through
// ReclaimPolicy::RuntimeCounters(), surfaced as the ext_* fields of
// CgroupCacheStats. `map_lookups` is per-folio metadata resolutions that
// paid a hash probe (explicit hash maps, or the local-storage fallback
// path); `local_storage_hits` is resolutions served by a folio-embedded
// storage slot (one indexed load, see src/bpf/folio_local_storage.h);
// `evict_alloc_bytes` is cumulative heap bytes the eviction scoring path
// allocated (zero growth in steady state once the arena has warmed up).
struct PolicyRuntimeCounters {
  uint64_t map_lookups = 0;
  uint64_t local_storage_hits = 0;
  uint64_t evict_alloc_bytes = 0;
  uint64_t evict_arena_reuses = 0;
  // IR-policy backend counters (src/bpf/jit): hooks lowered to native
  // closures, cumulative ns spent lowering them, and hook dispatches that
  // fell back to the interpreter (lowering failed or was faulted out).
  uint64_t ir_jit_compiles = 0;
  uint64_t ir_jit_ns = 0;
  uint64_t ir_interp_fallbacks = 0;
};

// Who is asking for eviction candidates: an allocating task doing direct
// reclaim on its own clock, or the cgroup's background reclaimer lane (the
// kswapd analogue, src/reclaim). Policies may not care, but the cache_ext
// adapter counts dispatches per source so the async entry path is visible.
enum class ReclaimSource : uint8_t {
  kDirect = 0,
  kBackground = 1,
};

struct EvictionCtx {
  uint64_t nr_candidates_requested = 0;  // input
  uint64_t nr_candidates_proposed = 0;   // output
  ReclaimSource source = ReclaimSource::kDirect;  // input
  std::array<Folio*, kMaxEvictionBatch> candidates = {};

  // Append a candidate; returns false when the batch is full.
  bool Propose(Folio* folio) {
    if (nr_candidates_proposed >= kMaxEvictionBatch ||
        nr_candidates_proposed >= nr_candidates_requested) {
      return false;
    }
    candidates[nr_candidates_proposed++] = folio;
    return true;
  }

  bool Full() const {
    return nr_candidates_proposed >= nr_candidates_requested ||
           nr_candidates_proposed >= kMaxEvictionBatch;
  }
};

// Context handed to prefetch hooks (the FetchBPF-style extension the paper
// sketches in §7): a miss happened at `index`; the policy may override the
// kernel's readahead window.
struct PrefetchCtx {
  AddressSpace* mapping = nullptr;
  uint64_t index = 0;           // the missing page
  uint64_t prev_index = 0;      // the mapping's previous read position
  uint32_t default_window = 0;  // what the kernel's heuristic would do
  int32_t pid = 0;
  int32_t tid = 0;
};

// Context handed to admission filters (§5.6): a folio is about to be faulted
// into the page cache; the filter may reject it, in which case the I/O is
// serviced like direct I/O (no caching).
struct AdmissionCtx {
  AddressSpace* mapping = nullptr;
  uint64_t index = 0;
  MemCgroup* memcg = nullptr;
  int32_t pid = 0;
  int32_t tid = 0;
  bool is_write = false;
};

// Context handed to the readahead hook (the ondemand_readahead decision
// point): a miss happened at `index`; the policy returns the window of
// pages to read ahead (0 suppresses readahead entirely, negative defers to
// the kernel heuristic). Unlike request_prefetch — which fires once per
// missing page — this hook fires once per miss *run* and owns the whole
// window decision, so streaming policies pay one dispatch per stream step.
struct ReadaheadCtx {
  AddressSpace* mapping = nullptr;
  uint64_t index = 0;            // the missing page
  uint64_t prev_index = 0;       // the mapping's previous read position
  uint32_t default_window = 0;   // what the kernel's heuristic would do
  uint32_t nr_requested = 0;     // pages the current read call still wants
  int32_t pid = 0;
  int32_t tid = 0;
};

// Folio allocation orders a policy may request: 1, 4, or 16 pages. Order
// values outside this set are a policy violation (breaker-counted); the
// page cache additionally falls back to order 0 on misalignment or memcg
// pressure, like __filemap_get_folio dropping to smaller orders when
// allocation fails.
inline constexpr uint32_t kMaxFolioOrder = 4;
constexpr bool ValidFolioOrder(uint32_t order) {
  return order == 0 || order == 2 || order == 4;
}

// Context handed to the admit_order hook: an admission at `index` is about
// to allocate a folio; the policy picks the allocation order (0 | 2 | 4).
struct AdmitOrderCtx {
  AddressSpace* mapping = nullptr;
  uint64_t index = 0;
  MemCgroup* memcg = nullptr;
  uint32_t nr_requested = 0;  // contiguous pages the current miss run wants
  int32_t pid = 0;
  int32_t tid = 0;
  bool is_write = false;
};

// Context handed to the writeback hooks: the flusher harvested a dirty
// folio at `index` and asks the policy (a) whether to write it back this
// tick at all (`should_writeback` — false defers the folio to a later
// tick, e.g. an LSM policy holding back a half-built SSTable block) and
// (b) what key to sort the flush batch by (`writeback_order` — smaller
// keys flush first; the default is file offset order, which maximizes
// extent coalescing).
struct WritebackCtx {
  AddressSpace* mapping = nullptr;
  uint64_t index = 0;          // folio's first page index
  uint32_t nr_pages = 0;       // folio span (2^order)
  uint64_t nr_dirty = 0;       // cgroup dirty gauge at harvest time
  MemCgroup* memcg = nullptr;
  bool for_sync = false;       // harvested by fsync, not the background lane
};

// A page-cache eviction policy. The page cache invokes the hooks on cache
// events; EvictFolios is called under memory pressure.
//
// Two kinds of implementations exist:
//  - native/base policies (default two-list LRU, native MGLRU), which link
//    folios through Folio::lru;
//  - the cache_ext adapter, which dispatches to loaded "eBPF" programs and
//    keeps folio linkage in its own registry.
class ReclaimPolicy {
 public:
  virtual ~ReclaimPolicy() = default;

  virtual std::string_view name() const = 0;

  // Folio was inserted into the page cache (after charging).
  virtual void FolioAdded(Folio* folio) = 0;
  // Folio was found in the cache by a read/write.
  virtual void FolioAccessed(Folio* folio) = 0;
  // Folio left the page cache — via eviction *or* in circumvention of the
  // normal eviction path (file deleted, fadvise(DONTNEED), truncation). The
  // policy must drop any metadata it holds for the folio (§4.2.1).
  virtual void FolioRemoved(Folio* folio) = 0;
  // Propose eviction candidates for `memcg` into ctx.
  virtual void EvictFolios(EvictionCtx* ctx, MemCgroup* memcg) = 0;

  // Admission filter hook (§5.6); default admits everything.
  virtual bool AdmitFolio(const AdmissionCtx& ctx) {
    (void)ctx;
    return true;
  }

  // The folio being inserted refaulted (a shadow entry was found). `tier` is
  // the MGLRU tier recorded at eviction time; policies that feed refault
  // statistics into their controller (MGLRU's PID) override this.
  virtual void FolioRefaulted(Folio* folio, uint32_t tier) {
    (void)folio;
    (void)tier;
  }

  // Tier to record in the shadow entry when `folio` is evicted (0 for
  // policies without tiers).
  virtual uint32_t EvictionTier(const Folio* folio) const {
    (void)folio;
    return 0;
  }

  // Prefetch hook (FetchBPF-style extension, §7): return the number of
  // pages to prefetch after this miss, or a negative value to keep the
  // kernel's readahead decision. The page cache clamps the answer.
  virtual int64_t RequestPrefetch(const PrefetchCtx& ctx) {
    (void)ctx;
    return -1;
  }

  // Readahead hook: the per-stream window decision (ondemand_readahead
  // analogue). Negative defers to the kernel heuristic (which may in turn
  // consult RequestPrefetch for compat); 0 suppresses readahead. The page
  // cache clamps the answer to max_readahead_pages.
  virtual int64_t RequestReadahead(const ReadaheadCtx& ctx) {
    (void)ctx;
    return -1;
  }

  // Folio allocation order for an admission (0 | 2 | 4). The page cache
  // falls back to 0 on misalignment, span conflicts, or memcg pressure.
  virtual uint32_t AdmitOrder(const AdmitOrderCtx& ctx) {
    (void)ctx;
    return 0;
  }

  // Writeback admission: may the flusher write this dirty folio back this
  // tick? Returning false defers it to a later tick; fsync-driven harvests
  // (ctx.for_sync) ignore a veto — durability beats policy intent, and the
  // flusher re-offers deferred folios every tick so a stuck policy cannot
  // pin dirty data forever (the breaker degrades the hook instead).
  virtual bool ShouldWriteback(const WritebackCtx& ctx) {
    (void)ctx;
    return true;
  }

  // Flush-ordering key for a harvested dirty folio: the flusher sorts each
  // batch by ascending key before extent coalescing, so a policy can flush
  // SSTable blocks in key order or group writes by stream. Negative defers
  // to the default (file offset order).
  virtual int64_t WritebackOrder(const WritebackCtx& ctx) {
    (void)ctx;
    return -1;
  }

  // Called by the page cache on every candidate this policy proposed,
  // BEFORE the pointer is dereferenced. The cache_ext adapter overrides this
  // with the valid-folio registry membership check (§4.4); native policies
  // produce trusted pointers from their own lists.
  virtual bool ValidateCandidate(Folio* folio) { return folio != nullptr; }

  // Per-hook circuit-breaker health. Native policies are trusted and report
  // nothing; the cache_ext adapter reports its breaker state.
  virtual PolicyHookHealth HookHealth() const { return {}; }

  // True when the policy's own containment has escalated (multiple hooks
  // tripped, or a persistently high violation rate) and the page cache
  // should stop consulting it entirely — the watchdog finishes the job.
  virtual bool WantsDetach() const { return false; }

  // Hot-path counters (map probes vs local-storage hits, eviction-path
  // allocations). Native policies keep no per-folio maps and report
  // nothing; the cache_ext adapter aggregates its maps and arena.
  virtual PolicyRuntimeCounters RuntimeCounters() const { return {}; }

  // Approximate CPU cost of one hook invocation, charged to the acting
  // lane's virtual clock (see src/sim/cpu_cost.h).
  virtual uint64_t PerEventCostNs() const { return 90; }
};

}  // namespace cache_ext

#endif  // SRC_PAGECACHE_EVICTION_H_
