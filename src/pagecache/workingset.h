// Workingset shadow entries and refault detection (§2.1).
//
// When a folio is evicted, a shadow entry replaces it in the mapping's
// xarray, snapshotting the cgroup's "nonresident age" clock (plus the MGLRU
// tier for the native MGLRU policy). When the page is faulted back in, the
// refault distance (evictions that happened in between) tells us whether the
// page would have been a hit with a slightly larger cache; if the distance is
// within the cgroup's workingset, the page is activated directly, mitigating
// thrashing. This mirrors mm/workingset.c.

#ifndef SRC_PAGECACHE_WORKINGSET_H_
#define SRC_PAGECACHE_WORKINGSET_H_

#include <cstdint>

#include "src/cgroup/memcg.h"
#include "src/mm/xarray.h"

namespace cache_ext {

// Shadow entry payload layout (fits the 63-bit XEntry value):
//   bits [0, 47]  : nonresident-age snapshot (wraps; distances are modular)
//   bits [48, 51] : MGLRU tier the folio was evicted from
//   bits [52, 59] : low bits of the owning cgroup id (sanity filter)
struct ShadowEntry {
  uint64_t age = 0;
  uint32_t tier = 0;
  uint64_t memcg_low = 0;

  static constexpr uint64_t kAgeMask = (1ULL << 48) - 1;

  uint64_t Pack() const {
    return (age & kAgeMask) | (static_cast<uint64_t>(tier & 0xF) << 48) |
           ((memcg_low & 0xFF) << 52);
  }
  static ShadowEntry Unpack(uint64_t payload) {
    ShadowEntry s;
    s.age = payload & kAgeMask;
    s.tier = static_cast<uint32_t>((payload >> 48) & 0xF);
    s.memcg_low = (payload >> 52) & 0xFF;
    return s;
  }
};

// Builds the shadow entry to store when `memcg` evicts a folio that belonged
// to MGLRU tier `tier` (0 for non-MGLRU policies). Advances the cgroup's
// nonresident-age clock.
XEntry WorkingsetEviction(MemCgroup* memcg, uint32_t tier);

struct RefaultDecision {
  bool is_refault = false;  // shadow belonged to this cgroup and was sane
  bool activate = false;    // refault distance within the workingset
  uint32_t tier = 0;        // tier recorded at eviction (for MGLRU feedback)
  uint64_t distance = 0;
};

// Interprets a shadow entry found where a folio is being inserted.
// `workingset_size` is the number of pages the cgroup can hold (its limit).
RefaultDecision WorkingsetRefault(MemCgroup* memcg, XEntry shadow,
                                  uint64_t workingset_size);

}  // namespace cache_ext

#endif  // SRC_PAGECACHE_WORKINGSET_H_
