#include "src/pagecache/mglru.h"

#include <bit>

#include "src/util/logging.h"

namespace cache_ext {

void MglruPidController::Decay() {
  for (uint32_t t = 0; t < kTiers; ++t) {
    evicted_[t] /= 2;
    refaulted_[t] /= 2;
  }
}

int32_t MglruPidController::Threshold() const {
  // Tier t is protected when refaulted[t]/evicted[t] > refaulted[0]/
  // evicted[0], compared cross-multiplied to stay in integers (no floats, as
  // in the kernel). The threshold is the highest tier that is NOT protected;
  // protection must be contiguous from the top (protecting tier 2 but not 3
  // would be meaningless since tier 3 is at least as hot).
  // Degenerate-thrash detection (see header): re-used folios dominate the
  // evictions and almost all of them refault.
  uint64_t total_evicted = evicted_[0];
  uint64_t upper_evicted = 0;
  uint64_t upper_refaulted = 0;
  for (uint32_t t = 1; t < kTiers; ++t) {
    total_evicted += evicted_[t];
    upper_evicted += evicted_[t];
    upper_refaulted += refaulted_[t];
  }
  if (upper_refaulted >= 8 * kMinEvidence &&
      upper_evicted * 2 > total_evicted &&
      upper_refaulted * kThrashDen > upper_evicted * kThrashNum) {
    return -1;
  }

  const uint64_t base_refaulted = refaulted_[0];
  const uint64_t base_evicted = evicted_[0] + 1;
  int32_t threshold = kTiers - 1;
  for (uint32_t t = 1; t < kTiers; ++t) {
    const uint64_t tier_refaulted = refaulted_[t];
    const uint64_t tier_evicted = evicted_[t] + 1;
    // Statistical-significance gate: a couple of stray refaults must not
    // flip the whole cgroup into protection (which can starve reclaim); and
    // a protection-gain factor: a tier is only protected when it refaults
    // substantially (2x) more than the base tier, so mild skew does not put
    // the whole cache under protection.
    if (tier_refaulted >= kMinEvidence &&
        tier_refaulted * base_evicted * kProtectionGainDen >
            kProtectionGainNum * base_refaulted * tier_evicted) {
      // Tier t refaults proportionally more than tier 0: protect it and
      // everything above it.
      threshold = static_cast<int32_t>(t) - 1;
      break;
    }
  }
  return threshold;
}

uint32_t MglruPolicy::TierOf(uint32_t accesses) {
  // Tier 0 covers 0-1 accesses: the access that populated the folio does
  // not protect it (the inactive-list role). Beyond that, logarithmic
  // buckets: 2-3 -> tier 1, 4-7 -> tier 2, >= 8 -> tier 3.
  if (accesses <= 1) {
    return 0;
  }
  const uint32_t width = static_cast<uint32_t>(std::bit_width(accesses)) - 1;
  return width < kTiers ? width : kTiers - 1;
}

void MglruPolicy::FolioAdded(Folio* folio) {
  folio->accesses = 0;
  if (folio->TestFlag(kFolioWorkingset)) {
    // Refaulting pages join the youngest generation (thrashing protection).
    folio->gen = static_cast<uint32_t>(max_seq_);
    if (folio->memcg != nullptr) {
      folio->memcg->stat_activations.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    // New file folios join the oldest generation, acting as the preliminary
    // filter the inactive list provides in the default policy.
    folio->gen = static_cast<uint32_t>(min_seq_);
  }
  GenFor(folio->gen).PushBack(folio);
}

void MglruPolicy::FolioAccessed(Folio* folio) {
  if (folio->TestFlag(kFolioDropBehind)) {
    return;
  }
  if (folio->accesses < UINT32_MAX) {
    ++folio->accesses;
  }
}

void MglruPolicy::FolioRemoved(Folio* folio) {
  if (folio->lru.IsLinked()) {
    GenFor(folio->gen).Remove(folio);
  }
}

void MglruPolicy::FolioRefaulted(Folio* folio, uint32_t tier) {
  (void)folio;
  pid_.RecordRefault(tier);
}

uint32_t MglruPolicy::EvictionTier(const Folio* folio) const {
  return TierOf(folio->accesses);
}

void MglruPolicy::TryAge() {
  if (max_seq_ - min_seq_ + 1 >= kMaxGens) {
    return;  // circular buffer full; must evict/retire first
  }
  ++max_seq_;
  pid_.Decay();
}

void MglruPolicy::RetireEmptyGens() {
  while (min_seq_ < max_seq_ && GenFor(min_seq_).empty()) {
    ++min_seq_;
  }
}

void MglruPolicy::EvictFolios(EvictionCtx* ctx, MemCgroup* memcg) {
  (void)memcg;
  RetireEmptyGens();
  // Keep at least kMinGens generations so there is always a "young" side.
  while (max_seq_ - min_seq_ + 1 < kMinGens) {
    TryAge();
  }

  const int32_t threshold = pid_.Threshold();
  // Scan budget per invocation; a reclaim round that spends its entire
  // budget promoting protected folios makes no progress — mirroring the
  // kernel, the caller (memcg reclaim) retries and eventually declares OOM.
  uint64_t scan_budget = 8 * kMaxEvictionBatch;

  // Walk generations oldest to youngest: if the oldest generation cannot
  // fill the batch (pinned or protected folios), continue into younger
  // ones rather than stalling.
  for (uint64_t seq = min_seq_;
       seq <= max_seq_ && !ctx->Full() && scan_budget > 0; ++seq) {
    GenList& gen = GenFor(seq);
    uint64_t to_scan = gen.size();
    if (to_scan > scan_budget) {
      to_scan = scan_budget;
    }
    scan_budget -= to_scan;
    // Each folio is scanned at most once per generation pass: the front is
    // always either promoted out of the list or rotated to the back.
    for (; to_scan > 0 && !ctx->Full(); --to_scan) {
      Folio* folio = gen.Front();
      if (folio->pinned()) {
        gen.MoveToBack(folio);
      } else if (static_cast<int32_t>(TierOf(folio->accesses)) > threshold) {
        // Protected: promote to the next generation, keeping the frequency
        // counter (tiers bucket long-term access frequency, §5.3);
        // protection fades when the PID controller's refault evidence
        // decays, not per promotion.
        gen.Remove(folio);
        const uint64_t target = seq + 1 <= max_seq_ ? seq + 1 : max_seq_;
        folio->gen = static_cast<uint32_t>(target);
        folio->SetFlag(kFolioWorkingset);
        GenFor(target).PushBack(folio);
      } else {
        ctx->Propose(folio);
        gen.MoveToBack(folio);
        pid_.RecordEviction(TierOf(folio->accesses));
      }
    }
  }

  RetireEmptyGens();
  if (!ctx->Full()) {
    // Fruitless (or partial) round: age if there is room so the refault
    // statistics decay and new generations form; the caller retries.
    TryAge();
  }
}

}  // namespace cache_ext
