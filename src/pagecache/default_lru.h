// The kernel's default eviction policy: a two-list LRU approximation (Fig. 1).
//
// New folios enter the tail of the inactive list; a second access promotes
// them to the active list; eviction pops from the head of the inactive list,
// demoting from the active list when the lists need rebalancing. Matches the
// Linux v6.6 behaviour the paper describes, including the detail that
// referenced active folios are demoted (not rotated) during balancing.

#ifndef SRC_PAGECACHE_DEFAULT_LRU_H_
#define SRC_PAGECACHE_DEFAULT_LRU_H_

#include <string_view>

#include "src/cgroup/memcg.h"
#include "src/pagecache/eviction.h"
#include "src/util/intrusive_list.h"

namespace cache_ext {

class DefaultLruPolicy : public ReclaimPolicy {
 public:
  explicit DefaultLruPolicy(uint64_t per_event_cost_ns = 90)
      : per_event_cost_ns_(per_event_cost_ns) {}

  std::string_view name() const override { return "default_lru"; }

  void FolioAdded(Folio* folio) override;
  void FolioAccessed(Folio* folio) override;
  void FolioRemoved(Folio* folio) override;
  void EvictFolios(EvictionCtx* ctx, MemCgroup* memcg) override;

  uint64_t PerEventCostNs() const override { return per_event_cost_ns_; }

  uint64_t active_size() const { return active_.size(); }
  uint64_t inactive_size() const { return inactive_.size(); }

 private:
  using LruList = IntrusiveList<Folio, &Folio::lru>;

  void Activate(Folio* folio);
  // Demote from the head of the active list until the inactive list holds at
  // least a third of the folios (approximation of inactive_is_low()).
  void BalanceLists();

  LruList active_;
  LruList inactive_;
  uint64_t per_event_cost_ns_;
};

}  // namespace cache_ext

#endif  // SRC_PAGECACHE_DEFAULT_LRU_H_
