#include "src/pagecache/workingset.h"

namespace cache_ext {

XEntry WorkingsetEviction(MemCgroup* memcg, uint32_t tier) {
  ShadowEntry shadow;
  // Snapshot the clock *after* this eviction (kernel: inc then pack).
  shadow.age = (memcg->AdvanceNonresidentAge() + 1) & ShadowEntry::kAgeMask;
  shadow.tier = tier;
  shadow.memcg_low = memcg->id() & 0xFF;
  return XEntry::FromValue(shadow.Pack());
}

RefaultDecision WorkingsetRefault(MemCgroup* memcg, XEntry shadow,
                                  uint64_t workingset_size) {
  RefaultDecision decision;
  if (!shadow.IsValue()) {
    return decision;
  }
  const ShadowEntry s = ShadowEntry::Unpack(shadow.AsValue());
  if (s.memcg_low != (memcg->id() & 0xFF)) {
    // Shadow from another cgroup (file shared across cgroups after the owner
    // changed); ignore it rather than mis-activate.
    return decision;
  }
  decision.is_refault = true;
  decision.tier = s.tier;
  const uint64_t now = memcg->nonresident_age() & ShadowEntry::kAgeMask;
  decision.distance = (now - s.age) & ShadowEntry::kAgeMask;
  // The kernel activates when refault distance <= workingset size: the page
  // was evicted "recently enough" that a cache of this size should have kept
  // it (mm/workingset.c::workingset_test_recent).
  decision.activate = decision.distance <= workingset_size;
  memcg->stat_refaults.fetch_add(1, std::memory_order_relaxed);
  return decision;
}

}  // namespace cache_ext
