#include "src/pagecache/default_lru.h"

namespace cache_ext {

void DefaultLruPolicy::FolioAdded(Folio* folio) {
  if (folio->TestFlag(kFolioWorkingset)) {
    // Refaulting within the workingset: insert directly into the active list
    // (§2.1, thrashing mitigation).
    folio->SetFlag(kFolioActive);
    active_.PushBack(folio);
    if (folio->memcg != nullptr) {
      folio->memcg->stat_activations.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  folio->ClearFlag(kFolioActive);
  inactive_.PushBack(folio);
}

void DefaultLruPolicy::Activate(Folio* folio) {
  inactive_.Remove(folio);
  folio->SetFlag(kFolioActive);
  active_.PushBack(folio);
  if (folio->memcg != nullptr) {
    folio->memcg->stat_activations.fetch_add(1, std::memory_order_relaxed);
  }
}

void DefaultLruPolicy::FolioAccessed(Folio* folio) {
  if (folio->TestFlag(kFolioDropBehind)) {
    // FADV_NOREUSE semantics: the access does not contribute to promotion.
    return;
  }
  if (!folio->lru.IsLinked()) {
    // The folio's own FolioAdded notification is still buffered in another
    // lane's dispatch ring: it is already visible in the xarray (so
    // cross-cgroup readers can hit it first), but not yet on any list.
    // Record the reference only; the pending FolioAdded places it. Kernel
    // analogue: folio_mark_accessed() on a folio still sitting in a per-CPU
    // folio batch before lru_add drains it to the real LRU.
    folio->SetFlag(kFolioReferenced);
    return;
  }
  if (!folio->TestFlag(kFolioActive)) {
    if (folio->TestFlag(kFolioReferenced)) {
      // Second access while inactive: promote (folio_mark_accessed()).
      folio->ClearFlag(kFolioReferenced);
      Activate(folio);
    } else {
      folio->SetFlag(kFolioReferenced);
    }
  } else {
    folio->SetFlag(kFolioReferenced);
  }
}

void DefaultLruPolicy::FolioRemoved(Folio* folio) {
  if (!folio->lru.IsLinked()) {
    return;
  }
  if (folio->TestFlag(kFolioActive)) {
    active_.Remove(folio);
    folio->ClearFlag(kFolioActive);
  } else {
    inactive_.Remove(folio);
  }
}

void DefaultLruPolicy::BalanceLists() {
  // inactive_is_low(): keep the inactive list at least ~1/3 of the total so
  // the preliminary filter has room to observe second accesses.
  const uint64_t total = active_.size() + inactive_.size();
  uint64_t demoted = 0;
  while (inactive_.size() < total / 3 && !active_.empty() &&
         demoted < 2 * kMaxEvictionBatch) {
    Folio* folio = active_.PopFront();
    // Note: referenced active folios are demoted rather than given another
    // trip around the active list (§2.1).
    folio->ClearFlag(kFolioActive);
    folio->ClearFlag(kFolioReferenced);
    inactive_.PushBack(folio);
    ++demoted;
  }
}

void DefaultLruPolicy::EvictFolios(EvictionCtx* ctx, MemCgroup* memcg) {
  (void)memcg;
  BalanceLists();

  // Scan the inactive list head. Pinned folios are rotated; everything else
  // is proposed — including referenced folios: like the kernel's
  // folio_check_references(), a single reference on an unmapped file folio
  // does not earn a second trip around the inactive list (promotion happens
  // through mark_accessed at access time instead). Each folio is visited at
  // most once per round: we always take the front and rotate it to the
  // back.
  uint64_t to_scan = inactive_.size();
  const uint64_t scan_limit = 8 * kMaxEvictionBatch;
  if (to_scan > scan_limit) {
    to_scan = scan_limit;
  }
  for (; to_scan > 0 && !ctx->Full(); --to_scan) {
    Folio* folio = inactive_.Front();
    if (folio->pinned()) {
      inactive_.MoveToBack(folio);
    } else {
      folio->TestClearReferenced();
      ctx->Propose(folio);
      // Rotate proposed folios to the tail so a failed eviction (e.g. the
      // folio got pinned concurrently) doesn't stall the next scan.
      inactive_.MoveToBack(folio);
    }
  }

  // If the inactive list couldn't satisfy the request, evict from the head
  // of the active list (shrink_active_list under heavy pressure).
  uint64_t active_scan = active_.size();
  for (; active_scan > 0 && !ctx->Full(); --active_scan) {
    Folio* folio = active_.Front();
    if (folio->pinned()) {
      active_.MoveToBack(folio);
    } else {
      ctx->Propose(folio);
      active_.MoveToBack(folio);
    }
  }
}

}  // namespace cache_ext
