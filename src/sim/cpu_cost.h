// CPU cost model for virtual time.
//
// Device time dominates macro results, but several of the paper's findings
// are CPU-side (Table 1 userspace-dispatch overhead, Table 4 no-op overhead,
// FIFO beating MGLRU "likely due to its low overhead"). Each page-cache
// operation charges the acting lane a CPU cost from this model. Defaults are
// calibrated against real microbenchmarks of our implementations (see
// bench/bench_micro_framework.cc); tests override them for determinism.

#ifndef SRC_SIM_CPU_COST_H_
#define SRC_SIM_CPU_COST_H_

#include <cstdint>

namespace cache_ext {

struct CpuCostModel {
  // Core page cache paths (per 4 KiB page).
  uint64_t hit_ns = 350;             // lookup + mark_accessed + copy-out
  uint64_t miss_setup_ns = 1800;     // folio alloc + xarray insert + charge
  uint64_t write_page_ns = 500;      // dirty a cached page
  uint64_t writeback_page_ns = 900;  // CPU side of flushing a dirty page
  uint64_t reclaim_batch_ns = 2500;  // shrink invocation fixed cost
  uint64_t reclaim_per_folio_ns = 350;

  // Base (native) policy bookkeeping per event.
  uint64_t lru_event_ns = 90;     // default two-list LRU add/access/remove
  uint64_t mglru_event_ns = 220;  // native MGLRU (tier math, gen lookup)

  // cache_ext framework extras.
  uint64_t hook_dispatch_ns = 70;    // struct_ops indirection + guards
  uint64_t registry_op_ns = 60;      // valid-folio registry insert/lookup/del
  uint64_t ringbuf_event_ns = 400;   // reserve+commit+wakeup amortized
                                     // (Table 1 userspace-dispatch model)
  uint64_t per_op_syscall_ns = 600;  // read()/pread() syscall + VFS overhead
};

}  // namespace cache_ext

#endif  // SRC_SIM_CPU_COST_H_
