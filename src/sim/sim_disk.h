// Simulated block storage: a flat namespace of files holding real bytes.
//
// This is the "device" under the simulated page cache. Data written through
// the page cache lands here; cache misses copy data out of here. Timing is
// handled separately by SsdModel — SimDisk is purely the persistent contents
// plus I/O statistics, so tests can assert on data integrity independent of
// the timing model.

#ifndef SRC_SIM_SIM_DISK_H_
#define SRC_SIM_SIM_DISK_H_

#include <cstdint>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/util/status.h"

namespace cache_ext {

using FileId = uint64_t;
inline constexpr FileId kInvalidFileId = 0;

class SimDisk {
 public:
  SimDisk() = default;
  SimDisk(const SimDisk&) = delete;
  SimDisk& operator=(const SimDisk&) = delete;

  // Creates an empty file; fails if the name exists.
  Expected<FileId> Create(std::string_view name);
  // Opens an existing file by name.
  Expected<FileId> Open(std::string_view name) const;
  Status Delete(std::string_view name);
  bool Exists(std::string_view name) const;

  // Size in bytes; 0 for unknown ids.
  uint64_t SizeOf(FileId id) const;

  // Raw device I/O (used by the page cache's miss and writeback paths; file
  // data is readable even beyond written extents, as zeroes, to simplify
  // page-granular access).
  Status ReadAt(FileId id, uint64_t offset, std::span<uint8_t> out) const;
  Status WriteAt(FileId id, uint64_t offset, std::span<const uint8_t> data);
  // Extends the file to at least `size` bytes (zero fill).
  Status Truncate(FileId id, uint64_t size);

  std::vector<std::string> ListFiles() const;
  uint64_t TotalBytes() const;

 private:
  struct File {
    std::string name;
    std::vector<uint8_t> data;
  };

  const File* FindFile(FileId id) const;
  File* FindFile(FileId id);

  // Reader/writer lock: the page-cache hit path never touches SimDisk, but
  // concurrent misses all copy canonical bytes out via ReadAt — those take
  // the lock shared so miss-heavy lanes don't serialize on the "device".
  mutable std::shared_mutex mu_;
  FileId next_id_ = 1;
  std::unordered_map<FileId, File> files_;
  std::unordered_map<std::string, FileId> by_name_;
};

}  // namespace cache_ext

#endif  // SRC_SIM_SIM_DISK_H_
