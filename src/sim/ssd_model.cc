#include "src/sim/ssd_model.h"

#include <algorithm>

#include "src/fault/fault_injector.h"
#include "src/util/logging.h"

namespace cache_ext {

SsdModel::SsdModel(const SsdModelOptions& options) : options_(options) {
  CHECK_GT(options_.channels, 0);
  CHECK_GT(options_.bytes_per_us, 0u);
  channel_free_at_.assign(static_cast<size_t>(options_.channels), 0);
}

uint64_t SsdModel::Submit(uint64_t now_ns, uint64_t bytes,
                          uint64_t base_latency_ns) {
  // Injected device pathologies. A latency spike multiplies this request's
  // base latency (GC pause / internal retry); degradation divides the
  // transfer rate for every request while armed (a device limping along at
  // reduced bandwidth). Both only stretch the timeline — completion always
  // arrives, so callers need no new error handling.
  uint64_t magnitude = 0;
  if (fault::InjectFault(fault::points::kSsdLatencySpike, &magnitude)) {
    base_latency_ns *= magnitude != 0 ? magnitude : 20;
  }
  uint64_t slowdown = 1;
  uint64_t degrade = 0;
  if (fault::InjectFault(fault::points::kSsdDegrade, &degrade)) {
    slowdown = degrade != 0 ? degrade : 4;
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Channel choice: among channels idle at `now_ns`, reuse the one freed
  // most recently (best fit) rather than the globally least-loaded one.
  // For time-ordered arrivals the completion times are identical either way
  // (an idle channel serves at `now_ns`; with none idle, both pick the
  // earliest free). The difference matters when concurrent lanes run ahead
  // of each other in virtual time: least-loaded would rotate a fast lane's
  // bookings across ALL channels, dragging every channel's free time up to
  // that lane's clock so a lane whose clock is behind finds the whole
  // device booked "in its future" and stalls on it. Best fit keeps the
  // other channels free in the past, preserving the device's idle capacity
  // for requests with earlier timestamps.
  size_t pick = channel_free_at_.size();
  for (size_t i = 0; i < channel_free_at_.size(); ++i) {
    if (channel_free_at_[i] <= now_ns &&
        (pick == channel_free_at_.size() ||
         channel_free_at_[i] > channel_free_at_[pick])) {
      pick = i;
    }
  }
  uint64_t start = now_ns;
  if (pick == channel_free_at_.size()) {
    // All channels busy past `now_ns`: queue on the earliest to free.
    auto it =
        std::min_element(channel_free_at_.begin(), channel_free_at_.end());
    pick = static_cast<size_t>(it - channel_free_at_.begin());
    start = *it;
  }
  const uint64_t transfer_ns = bytes * 1000 * slowdown / options_.bytes_per_us;
  const uint64_t completion = start + base_latency_ns + transfer_ns;
  channel_free_at_[pick] = completion;
  return completion;
}

uint64_t SsdModel::SubmitRead(uint64_t now_ns, uint64_t bytes) {
  const uint64_t done = Submit(now_ns, bytes, options_.read_latency_ns);
  std::lock_guard<std::mutex> lock(mu_);
  ++total_reads_;
  total_read_bytes_ += bytes;
  return done;
}

uint64_t SsdModel::SubmitWrite(uint64_t now_ns, uint64_t bytes) {
  const uint64_t done = Submit(now_ns, bytes, options_.write_latency_ns);
  std::lock_guard<std::mutex> lock(mu_);
  ++total_writes_;
  total_write_bytes_ += bytes;
  return done;
}

uint64_t SsdModel::FrontierNs() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t frontier = 0;
  for (const uint64_t t : channel_free_at_) {
    frontier = std::max(frontier, t);
  }
  return frontier;
}

void SsdModel::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  total_reads_ = 0;
  total_writes_ = 0;
  total_read_bytes_ = 0;
  total_write_bytes_ = 0;
}

}  // namespace cache_ext
