#include "src/sim/ssd_model.h"

#include <algorithm>

#include "src/fault/fault_injector.h"
#include "src/util/logging.h"

namespace cache_ext {

SsdModel::SsdModel(const SsdModelOptions& options) : options_(options) {
  CHECK_GT(options_.channels, 0);
  CHECK_GT(options_.bytes_per_us, 0u);
  channel_free_at_.assign(static_cast<size_t>(options_.channels), 0);
}

uint64_t SsdModel::Submit(uint64_t now_ns, uint64_t bytes,
                          uint64_t base_latency_ns) {
  // Injected device pathologies. A latency spike multiplies this request's
  // base latency (GC pause / internal retry); degradation divides the
  // transfer rate for every request while armed (a device limping along at
  // reduced bandwidth). Both only stretch the timeline — completion always
  // arrives, so callers need no new error handling.
  uint64_t magnitude = 0;
  if (fault::InjectFault(fault::points::kSsdLatencySpike, &magnitude)) {
    base_latency_ns *= magnitude != 0 ? magnitude : 20;
  }
  uint64_t slowdown = 1;
  uint64_t degrade = 0;
  if (fault::InjectFault(fault::points::kSsdDegrade, &degrade)) {
    slowdown = degrade != 0 ? degrade : 4;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::min_element(channel_free_at_.begin(), channel_free_at_.end());
  const uint64_t start = std::max(now_ns, *it);
  const uint64_t transfer_ns = bytes * 1000 * slowdown / options_.bytes_per_us;
  const uint64_t completion = start + base_latency_ns + transfer_ns;
  *it = completion;
  return completion;
}

uint64_t SsdModel::SubmitRead(uint64_t now_ns, uint64_t bytes) {
  const uint64_t done = Submit(now_ns, bytes, options_.read_latency_ns);
  std::lock_guard<std::mutex> lock(mu_);
  ++total_reads_;
  total_read_bytes_ += bytes;
  return done;
}

uint64_t SsdModel::SubmitWrite(uint64_t now_ns, uint64_t bytes) {
  const uint64_t done = Submit(now_ns, bytes, options_.write_latency_ns);
  std::lock_guard<std::mutex> lock(mu_);
  ++total_writes_;
  total_write_bytes_ += bytes;
  return done;
}

uint64_t SsdModel::FrontierNs() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t frontier = 0;
  for (const uint64_t t : channel_free_at_) {
    frontier = std::max(frontier, t);
  }
  return frontier;
}

void SsdModel::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  total_reads_ = 0;
  total_writes_ = 0;
  total_read_bytes_ = 0;
  total_write_bytes_ = 0;
}

}  // namespace cache_ext
