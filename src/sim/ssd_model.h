// SSD timing model.
//
// Models an NVMe-class device as a set of independent channels, each serving
// requests FIFO. A request submitted at time T by a lane starts service when
// the least-loaded channel frees up and completes after a fixed per-request
// latency plus a size-proportional transfer time. This captures the two
// effects the paper's evaluation depends on: (1) misses are orders of
// magnitude more expensive than hits, and (2) co-located workloads contend
// for device bandwidth (Fig. 11's "reduced disk contention" observation).

#ifndef SRC_SIM_SSD_MODEL_H_
#define SRC_SIM_SSD_MODEL_H_

#include <cstdint>
#include <mutex>
#include <vector>

namespace cache_ext {

struct SsdModelOptions {
  // Enterprise-SSD-like defaults: ~80 us random read, deeper write latency,
  // 8 parallel channels, ~2 GB/s aggregate transfer.
  int channels = 8;
  uint64_t read_latency_ns = 80 * 1000;
  uint64_t write_latency_ns = 30 * 1000;
  // Per-channel transfer rate in bytes per microsecond (~250 MB/s each).
  uint64_t bytes_per_us = 250;
};

class SsdModel {
 public:
  explicit SsdModel(const SsdModelOptions& options = {});

  // Submit a read/write of `bytes` at lane-time `now_ns`; returns completion
  // time. Thread-safe (though the simulation harness is single-threaded,
  // library users may not be).
  uint64_t SubmitRead(uint64_t now_ns, uint64_t bytes);
  uint64_t SubmitWrite(uint64_t now_ns, uint64_t bytes);

  uint64_t total_reads() const { return total_reads_; }
  uint64_t total_writes() const { return total_writes_; }
  uint64_t total_read_bytes() const { return total_read_bytes_; }
  uint64_t total_write_bytes() const { return total_write_bytes_; }
  uint64_t total_io_bytes() const {
    return total_read_bytes_ + total_write_bytes_;
  }

  void ResetStats();

  // Latest completion time across channels: the device's virtual-time
  // frontier. Back-to-back experiments against one device should start
  // their lanes here so queueing from the previous run is not billed to
  // the next one.
  uint64_t FrontierNs() const;

 private:
  uint64_t Submit(uint64_t now_ns, uint64_t bytes, uint64_t base_latency_ns);

  SsdModelOptions options_;
  mutable std::mutex mu_;
  std::vector<uint64_t> channel_free_at_;
  uint64_t total_reads_ = 0;
  uint64_t total_writes_ = 0;
  uint64_t total_read_bytes_ = 0;
  uint64_t total_write_bytes_ = 0;
};

}  // namespace cache_ext

#endif  // SRC_SIM_SSD_MODEL_H_
