#include "src/sim/sim_disk.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <shared_mutex>

#include "src/fault/fault_injector.h"

namespace cache_ext {

Expected<FileId> SimDisk::Create(std::string_view name) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  std::string key(name);
  if (by_name_.count(key) != 0) {
    return AlreadyExists("file exists: " + key);
  }
  const FileId id = next_id_++;
  files_[id] = File{key, {}};
  by_name_[key] = id;
  return id;
}

Expected<FileId> SimDisk::Open(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) {
    return NotFound("no such file: " + std::string(name));
  }
  return it->second;
}

Status SimDisk::Delete(std::string_view name) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) {
    return NotFound("no such file: " + std::string(name));
  }
  files_.erase(it->second);
  by_name_.erase(it);
  return OkStatus();
}

bool SimDisk::Exists(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return by_name_.count(std::string(name)) != 0;
}

const SimDisk::File* SimDisk::FindFile(FileId id) const {
  auto it = files_.find(id);
  return it == files_.end() ? nullptr : &it->second;
}

SimDisk::File* SimDisk::FindFile(FileId id) {
  auto it = files_.find(id);
  return it == files_.end() ? nullptr : &it->second;
}

uint64_t SimDisk::SizeOf(FileId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const File* f = FindFile(id);
  return f == nullptr ? 0 : f->data.size();
}

Status SimDisk::ReadAt(FileId id, uint64_t offset,
                       std::span<uint8_t> out) const {
  if (fault::InjectFault(fault::points::kDiskRead)) {
    return IoError("injected disk read error (media failure)");
  }
  std::shared_lock<std::shared_mutex> lock(mu_);
  const File* f = FindFile(id);
  if (f == nullptr) {
    return NotFound("bad file id");
  }
  const uint64_t size = f->data.size();
  uint64_t copied = 0;
  if (offset < size) {
    copied = std::min<uint64_t>(out.size(), size - offset);
    std::memcpy(out.data(), f->data.data() + offset, copied);
  }
  // Reads past the written extent see zeroes (page-granular convenience).
  if (copied < out.size()) {
    std::memset(out.data() + copied, 0, out.size() - copied);
  }
  return OkStatus();
}

Status SimDisk::WriteAt(FileId id, uint64_t offset,
                        std::span<const uint8_t> data) {
  if (fault::InjectFault(fault::points::kDiskWrite)) {
    return IoError("injected disk write error (media failure)");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  File* f = FindFile(id);
  if (f == nullptr) {
    return NotFound("bad file id");
  }
  const uint64_t end = offset + data.size();
  if (f->data.size() < end) {
    f->data.resize(end, 0);
  }
  std::memcpy(f->data.data() + offset, data.data(), data.size());
  return OkStatus();
}

Status SimDisk::Truncate(FileId id, uint64_t size) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  File* f = FindFile(id);
  if (f == nullptr) {
    return NotFound("bad file id");
  }
  if (f->data.size() < size) {
    f->data.resize(size, 0);
  }
  return OkStatus();
}

std::vector<std::string> SimDisk::ListFiles() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(by_name_.size());
  for (const auto& [name, id] : by_name_) {
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

uint64_t SimDisk::TotalBytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [id, f] : files_) {
    total += f.data.size();
  }
  return total;
}

}  // namespace cache_ext
