// Worker lanes: the simulation's unit of concurrency.
//
// The paper's workloads are multithreaded processes hitting a shared page
// cache. We model each workload thread as a "lane" with its own virtual
// clock (nanoseconds since simulation start). Lanes advance independently;
// shared resources (the SSD) serialize them through the device model.
// Wall-clock throughput is computed as total ops / max(lane clocks).

#ifndef SRC_SIM_LANE_H_
#define SRC_SIM_LANE_H_

#include <cstdint>

#include "src/util/rng.h"

namespace cache_ext {

// Identity of the "task" running on a lane, visible to policies the same way
// the kernel exposes current->pid/tid to eBPF programs. Used by the GET-SCAN
// policy (PID set) and the compaction admission filter (TID set).
struct TaskContext {
  int32_t pid = 0;
  int32_t tid = 0;
};

class Lane {
 public:
  Lane(uint32_t id, TaskContext task, uint64_t seed)
      : id_(id), task_(task), rng_(seed) {}

  uint32_t id() const { return id_; }
  const TaskContext& task() const { return task_; }
  void set_task(TaskContext task) { task_ = task; }

  uint64_t now_ns() const { return now_ns_; }
  void AdvanceTo(uint64_t t_ns) {
    if (t_ns > now_ns_) {
      now_ns_ = t_ns;
    }
  }
  void Charge(uint64_t dt_ns) { now_ns_ += dt_ns; }

  Rng& rng() { return rng_; }

 private:
  uint32_t id_;
  TaskContext task_;
  uint64_t now_ns_ = 0;
  Rng rng_;
};

}  // namespace cache_ext

#endif  // SRC_SIM_LANE_H_
