#include "src/harness/reporter.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>

namespace cache_ext::harness {

void Table::Print() const {
  std::vector<size_t> widths(columns_.size(), 0);
  for (size_t i = 0; i < columns_.size(); ++i) {
    widths[i] = columns_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  std::printf("\n== %s ==\n", title_.c_str());
  for (size_t i = 0; i < columns_.size(); ++i) {
    std::printf("%-*s  ", static_cast<int>(widths[i]), columns_[i].c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < columns_.size(); ++i) {
    std::printf("%s  ", std::string(widths[i], '-').c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      std::printf("%-*s  ", static_cast<int>(widths[i]), row[i].c_str());
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

std::string FormatOps(double ops_per_sec) {
  char buf[64];
  if (ops_per_sec >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM op/s", ops_per_sec / 1e6);
  } else if (ops_per_sec >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk op/s", ops_per_sec / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f op/s", ops_per_sec);
  }
  return buf;
}

std::string FormatCount(uint64_t count) {
  char buf[64];
  const double v = static_cast<double>(count);
  if (v >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(count));
  }
  return buf;
}

std::string FormatNs(uint64_t ns) {
  char buf[64];
  if (ns >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(ns) / 1e6);
  } else if (ns >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.2fus", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lluns",
                  static_cast<unsigned long long>(ns));
  }
  return buf;
}

std::string FormatBytes(uint64_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes >= (1ULL << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2fGiB", b / (1ULL << 30));
  } else if (bytes >= (1ULL << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2fMiB", b / (1ULL << 20));
  } else if (bytes >= (1ULL << 10)) {
    std::snprintf(buf, sizeof(buf), "%.2fKiB", b / (1ULL << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%lluB",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string FormatPercent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

std::string FormatDouble(double v, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace cache_ext::harness
