#include "src/harness/belady.h"

#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "src/mm/address_space.h"

namespace cache_ext::harness {

namespace {

uint64_t PageKey(uint64_t mapping_id, uint64_t index) {
  // Mapping ids are small; indexes fit comfortably in 44 bits at any scale
  // this simulator runs at.
  return (mapping_id << 44) ^ index;
}

}  // namespace

void AccessTraceRecorder::OnFolioAdded(Lane& lane, const Folio& folio) {
  // The miss path dispatches an accessed event right after added; recording
  // only accesses keeps each logical touch counted exactly once.
  (void)lane;
  (void)folio;
}

void AccessTraceRecorder::OnFolioAccessed(Lane& lane, const Folio& folio) {
  (void)lane;
  std::lock_guard<std::mutex> lock(mu_);
  trace_.push_back(PageAccess{folio.mapping->id(), folio.index});
}

void AccessTraceRecorder::OnFolioEvicted(Lane& lane, const Folio& folio) {
  (void)lane;
  (void)folio;
}

std::vector<PageAccess> AccessTraceRecorder::TakeTrace() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::move(trace_);
}

size_t AccessTraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_.size();
}

double BeladyHitRate(const std::vector<PageAccess>& trace,
                     uint64_t capacity_pages) {
  if (trace.empty() || capacity_pages == 0) {
    return 0.0;
  }
  const size_t n = trace.size();
  constexpr size_t kNever = SIZE_MAX;

  // next_use[i]: position of the next access to the same page after i.
  std::vector<size_t> next_use(n, kNever);
  std::unordered_map<uint64_t, size_t> last_seen;
  last_seen.reserve(n / 4);
  for (size_t i = n; i-- > 0;) {
    const uint64_t key = PageKey(trace[i].mapping_id, trace[i].index);
    auto it = last_seen.find(key);
    next_use[i] = it == last_seen.end() ? kNever : it->second;
    last_seen[key] = i;
  }

  // Max-heap of (next_use, key) over resident pages, with lazy invalidation:
  // an entry is stale if the page's current next_use changed (it was
  // accessed again) or the page was already evicted.
  using HeapEntry = std::pair<size_t, uint64_t>;  // (next use, page key)
  std::priority_queue<HeapEntry> heap;
  std::unordered_map<uint64_t, size_t> resident_next;  // key -> next use
  resident_next.reserve(capacity_pages * 2);

  uint64_t hits = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t key = PageKey(trace[i].mapping_id, trace[i].index);
    auto it = resident_next.find(key);
    if (it != resident_next.end()) {
      ++hits;
      it->second = next_use[i];
      heap.emplace(next_use[i], key);
      continue;
    }
    // Miss: evict if full.
    if (resident_next.size() >= capacity_pages) {
      while (true) {
        const auto [use, victim] = heap.top();
        heap.pop();
        auto victim_it = resident_next.find(victim);
        if (victim_it != resident_next.end() && victim_it->second == use) {
          resident_next.erase(victim_it);
          break;
        }
        // Stale entry: the page was re-accessed or already evicted.
      }
    }
    resident_next[key] = next_use[i];
    heap.emplace(next_use[i], key);
  }
  return static_cast<double>(hits) / static_cast<double>(n);
}

}  // namespace cache_ext::harness
