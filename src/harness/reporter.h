// Aligned-table reporting for bench binaries: every bench prints the rows or
// series of the paper figure/table it regenerates.

#ifndef SRC_HARNESS_REPORTER_H_
#define SRC_HARNESS_REPORTER_H_

#include <string>
#include <vector>

namespace cache_ext::harness {

class Table {
 public:
  Table(std::string title, std::vector<std::string> columns)
      : title_(std::move(title)), columns_(std::move(columns)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  // Pretty-print to stdout with aligned columns.
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

// "82808 op/s"-style formatting helpers.
std::string FormatOps(double ops_per_sec);
std::string FormatCount(uint64_t count);  // plain magnitude: "2.52M", "42"
std::string FormatNs(uint64_t ns);      // latency: us/ms with 2 decimals
std::string FormatBytes(uint64_t bytes);
std::string FormatPercent(double fraction);  // 0.37 -> "37.0%"
std::string FormatDouble(double v, int decimals = 2);

}  // namespace cache_ext::harness

#endif  // SRC_HARNESS_REPORTER_H_
