#include "src/harness/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "src/util/logging.h"

namespace cache_ext::harness {

namespace {

// Executes one KV op on a lane. Returns the op's Status; NotFound is a
// normal outcome (YCSB D/E read keys that may not exist yet).
Status ExecuteOp(lsm::LsmDb* db, Lane& lane, const workloads::KvOp& op,
                 uint32_t value_size) {
  using workloads::KvGenerator;
  using workloads::OpType;
  switch (op.type) {
    case OpType::kRead: {
      auto value = db->Get(lane, KvGenerator::KeyFor(op.key_index));
      if (!value.ok() && value.status().code() != ErrorCode::kNotFound) {
        return value.status();
      }
      return OkStatus();
    }
    case OpType::kUpdate:
    case OpType::kInsert:
      return db->Put(lane, KvGenerator::KeyFor(op.key_index),
                     KvGenerator::ValueFor(op.key_index, value_size));
    case OpType::kScan: {
      auto records =
          db->Scan(lane, KvGenerator::KeyFor(op.key_index), op.scan_len);
      return records.status();
    }
    case OpType::kReadModifyWrite: {
      auto value = db->Get(lane, KvGenerator::KeyFor(op.key_index));
      if (!value.ok() && value.status().code() != ErrorCode::kNotFound) {
        return value.status();
      }
      return db->Put(lane, KvGenerator::KeyFor(op.key_index),
                     KvGenerator::ValueFor(op.key_index, value_size));
    }
  }
  return InvalidArgument("bad op type");
}

bool IsOom(const Status& status) {
  return status.code() == ErrorCode::kResourceExhausted;
}

}  // namespace

Expected<RunResult> RunKvWorkload(lsm::LsmDb* db, MemCgroup* cg,
                                  std::vector<LaneSpec> specs,
                                  const KvRunnerOptions& options) {
  if (specs.empty()) {
    return InvalidArgument("need at least one lane");
  }
  RunResult result;
  Histogram point_latency;
  Histogram scan_latency;

  struct LaneState {
    Lane lane;
    workloads::KvGenerator* generator;
    uint64_t remaining;
    uint32_t value_size;
  };
  std::vector<LaneState> lanes;
  lanes.reserve(specs.size());
  uint64_t seed = 0x1234;
  for (const LaneSpec& spec : specs) {
    lanes.push_back(LaneState{
        Lane(static_cast<uint32_t>(lanes.size()), spec.task, seed += 0x9e37),
        spec.generator, spec.ops, spec.generator->value_size()});
    lanes.back().lane.AdvanceTo(options.base_time_ns);
  }

  cg->ResetStats();
  uint64_t ops_since_poll = 0;

  while (true) {
    // Advance the least-advanced lane that still has work.
    LaneState* next = nullptr;
    for (auto& ls : lanes) {
      if (ls.remaining == 0) {
        continue;
      }
      if (next == nullptr || ls.lane.now_ns() < next->lane.now_ns()) {
        next = &ls;
      }
    }
    if (next == nullptr) {
      break;
    }
    const workloads::KvOp op = next->generator->Next(next->lane.rng());
    const uint64_t t0 = next->lane.now_ns();
    const Status status = ExecuteOp(db, next->lane, op, next->value_size);
    if (IsOom(status)) {
      result.oom = true;
      break;
    }
    CACHE_EXT_RETURN_IF_ERROR(status);
    const uint64_t latency = next->lane.now_ns() - t0;
    if (op.type == workloads::OpType::kScan) {
      scan_latency.Record(latency);
      ++result.scans_completed;
    } else {
      point_latency.Record(latency);
      ++result.ops_completed;
    }
    --next->remaining;

    if (options.agent != nullptr &&
        ++ops_since_poll >= options.agent_poll_interval) {
      options.agent->Poll();
      ops_since_poll = 0;
    }
  }

  uint64_t max_now = options.base_time_ns;
  for (const auto& ls : lanes) {
    max_now = std::max(max_now, ls.lane.now_ns());
  }
  result.duration_s =
      static_cast<double>(max_now - options.base_time_ns) / 1e9;
  if (result.oom) {
    result.throughput_ops = 0;
    result.scan_throughput_ops = 0;
  } else if (result.duration_s > 0) {
    result.throughput_ops =
        static_cast<double>(result.ops_completed) / result.duration_s;
    result.scan_throughput_ops =
        static_cast<double>(result.scans_completed) / result.duration_s;
  }
  result.p50_ns = point_latency.P50();
  result.p99_ns = point_latency.P99();
  result.p999_ns = point_latency.P999();
  result.mean_ns = point_latency.Mean();
  result.scan_p99_ns = scan_latency.P99();
  result.hit_rate = cg->HitRate();
  return result;
}

Expected<MtRunResult> RunKvWorkloadThreads(std::vector<ThreadSpec> specs,
                                           uint64_t base_time_ns) {
  if (specs.empty()) {
    return InvalidArgument("need at least one thread");
  }
  for (const ThreadSpec& spec : specs) {
    if (spec.db == nullptr || spec.cg == nullptr ||
        spec.generator == nullptr) {
      return InvalidArgument("thread spec missing db/cgroup/generator");
    }
    spec.cg->ResetStats();
  }

  Histogram latency;  // lock-free: shared across worker threads
  std::atomic<uint64_t> ops_completed{0};
  std::atomic<uint64_t> max_lane_ns{0};
  std::atomic<bool> any_oom{false};
  std::atomic<bool> abort{false};
  std::vector<Status> errors(specs.size(), OkStatus());

  auto worker = [&](size_t i) {
    ThreadSpec& spec = specs[i];
    Lane lane(static_cast<uint32_t>(i), spec.task,
              0x9e3779b97f4a7c15ULL + i * 0x1234567ULL);
    lane.AdvanceTo(base_time_ns);
    const uint32_t value_size = spec.generator->value_size();
    uint64_t lane_end = base_time_ns;
    for (uint64_t op_idx = 0; op_idx < spec.ops; ++op_idx) {
      if (abort.load(std::memory_order_relaxed)) {
        break;
      }
      const workloads::KvOp op = spec.generator->Next(lane.rng());
      const uint64_t t0 = lane.now_ns();
      const Status status = ExecuteOp(spec.db, lane, op, value_size);
      if (IsOom(status)) {
        any_oom.store(true, std::memory_order_relaxed);
        break;  // this cgroup died; the other threads keep going
      }
      if (!status.ok()) {
        errors[i] = status;
        abort.store(true, std::memory_order_relaxed);
        break;
      }
      latency.Record(lane.now_ns() - t0);
      ops_completed.fetch_add(1, std::memory_order_relaxed);
      lane_end = lane.now_ns();
    }
    uint64_t seen = max_lane_ns.load(std::memory_order_relaxed);
    while (lane_end > seen &&
           !max_lane_ns.compare_exchange_weak(seen, lane_end,
                                              std::memory_order_relaxed)) {
    }
  };

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    workers.emplace_back(worker, i);
  }
  for (std::thread& t : workers) {
    t.join();
  }
  const auto wall_end = std::chrono::steady_clock::now();

  for (const Status& status : errors) {
    CACHE_EXT_RETURN_IF_ERROR(status);
  }

  MtRunResult result;
  result.ops_completed = ops_completed.load(std::memory_order_relaxed);
  result.wall_s =
      std::chrono::duration<double>(wall_end - wall_start).count();
  if (result.wall_s > 0) {
    result.wall_throughput_ops =
        static_cast<double>(result.ops_completed) / result.wall_s;
  }
  const uint64_t max_ns = max_lane_ns.load(std::memory_order_relaxed);
  result.duration_s =
      max_ns > base_time_ns
          ? static_cast<double>(max_ns - base_time_ns) / 1e9
          : 0;
  if (result.duration_s > 0) {
    result.throughput_ops =
        static_cast<double>(result.ops_completed) / result.duration_s;
  }
  result.p50_ns = latency.P50();
  result.p99_ns = latency.P99();
  result.mean_ns = latency.Mean();
  result.oom = any_oom.load(std::memory_order_relaxed);
  return result;
}

Expected<SearchRunResult> RunSearchWorkload(search::FileSearcher* searcher,
                                            MemCgroup* cg, int nr_lanes,
                                            int passes,
                                            std::string_view pattern,
                                            uint64_t base_time_ns) {
  SearchRunResult result;
  std::vector<std::unique_ptr<Lane>> lane_storage;
  std::vector<Lane*> lanes;
  for (int i = 0; i < nr_lanes; ++i) {
    lane_storage.push_back(std::make_unique<Lane>(
        static_cast<uint32_t>(100 + i), TaskContext{200, 200 + i},
        0xfeed + static_cast<uint64_t>(i)));
    lane_storage.back()->AdvanceTo(base_time_ns);
    lanes.push_back(lane_storage.back().get());
  }
  cg->ResetStats();
  for (int pass = 0; pass < passes; ++pass) {
    auto matches = searcher->SearchPass(lanes, pattern);
    if (!matches.ok()) {
      if (matches.status().code() == ErrorCode::kResourceExhausted) {
        result.oom = true;
        break;
      }
      return matches.status();
    }
    result.matches += *matches;
    ++result.passes;
  }
  uint64_t max_now = base_time_ns;
  for (const Lane* lane : lanes) {
    max_now = std::max(max_now, lane->now_ns());
  }
  result.duration_s = static_cast<double>(max_now - base_time_ns) / 1e9;
  result.hit_rate = cg->HitRate();
  return result;
}

Expected<IsolationResult> RunIsolationWorkload(
    lsm::LsmDb* db, MemCgroup* kv_cg, workloads::KvGenerator* kv_generator,
    search::FileSearcher* searcher, MemCgroup* search_cg,
    std::string_view pattern, const IsolationOptions& options) {
  IsolationResult result;
  kv_cg->ResetStats();
  search_cg->ResetStats();

  struct WorkLane {
    Lane lane;
    bool is_search;
  };
  std::vector<WorkLane> lanes;
  uint64_t seed = 0xAB1E;
  for (int i = 0; i < options.kv_lanes; ++i) {
    lanes.push_back(WorkLane{
        Lane(static_cast<uint32_t>(i), TaskContext{10, 10 + i}, seed += 13),
        false});
  }
  for (int i = 0; i < options.search_lanes; ++i) {
    lanes.push_back(WorkLane{Lane(static_cast<uint32_t>(100 + i),
                                  TaskContext{20, 20 + i}, seed += 13),
                             true});
  }

  uint64_t kv_ops = 0;
  uint64_t files_searched = 0;
  size_t file_cursor = 0;
  uint64_t ops_since_poll = 0;
  const uint32_t value_size = kv_generator->value_size();
  const size_t nr_files = searcher->num_files();

  while (true) {
    WorkLane* next = nullptr;
    for (auto& wl : lanes) {
      if (wl.lane.now_ns() >= options.duration_ns) {
        continue;  // this "thread" has used up the time span
      }
      if (wl.is_search && result.search_oom) {
        continue;
      }
      if (!wl.is_search && result.kv_oom) {
        continue;
      }
      if (next == nullptr || wl.lane.now_ns() < next->lane.now_ns()) {
        next = &wl;
      }
    }
    if (next == nullptr) {
      break;
    }
    if (next->is_search) {
      auto matches =
          searcher->SearchOneFile(next->lane, file_cursor, pattern);
      if (!matches.ok()) {
        if (matches.status().code() == ErrorCode::kResourceExhausted) {
          result.search_oom = true;
          continue;
        }
        return matches.status();
      }
      file_cursor = (file_cursor + 1) % nr_files;
      ++files_searched;
    } else {
      const workloads::KvOp op = kv_generator->Next(next->lane.rng());
      const Status status = ExecuteOp(db, next->lane, op, value_size);
      if (IsOom(status)) {
        result.kv_oom = true;
        continue;
      }
      CACHE_EXT_RETURN_IF_ERROR(status);
      ++kv_ops;
    }
    if (++ops_since_poll >= options.agent_poll_interval) {
      ops_since_poll = 0;
      if (options.kv_agent != nullptr) {
        options.kv_agent->Poll();
      }
      if (options.search_agent != nullptr) {
        options.search_agent->Poll();
      }
    }
  }

  const double duration_s = static_cast<double>(options.duration_ns) / 1e9;
  result.kv_throughput_ops = static_cast<double>(kv_ops) / duration_s;
  result.searches_completed =
      nr_files == 0 ? 0
                    : static_cast<double>(files_searched) /
                          static_cast<double>(nr_files);
  return result;
}

}  // namespace cache_ext::harness
