#include "src/harness/env.h"

#include "src/workloads/kv_workload.h"

namespace cache_ext::harness {

Env::Env(const EnvOptions& options) : ssd_(options.ssd) {
  cache_ = std::make_unique<PageCache>(&disk_, &ssd_, options.cache);
  loader_ = std::make_unique<CacheExtLoader>(cache_.get());
}

MemCgroup* Env::CreateCgroup(std::string_view name, uint64_t limit_bytes,
                             BasePolicyKind base) {
  return cache_->CreateCgroup(name, limit_bytes, base);
}

bool IsBaselinePolicy(std::string_view policy) {
  return policy == "default" || policy == "mglru";
}

BasePolicyKind BaseKindFor(std::string_view policy) {
  return policy == "mglru" ? BasePolicyKind::kMglru
                           : BasePolicyKind::kDefaultLru;
}

Expected<std::shared_ptr<policies::UserspaceAgent>> Env::AttachPolicy(
    MemCgroup* cg, std::string_view policy,
    const policies::PolicyParams& params) {
  if (IsBaselinePolicy(policy)) {
    return std::shared_ptr<policies::UserspaceAgent>();
  }
  policies::PolicyParams sized = params;
  if (sized.capacity_pages == (1ULL << 20)) {
    sized.capacity_pages = cg->limit_pages();
  }
  auto bundle = policies::MakePolicy(policy, sized);
  CACHE_EXT_RETURN_IF_ERROR(bundle.status());
  auto attached = loader_->Attach(cg, std::move(bundle->ops),
                                  cache_->options().costs);
  CACHE_EXT_RETURN_IF_ERROR(attached.status());
  return bundle->agent;
}

Expected<std::unique_ptr<lsm::LsmDb>> Env::CreateLoadedDb(
    MemCgroup* cg, std::string_view db_name, uint64_t record_count,
    uint32_t value_size, const lsm::DbOptions& options) {
  auto db = std::make_unique<lsm::LsmDb>(cache_.get(), cg,
                                         std::string(db_name), options);
  Lane load_lane(/*id=*/0x10AD, TaskContext{1, 1}, /*seed=*/7);
  uint64_t next_index = 0;
  Status status = db->BulkLoad(
      load_lane, [&](std::string* key, std::string* value) {
        if (next_index >= record_count) {
          return false;
        }
        *key = workloads::KvGenerator::KeyFor(next_index);
        *value = workloads::KvGenerator::ValueFor(next_index, value_size);
        ++next_index;
        return true;
      });
  CACHE_EXT_RETURN_IF_ERROR(status);
  // Drop the cache: the paper drops the page cache before each test.
  auto files = disk_.ListFiles();
  for (const auto& name : files) {
    auto as = cache_->OpenFile(name);
    CACHE_EXT_RETURN_IF_ERROR(as.status());
    CACHE_EXT_RETURN_IF_ERROR(cache_->FadviseRange(
        load_lane, *as, cg, Fadvise::kDontNeed, 0, 0));
  }
  return db;
}

}  // namespace cache_ext::harness
