// Experiment environment: disk + SSD model + page cache + loader, with
// helpers to create cgroups, attach policies by name, and bulk-load LSM
// databases. Shared by the examples and every bench binary.

#ifndef SRC_HARNESS_ENV_H_
#define SRC_HARNESS_ENV_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/cache_ext/loader.h"
#include "src/lsm/db.h"
#include "src/pagecache/page_cache.h"
#include "src/policies/policy_factory.h"
#include "src/sim/sim_disk.h"
#include "src/sim/ssd_model.h"

namespace cache_ext::harness {

struct EnvOptions {
  SsdModelOptions ssd;
  PageCacheOptions cache;
};

class Env {
 public:
  explicit Env(const EnvOptions& options = {});

  SimDisk& disk() { return disk_; }
  SsdModel& ssd() { return ssd_; }
  PageCache& cache() { return *cache_; }
  CacheExtLoader& loader() { return *loader_; }

  // Create a cgroup with the given base (native) policy.
  MemCgroup* CreateCgroup(std::string_view name, uint64_t limit_bytes,
                          BasePolicyKind base = BasePolicyKind::kDefaultLru);

  // Attach a cache_ext policy by name ("lfu", "s3fifo", ...). Returns the
  // userspace agent to poll, or nullptr if the policy has none. Names
  // "default" and "mglru" mean: no ext policy (the cgroup's base applies).
  Expected<std::shared_ptr<policies::UserspaceAgent>> AttachPolicy(
      MemCgroup* cg, std::string_view policy,
      const policies::PolicyParams& params);

  // Build an LSM DB charged to `cg` and bulk-load `record_count` records
  // with deterministic values of `value_size` bytes.
  Expected<std::unique_ptr<lsm::LsmDb>> CreateLoadedDb(
      MemCgroup* cg, std::string_view db_name, uint64_t record_count,
      uint32_t value_size, const lsm::DbOptions& options = {});

 private:
  SimDisk disk_;
  SsdModel ssd_;
  std::unique_ptr<PageCache> cache_;
  std::unique_ptr<CacheExtLoader> loader_;
};

// True for policy names that select a native baseline rather than a
// cache_ext policy ("default", "mglru").
bool IsBaselinePolicy(std::string_view policy);

// The base policy kind an experiment arm needs ("mglru" -> native MGLRU,
// everything else -> the default two-list LRU).
BasePolicyKind BaseKindFor(std::string_view policy);

}  // namespace cache_ext::harness

#endif  // SRC_HARNESS_ENV_H_
