// Belady's OPT oracle and page-access trace capture.
//
// For "pushing forward the frontier of caching research" (§1), policy hit
// rates need a yardstick: OPT, the clairvoyant policy that evicts the page
// re-used farthest in the future. This module records the page-access
// stream of any experiment via the PageCacheTracer hook and computes the
// optimal hit rate for a given capacity, so every policy's gap-to-optimal
// can be reported (see bench_ablation's headroom table).

#ifndef SRC_HARNESS_BELADY_H_
#define SRC_HARNESS_BELADY_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "src/pagecache/page_cache.h"

namespace cache_ext::harness {

struct PageAccess {
  uint64_t mapping_id;
  uint64_t index;

  bool operator==(const PageAccess& other) const {
    return mapping_id == other.mapping_id && index == other.index;
  }
};

// Tracer that records every logical page access (hits and the access half
// of misses both dispatch the accessed event, so the stream is complete).
class AccessTraceRecorder : public PageCacheTracer {
 public:
  void OnFolioAdded(Lane& lane, const Folio& folio) override;
  void OnFolioAccessed(Lane& lane, const Folio& folio) override;
  void OnFolioEvicted(Lane& lane, const Folio& folio) override;

  // The recorded access stream, in order.
  std::vector<PageAccess> TakeTrace();
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<PageAccess> trace_;
};

// OPT (Belady) hit rate for the trace at the given capacity: on each miss
// with a full cache, evict the resident page whose next use is farthest
// away (never-used-again pages first). O(n log n).
double BeladyHitRate(const std::vector<PageAccess>& trace,
                     uint64_t capacity_pages);

}  // namespace cache_ext::harness

#endif  // SRC_HARNESS_BELADY_H_
