// Workload runners: execute generated op streams against an LSM DB (or the
// file searcher) on N lanes and collect paper-style metrics.
//
// Lane scheduling: the runner always advances the lane with the smallest
// virtual clock, which is how N concurrent client threads interleave against
// shared resources. Throughput = completed ops / max lane time; latency
// histograms are recorded per op class (reads/updates vs scans) so Fig. 10
// can report them separately.

#ifndef SRC_HARNESS_RUNNER_H_
#define SRC_HARNESS_RUNNER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/lsm/db.h"
#include "src/policies/userspace_agent.h"
#include "src/search/searcher.h"
#include "src/util/histogram.h"
#include "src/workloads/kv_workload.h"

namespace cache_ext::harness {

struct RunResult {
  uint64_t ops_completed = 0;
  uint64_t scans_completed = 0;
  double duration_s = 0;             // max lane virtual time
  double throughput_ops = 0;         // point ops per virtual second
  double scan_throughput_ops = 0;    // scan ops per virtual second
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t p999_ns = 0;
  double mean_ns = 0;
  uint64_t scan_p99_ns = 0;
  double hit_rate = 0;
  uint64_t disk_read_bytes = 0;
  uint64_t disk_write_bytes = 0;
  bool oom = false;
};

struct LaneSpec {
  workloads::KvGenerator* generator = nullptr;  // op stream for this lane
  TaskContext task;
  uint64_t ops = 0;  // ops this lane executes
};

struct KvRunnerOptions {
  // Poll the policy's userspace agent every this many completed ops.
  uint64_t agent_poll_interval = 2048;
  std::shared_ptr<policies::UserspaceAgent> agent;
  // Lanes start at this virtual time (pass the SSD frontier when reusing a
  // device across runs); measured duration excludes it.
  uint64_t base_time_ns = 0;
};

// Runs lanes against the DB until each lane finishes its op budget (or the
// cgroup OOMs). Returns aggregate metrics; on OOM, throughput is 0 (the
// workload died), matching how Fig. 8 reports the MGLRU OOM on cluster 24.
Expected<RunResult> RunKvWorkload(lsm::LsmDb* db, MemCgroup* cg,
                                  std::vector<LaneSpec> lanes,
                                  const KvRunnerOptions& options = {});

struct SearchRunResult {
  uint64_t matches = 0;
  uint64_t passes = 0;
  double duration_s = 0;
  double hit_rate = 0;
  uint64_t disk_read_bytes = 0;
  bool oom = false;
};

// Runs `passes` full passes of the searcher over the corpus with `nr_lanes`
// worker lanes.
Expected<SearchRunResult> RunSearchWorkload(search::FileSearcher* searcher,
                                            MemCgroup* cg, int nr_lanes,
                                            int passes,
                                            std::string_view pattern,
                                            uint64_t base_time_ns = 0);

// --- Fig. 11: two workloads, two cgroups, one disk -------------------------

struct IsolationOptions {
  // Fixed virtual time span (paper: 7 minutes).
  uint64_t duration_ns = 420ULL * 1000 * 1000 * 1000;
  int kv_lanes = 4;
  int search_lanes = 4;
  std::shared_ptr<policies::UserspaceAgent> kv_agent;
  std::shared_ptr<policies::UserspaceAgent> search_agent;
  uint64_t agent_poll_interval = 2048;
};

struct IsolationResult {
  double kv_throughput_ops = 0;
  double searches_completed = 0;  // fractional corpus passes in the window
  bool kv_oom = false;
  bool search_oom = false;
};

// Runs a KV workload (cgroup A) and the file search (cgroup B) concurrently
// against the shared disk for a fixed virtual time span, interleaving lanes
// by virtual clock so device contention is mutual.
Expected<IsolationResult> RunIsolationWorkload(
    lsm::LsmDb* db, MemCgroup* kv_cg, workloads::KvGenerator* kv_generator,
    search::FileSearcher* searcher, MemCgroup* search_cg,
    std::string_view pattern, const IsolationOptions& options = {});

}  // namespace cache_ext::harness

#endif  // SRC_HARNESS_RUNNER_H_
