// Workload runners: execute generated op streams against an LSM DB (or the
// file searcher) on N lanes and collect paper-style metrics.
//
// Lane scheduling: the runner always advances the lane with the smallest
// virtual clock, which is how N concurrent client threads interleave against
// shared resources. Throughput = completed ops / max lane time; latency
// histograms are recorded per op class (reads/updates vs scans) so Fig. 10
// can report them separately.

#ifndef SRC_HARNESS_RUNNER_H_
#define SRC_HARNESS_RUNNER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/lsm/db.h"
#include "src/policies/userspace_agent.h"
#include "src/search/searcher.h"
#include "src/util/histogram.h"
#include "src/workloads/kv_workload.h"

namespace cache_ext::harness {

struct RunResult {
  uint64_t ops_completed = 0;
  uint64_t scans_completed = 0;
  double duration_s = 0;             // max lane virtual time
  double throughput_ops = 0;         // point ops per virtual second
  double scan_throughput_ops = 0;    // scan ops per virtual second
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t p999_ns = 0;
  double mean_ns = 0;
  uint64_t scan_p99_ns = 0;
  double hit_rate = 0;
  uint64_t disk_read_bytes = 0;
  uint64_t disk_write_bytes = 0;
  bool oom = false;
};

struct LaneSpec {
  workloads::KvGenerator* generator = nullptr;  // op stream for this lane
  TaskContext task;
  uint64_t ops = 0;  // ops this lane executes
};

struct KvRunnerOptions {
  // Poll the policy's userspace agent every this many completed ops.
  uint64_t agent_poll_interval = 2048;
  std::shared_ptr<policies::UserspaceAgent> agent;
  // Lanes start at this virtual time (pass the SSD frontier when reusing a
  // device across runs); measured duration excludes it.
  uint64_t base_time_ns = 0;
};

// Runs lanes against the DB until each lane finishes its op budget (or the
// cgroup OOMs). Returns aggregate metrics; on OOM, throughput is 0 (the
// workload died), matching how Fig. 8 reports the MGLRU OOM on cluster 24.
Expected<RunResult> RunKvWorkload(lsm::LsmDb* db, MemCgroup* cg,
                                  std::vector<LaneSpec> lanes,
                                  const KvRunnerOptions& options = {});

// --- Multithreaded (wall-clock) runner -------------------------------------
//
// Unlike the virtual-clock runners above (which interleave lanes on one OS
// thread to make results deterministic), this runner drives each lane from
// its own std::thread so the page cache's lock sharding is actually
// exercised and measured. Throughput is wall-clock ops/s; latency
// percentiles are still virtual-time (per-op simulated cost), merged across
// threads via the lock-free histogram.

struct ThreadSpec {
  lsm::LsmDb* db = nullptr;                     // this thread's DB
  MemCgroup* cg = nullptr;                      // this thread's cgroup
  workloads::KvGenerator* generator = nullptr;  // op stream (not shared)
  TaskContext task;
  uint64_t ops = 0;
};

struct MtRunResult {
  uint64_t ops_completed = 0;
  double wall_s = 0;               // elapsed wall-clock time
  double wall_throughput_ops = 0;  // completed ops per wall-clock second
  // Aggregate virtual throughput: completed ops / slowest lane's virtual
  // duration — the same metric the single-threaded runners report, so the
  // scaling curve is meaningful even on boxes with fewer cores than lanes
  // (wall-clock throughput cannot exceed 1x on a single-CPU machine no
  // matter how well the cache shards its locks).
  double duration_s = 0;
  double throughput_ops = 0;
  uint64_t p50_ns = 0;  // virtual op latency, merged across threads
  uint64_t p99_ns = 0;
  double mean_ns = 0;
  bool oom = false;  // any thread's cgroup OOMed (its lane stops early)
};

// Runs each spec on its own OS thread until its op budget is done. An OOM
// stops only the affected thread; any other error aborts the run. Pass the
// SSD frontier as `base_time_ns` when the device already served a load
// phase, exactly like KvRunnerOptions::base_time_ns.
Expected<MtRunResult> RunKvWorkloadThreads(std::vector<ThreadSpec> threads,
                                           uint64_t base_time_ns = 0);

struct SearchRunResult {
  uint64_t matches = 0;
  uint64_t passes = 0;
  double duration_s = 0;
  double hit_rate = 0;
  uint64_t disk_read_bytes = 0;
  bool oom = false;
};

// Runs `passes` full passes of the searcher over the corpus with `nr_lanes`
// worker lanes.
Expected<SearchRunResult> RunSearchWorkload(search::FileSearcher* searcher,
                                            MemCgroup* cg, int nr_lanes,
                                            int passes,
                                            std::string_view pattern,
                                            uint64_t base_time_ns = 0);

// --- Fig. 11: two workloads, two cgroups, one disk -------------------------

struct IsolationOptions {
  // Fixed virtual time span (paper: 7 minutes).
  uint64_t duration_ns = 420ULL * 1000 * 1000 * 1000;
  int kv_lanes = 4;
  int search_lanes = 4;
  std::shared_ptr<policies::UserspaceAgent> kv_agent;
  std::shared_ptr<policies::UserspaceAgent> search_agent;
  uint64_t agent_poll_interval = 2048;
};

struct IsolationResult {
  double kv_throughput_ops = 0;
  double searches_completed = 0;  // fractional corpus passes in the window
  bool kv_oom = false;
  bool search_oom = false;
};

// Runs a KV workload (cgroup A) and the file search (cgroup B) concurrently
// against the shared disk for a fixed virtual time span, interleaving lanes
// by virtual clock so device contention is mutual.
Expected<IsolationResult> RunIsolationWorkload(
    lsm::LsmDb* db, MemCgroup* kv_cg, workloads::KvGenerator* kv_generator,
    search::FileSearcher* searcher, MemCgroup* search_cg,
    std::string_view pattern, const IsolationOptions& options = {});

}  // namespace cache_ext::harness

#endif  // SRC_HARNESS_RUNNER_H_
