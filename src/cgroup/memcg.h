// Memory cgroups: the isolation boundary for page-cache policies (§4.3).
//
// Each cgroup has a page limit and owns the folios charged to it. Reclaim is
// cgroup-local: when a charge would exceed the limit, the page cache evicts
// from this cgroup's folios only. A process in cgroup A may access a folio
// owned by cgroup B — the access updates the folio's metadata (in B's
// policy), but the charge stays with B, matching Linux semantics (§2.1).

#ifndef SRC_CGROUP_MEMCG_H_
#define SRC_CGROUP_MEMCG_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/mm/folio.h"

namespace cache_ext {

// Default background-reclaim watermark ratios, in 1024ths of the cgroup
// limit (see src/reclaim/watermarks.h for the semantics): the reclaimer
// lane wakes when free headroom drops below ~1.6% of the limit and runs
// until ~4.7% headroom is restored.
inline constexpr uint32_t kDefaultReclaimLowPer1024 = 16;
inline constexpr uint32_t kDefaultReclaimHighPer1024 = 48;

// Default writeback dirty ratios, in 1024ths of the cgroup limit (see
// src/writeback/dirty.h for the semantics): the flusher lane wakes when
// dirty pages exceed ~10% of the limit and dirtying lanes are throttled
// (balance_dirty_pages analogue) above ~20%, matching the kernel's
// dirty_background_ratio / dirty_ratio split.
inline constexpr uint32_t kDefaultDirtyBgPer1024 = 102;
inline constexpr uint32_t kDefaultDirtyPer1024 = 205;

class MemCgroup {
 public:
  MemCgroup(uint64_t id, std::string name, uint64_t limit_pages)
      : id_(id), name_(std::move(name)), limit_pages_(limit_pages) {}
  MemCgroup(const MemCgroup&) = delete;
  MemCgroup& operator=(const MemCgroup&) = delete;

  uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }

  uint64_t limit_pages() const { return limit_pages_; }
  void set_limit_pages(uint64_t limit) { limit_pages_ = limit; }
  uint64_t limit_bytes() const { return limit_pages_ * kPageSize; }

  uint64_t charged_pages() const {
    return charged_pages_.load(std::memory_order_relaxed);
  }
  void ChargePage() { ChargePages(1); }
  void UnchargePage() { UnchargePages(1); }
  // Multi-order folios charge their whole span in one step, like the
  // kernel's folio_nr_pages charging.
  void ChargePages(uint64_t nr) {
    charged_pages_.fetch_add(nr, std::memory_order_relaxed);
  }
  void UnchargePages(uint64_t nr) {
    charged_pages_.fetch_sub(nr, std::memory_order_relaxed);
  }
  bool OverLimit() const { return charged_pages() > limit_pages_; }
  // Pages that must be reclaimed to return under the limit.
  uint64_t ExcessPages() const {
    const uint64_t charged = charged_pages();
    return charged > limit_pages_ ? charged - limit_pages_ : 0;
  }

  // Background-reclaim watermark ratios in 1024ths of the limit. Config
  // knobs with racy-relaxed reads, like set_limit_pages: the reclaim layer
  // re-derives absolute watermarks from (limit, ratios) on every pressure
  // check, so runtime churn of either is safe (src/reclaim/watermarks.h).
  uint32_t reclaim_low_per_1024() const {
    return reclaim_low_per_1024_.load(std::memory_order_relaxed);
  }
  uint32_t reclaim_high_per_1024() const {
    return reclaim_high_per_1024_.load(std::memory_order_relaxed);
  }
  void SetReclaimWatermarks(uint32_t low_per_1024, uint32_t high_per_1024) {
    reclaim_low_per_1024_.store(low_per_1024, std::memory_order_relaxed);
    reclaim_high_per_1024_.store(high_per_1024, std::memory_order_relaxed);
  }

  // Writeback dirty ratios in 1024ths of the limit, same racy-relaxed knob
  // contract as the reclaim watermarks: the writeback layer re-derives
  // absolute thresholds from (limit, ratios) on every dirtying check
  // (src/writeback/dirty.h).
  uint32_t dirty_bg_per_1024() const {
    return dirty_bg_per_1024_.load(std::memory_order_relaxed);
  }
  uint32_t dirty_per_1024() const {
    return dirty_per_1024_.load(std::memory_order_relaxed);
  }
  void SetDirtyRatios(uint32_t bg_per_1024, uint32_t dirty_per_1024) {
    dirty_bg_per_1024_.store(bg_per_1024, std::memory_order_relaxed);
    dirty_per_1024_.store(dirty_per_1024, std::memory_order_relaxed);
  }

  // Workingset clock: advances on every eviction from this cgroup; shadow
  // entries snapshot it so refault distance can be computed (§2.1).
  uint64_t nonresident_age() const {
    return nonresident_age_.load(std::memory_order_relaxed);
  }
  uint64_t AdvanceNonresidentAge() {
    return nonresident_age_.fetch_add(1, std::memory_order_relaxed);
  }

  // Opaque back-pointer for the page cache's per-cgroup state, like the
  // kernel's mem_cgroup -> lruvec link. Lets the hot path reach its
  // CgroupState in O(1) without a registry scan (and without racing one).
  void set_priv(void* p) { priv_.store(p, std::memory_order_release); }
  void* priv() const { return priv_.load(std::memory_order_acquire); }

  // Statistics.
  std::atomic<uint64_t> stat_insertions{0};
  std::atomic<uint64_t> stat_hits{0};
  std::atomic<uint64_t> stat_misses{0};
  std::atomic<uint64_t> stat_evictions{0};
  std::atomic<uint64_t> stat_refaults{0};
  std::atomic<uint64_t> stat_activations{0};
  std::atomic<uint64_t> stat_oom_events{0};

  double HitRate() const {
    const uint64_t hits = stat_hits.load();
    const uint64_t misses = stat_misses.load();
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }

  void ResetStats() {
    stat_insertions = 0;
    stat_hits = 0;
    stat_misses = 0;
    stat_evictions = 0;
    stat_refaults = 0;
    stat_activations = 0;
    stat_oom_events = 0;
  }

 private:
  uint64_t id_;
  std::string name_;
  uint64_t limit_pages_;
  std::atomic<uint64_t> charged_pages_{0};
  std::atomic<uint32_t> reclaim_low_per_1024_{kDefaultReclaimLowPer1024};
  std::atomic<uint32_t> reclaim_high_per_1024_{kDefaultReclaimHighPer1024};
  std::atomic<uint32_t> dirty_bg_per_1024_{kDefaultDirtyBgPer1024};
  std::atomic<uint32_t> dirty_per_1024_{kDefaultDirtyPer1024};
  std::atomic<uint64_t> nonresident_age_{0};
  std::atomic<void*> priv_{nullptr};
};

}  // namespace cache_ext

#endif  // SRC_CGROUP_MEMCG_H_
