// On-"disk" encoding helpers for the LSM store (varints + fixed ints),
// LevelDB-style.

#ifndef SRC_LSM_FORMAT_H_
#define SRC_LSM_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace cache_ext::lsm {

inline void PutFixed64(std::string* dst, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    dst->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

inline uint64_t GetFixed64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

inline void PutVarint32(std::string* dst, uint32_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

// Returns bytes consumed, or 0 on corruption.
inline size_t GetVarint32(const uint8_t* p, const uint8_t* limit,
                          uint32_t* out) {
  uint32_t result = 0;
  for (int shift = 0; shift <= 28; shift += 7) {
    if (p + shift / 7 >= limit) {
      return 0;
    }
    const uint8_t byte = p[shift / 7];
    result |= static_cast<uint32_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *out = result;
      return static_cast<size_t>(shift / 7) + 1;
    }
  }
  return 0;
}

inline constexpr uint64_t kSstMagic = 0x63616368655f6578ULL;  // "cache_ex"

}  // namespace cache_ext::lsm

#endif  // SRC_LSM_FORMAT_H_
