// SSTable: immutable sorted string table, read and written through the
// simulated page cache.
//
// Layout:   [data block]* [index block] [footer]
//   data block : repeated records {varint klen, varint vlen, u8 flags,
//                key bytes, value bytes}, cut at ~target_block_bytes;
//   index block: repeated {varint klen, key=last key of block,
//                fixed64 offset, fixed64 size};
//   footer     : fixed64 index_offset, fixed64 index_size, fixed64 magic.
//
// The reader keeps the parsed index in memory (the role LevelDB's table
// cache plays) but reads every data block through the page cache, which is
// what makes the eviction policy matter.

#ifndef SRC_LSM_SSTABLE_H_
#define SRC_LSM_SSTABLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/pagecache/page_cache.h"

namespace cache_ext::lsm {

struct Record {
  std::string key;
  std::string value;
  bool tombstone = false;
};

class SSTableBuilder {
 public:
  SSTableBuilder(PageCache* pc, MemCgroup* cg, std::string file_name,
                 uint64_t target_block_bytes = 4096);

  // Keys must be added in strictly increasing order.
  Status Add(std::string_view key, std::string_view value, bool tombstone);

  // Writes the table through the page cache and fsyncs it. Returns the file
  // size in bytes.
  Expected<uint64_t> Finish(Lane& lane);

  uint64_t EstimatedBytes() const { return buffer_.size() + block_.size(); }
  uint64_t num_entries() const { return num_entries_; }
  const std::string& smallest_key() const { return smallest_; }
  const std::string& largest_key() const { return largest_; }
  const std::string& file_name() const { return file_name_; }

 private:
  void CutBlock();

  PageCache* pc_;
  MemCgroup* cg_;
  std::string file_name_;
  uint64_t target_block_bytes_;

  std::string buffer_;  // finished blocks
  std::string block_;   // current block under construction
  std::string index_;
  std::string last_key_;
  std::string smallest_;
  std::string largest_;
  uint64_t block_offset_ = 0;
  uint64_t num_entries_ = 0;
  bool finished_ = false;
};

class SSTableReader {
 public:
  // Opens the table: reads the footer and index through the page cache.
  static Expected<std::unique_ptr<SSTableReader>> Open(PageCache* pc,
                                                       MemCgroup* cg,
                                                       std::string_view name,
                                                       Lane& lane);

  // Point lookup. Returns nullopt if the key is not in this table; a present
  // record may be a tombstone.
  Expected<std::optional<Record>> Get(Lane& lane, std::string_view key);

  // Sequential iterator over all records (used by compaction and scans).
  // Reads the file in multi-block segments (64 KiB), the way LevelDB and
  // RocksDB compactions/scans issue large sequential reads
  // (compaction_readahead_size), so sequential consumers behave sanely even
  // when their pages bypass the cache (admission filter).
  class Iterator {
   public:
    static constexpr size_t kSegmentBlocks = 16;

    Iterator(SSTableReader* table, Lane& lane);
    bool Valid() const { return valid_; }
    const Record& record() const { return record_; }
    Status Next();
    // Position at the first record with key >= target.
    Status Seek(std::string_view target);

   private:
    // Loads the segment of up to kSegmentBlocks blocks starting at
    // block_idx with one read.
    Status LoadSegment(size_t block_idx);
    bool ParseNext();

    SSTableReader* table_;
    Lane& lane_;
    size_t segment_first_block_ = 0;
    size_t segment_nr_blocks_ = 0;
    std::vector<uint8_t> segment_data_;
    size_t segment_pos_ = 0;
    Record record_;
    bool valid_ = false;
  };

  uint64_t file_size() const { return file_size_; }
  const std::string& name() const { return name_; }

 private:
  struct IndexEntry {
    std::string last_key;  // largest key in the block
    uint64_t offset;
    uint64_t size;
  };

  SSTableReader(PageCache* pc, MemCgroup* cg, AddressSpace* as,
                std::string name)
      : pc_(pc), cg_(cg), as_(as), name_(std::move(name)) {}

  Status ReadBlock(Lane& lane, uint64_t offset, uint64_t size,
                   std::vector<uint8_t>* out);

  PageCache* pc_;
  MemCgroup* cg_;
  AddressSpace* as_;
  std::string name_;
  uint64_t file_size_ = 0;
  std::vector<IndexEntry> index_;

  friend class Iterator;
};

}  // namespace cache_ext::lsm

#endif  // SRC_LSM_SSTABLE_H_
