// LsmDb: a LevelDB-style LSM-tree key-value store over the simulated page
// cache — the paper's LevelDB/RocksDB stand-in.
//
// Structure: an in-memory skiplist memtable; on overflow it flushes to an L0
// SSTable (L0 files may overlap). Leveled compaction merges L0 into L1 and
// oversized levels into the next one. Point reads consult memtable, then L0
// newest-to-oldest, then one file per deeper level; scans merge iterators
// across all sources. All SSTable I/O flows through the page cache, so
// eviction policies shape performance exactly as they do for LevelDB in the
// paper.
//
// Compaction runs synchronously when triggered, but *on its own lane* with a
// distinct TID — the paper's background compaction threads — so the
// admission-filter policy (§5.6) can identify and reject its page-cache
// admissions. Reads issued like pread(), as the paper's modified LevelDB
// does (§6.1.1).

#ifndef SRC_LSM_DB_H_
#define SRC_LSM_DB_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/lsm/memtable.h"
#include "src/lsm/sstable.h"
#include "src/pagecache/page_cache.h"

namespace cache_ext::lsm {

struct DbOptions {
  uint64_t memtable_bytes = 4 << 20;       // flush threshold
  uint64_t target_file_bytes = 2 << 20;    // max SSTable size from compaction
  int l0_compaction_trigger = 4;           // L0 files before compacting
  uint64_t level_base_bytes = 16 << 20;    // L1 size budget; x10 per level
  int num_levels = 5;
  // TID assigned to the compaction lane (visible to admission filters).
  int32_t compaction_tid = 9000;
  int32_t compaction_pid = 9000;
  // CPU cost charged per DB operation (key comparison, memtable walk),
  // applied even when the op never reaches the page cache.
  uint64_t op_cpu_ns = 700;
};

class LsmDb {
 public:
  // `cg` is the cgroup all this DB's I/O is charged to; `name` prefixes the
  // SSTable file names.
  LsmDb(PageCache* pc, MemCgroup* cg, std::string name,
        DbOptions options = {});
  ~LsmDb();
  LsmDb(const LsmDb&) = delete;
  LsmDb& operator=(const LsmDb&) = delete;

  Status Put(Lane& lane, std::string_view key, std::string_view value);
  Status Delete(Lane& lane, std::string_view key);
  // Returns the value, or NotFound.
  Expected<std::string> Get(Lane& lane, std::string_view key);
  // Range scan: up to `count` records starting at the first key >= start.
  Expected<std::vector<Record>> Scan(Lane& lane, std::string_view start,
                                     size_t count);

  // Bulk-load sorted unique key/value pairs directly into the bottom level
  // (bypassing the write path); used to set up large databases quickly.
  // Must be called on an empty DB with strictly increasing keys.
  Status BulkLoad(Lane& lane,
                  const std::function<bool(std::string*, std::string*)>& next);

  // Force-flush the memtable (e.g. at the end of a load phase).
  Status Flush(Lane& lane);

  int32_t compaction_tid() const { return options_.compaction_tid; }
  uint64_t compactions_run() const { return compactions_run_; }
  int NumFilesAtLevel(int level) const;
  uint64_t TotalDataBytes() const;

  // The compaction lane's virtual clock (advanced to the triggering lane's
  // time before each compaction).
  const Lane& compaction_lane() const { return compaction_lane_; }

 private:
  struct FileMeta {
    std::string name;
    std::string smallest;
    std::string largest;
    uint64_t size = 0;
    uint64_t number = 0;
    std::shared_ptr<SSTableReader> reader;  // opened lazily
  };

  std::string NewFileName();
  Expected<std::shared_ptr<SSTableReader>> OpenTable(Lane& lane,
                                                     FileMeta* meta);

  Status FlushMemtable(Lane& lane);
  Status MaybeCompact(Lane& trigger_lane);
  Status CompactLevel(int level);
  // Merge the given inputs into `output_level`, replacing them.
  Status MergeFiles(int input_level, std::vector<size_t> input_indices,
                    int output_level, std::vector<size_t> overlap_indices);

  uint64_t LevelBytes(int level) const;
  uint64_t MaxBytesForLevel(int level) const;

  PageCache* pc_;
  MemCgroup* cg_;
  std::string name_;
  DbOptions options_;
  MemTable memtable_;
  // levels_[0] ordered newest-first; deeper levels sorted by smallest key,
  // non-overlapping.
  std::vector<std::vector<FileMeta>> levels_;
  uint64_t next_file_number_ = 1;
  Lane compaction_lane_;
  uint64_t compactions_run_ = 0;
};

}  // namespace cache_ext::lsm

#endif  // SRC_LSM_DB_H_
