// MemTable: skiplist wrapper tracking approximate memory use.

#ifndef SRC_LSM_MEMTABLE_H_
#define SRC_LSM_MEMTABLE_H_

#include <memory>
#include <string_view>

#include "src/lsm/skiplist.h"

namespace cache_ext::lsm {

class MemTable {
 public:
  MemTable() : list_(std::make_unique<SkipList>()) {}

  void Put(std::string_view key, std::string_view value) {
    list_->Put(key, value, /*tombstone=*/false);
  }
  void Delete(std::string_view key) {
    list_->Put(key, "", /*tombstone=*/true);
  }
  const MemEntry* Get(std::string_view key) const { return list_->Get(key); }

  uint64_t ApproximateBytes() const { return list_->ApproximateBytes(); }
  size_t size() const { return list_->size(); }
  bool empty() const { return list_->empty(); }

  SkipList::Iterator NewIterator() const { return list_->NewIterator(); }
  const SkipList* list() const { return list_.get(); }

  void Reset() { list_ = std::make_unique<SkipList>(); }

 private:
  std::unique_ptr<SkipList> list_;
};

}  // namespace cache_ext::lsm

#endif  // SRC_LSM_MEMTABLE_H_
