#include "src/lsm/sstable.h"

#include <algorithm>

#include "src/lsm/format.h"
#include "src/util/logging.h"

namespace cache_ext::lsm {

SSTableBuilder::SSTableBuilder(PageCache* pc, MemCgroup* cg,
                               std::string file_name,
                               uint64_t target_block_bytes)
    : pc_(pc),
      cg_(cg),
      file_name_(std::move(file_name)),
      target_block_bytes_(target_block_bytes) {}

void SSTableBuilder::CutBlock() {
  if (block_.empty()) {
    return;
  }
  PutVarint32(&index_, static_cast<uint32_t>(last_key_.size()));
  index_.append(last_key_);
  PutFixed64(&index_, block_offset_);
  PutFixed64(&index_, block_.size());
  buffer_.append(block_);
  block_offset_ += block_.size();
  block_.clear();
}

Status SSTableBuilder::Add(std::string_view key, std::string_view value,
                           bool tombstone) {
  if (finished_) {
    return FailedPrecondition("builder already finished");
  }
  if (num_entries_ > 0 && key <= last_key_) {
    return InvalidArgument("keys must be added in increasing order");
  }
  PutVarint32(&block_, static_cast<uint32_t>(key.size()));
  PutVarint32(&block_, static_cast<uint32_t>(value.size()));
  block_.push_back(tombstone ? '\1' : '\0');
  block_.append(key);
  block_.append(value);
  if (num_entries_ == 0) {
    smallest_.assign(key);
  }
  largest_.assign(key);
  last_key_.assign(key);
  ++num_entries_;
  if (block_.size() >= target_block_bytes_) {
    CutBlock();
  }
  return OkStatus();
}

Expected<uint64_t> SSTableBuilder::Finish(Lane& lane) {
  if (finished_) {
    return FailedPrecondition("builder already finished");
  }
  finished_ = true;
  CutBlock();
  const uint64_t index_offset = buffer_.size();
  const uint64_t index_size = index_.size();
  buffer_.append(index_);
  PutFixed64(&buffer_, index_offset);
  PutFixed64(&buffer_, index_size);
  PutFixed64(&buffer_, kSstMagic);

  auto as = pc_->OpenFile(file_name_);
  CACHE_EXT_RETURN_IF_ERROR(as.status());
  CACHE_EXT_RETURN_IF_ERROR(pc_->Write(
      lane, *as, cg_, 0,
      std::span<const uint8_t>(
          reinterpret_cast<const uint8_t*>(buffer_.data()), buffer_.size())));
  CACHE_EXT_RETURN_IF_ERROR(pc_->SyncFile(lane, *as));
  return static_cast<uint64_t>(buffer_.size());
}

Expected<std::unique_ptr<SSTableReader>> SSTableReader::Open(
    PageCache* pc, MemCgroup* cg, std::string_view name, Lane& lane) {
  auto as = pc->OpenFile(name);
  CACHE_EXT_RETURN_IF_ERROR(as.status());
  // LevelDB/RocksDB advise the kernel that table files are accessed
  // randomly (POSIX_FADV_RANDOM), disabling readahead for point lookups;
  // sequential consumers (scans, compactions) do their own large segment
  // reads instead.
  CACHE_EXT_RETURN_IF_ERROR(
      pc->FadviseRange(lane, *as, cg, Fadvise::kRandom, 0, 0));
  auto reader = std::unique_ptr<SSTableReader>(
      new SSTableReader(pc, cg, *as, std::string(name)));

  const uint64_t file_size = pc->FileSize(*as);
  if (file_size < 24) {
    return Corruption("sstable too small: " + std::string(name));
  }
  reader->file_size_ = file_size;

  uint8_t footer[24];
  CACHE_EXT_RETURN_IF_ERROR(
      pc->Read(lane, *as, cg, file_size - 24, std::span<uint8_t>(footer, 24)));
  const uint64_t index_offset = GetFixed64(footer);
  const uint64_t index_size = GetFixed64(footer + 8);
  const uint64_t magic = GetFixed64(footer + 16);
  if (magic != kSstMagic || index_offset + index_size + 24 != file_size) {
    return Corruption("bad sstable footer: " + std::string(name));
  }

  std::vector<uint8_t> index(index_size);
  CACHE_EXT_RETURN_IF_ERROR(pc->Read(lane, *as, cg, index_offset,
                                     std::span<uint8_t>(index)));
  const uint8_t* p = index.data();
  const uint8_t* limit = p + index.size();
  while (p < limit) {
    uint32_t klen = 0;
    const size_t n = GetVarint32(p, limit, &klen);
    if (n == 0 || p + n + klen + 16 > limit) {
      return Corruption("bad sstable index: " + std::string(name));
    }
    p += n;
    IndexEntry entry;
    entry.last_key.assign(reinterpret_cast<const char*>(p), klen);
    p += klen;
    entry.offset = GetFixed64(p);
    entry.size = GetFixed64(p + 8);
    p += 16;
    reader->index_.push_back(std::move(entry));
  }
  return reader;
}

Status SSTableReader::ReadBlock(Lane& lane, uint64_t offset, uint64_t size,
                                std::vector<uint8_t>* out) {
  out->resize(size);
  return pc_->Read(lane, as_, cg_, offset, std::span<uint8_t>(*out));
}

Expected<std::optional<Record>> SSTableReader::Get(Lane& lane,
                                                   std::string_view key) {
  // Binary search: first block whose last_key >= key.
  auto it = std::lower_bound(
      index_.begin(), index_.end(), key,
      [](const IndexEntry& e, std::string_view k) { return e.last_key < k; });
  if (it == index_.end()) {
    return std::optional<Record>();
  }
  std::vector<uint8_t> block;
  CACHE_EXT_RETURN_IF_ERROR(ReadBlock(lane, it->offset, it->size, &block));
  const uint8_t* p = block.data();
  const uint8_t* limit = p + block.size();
  while (p < limit) {
    uint32_t klen = 0;
    uint32_t vlen = 0;
    size_t n = GetVarint32(p, limit, &klen);
    if (n == 0) {
      return Corruption("bad record in " + name_);
    }
    p += n;
    n = GetVarint32(p, limit, &vlen);
    if (n == 0 || p + n + 1 + klen + vlen > limit) {
      return Corruption("bad record in " + name_);
    }
    p += n;
    const bool tombstone = *p++ != 0;
    std::string_view rec_key(reinterpret_cast<const char*>(p), klen);
    if (rec_key == key) {
      Record rec;
      rec.key.assign(rec_key);
      rec.value.assign(reinterpret_cast<const char*>(p + klen), vlen);
      rec.tombstone = tombstone;
      return std::optional<Record>(std::move(rec));
    }
    if (rec_key > key) {
      return std::optional<Record>();
    }
    p += klen + vlen;
  }
  return std::optional<Record>();
}

SSTableReader::Iterator::Iterator(SSTableReader* table, Lane& lane)
    : table_(table), lane_(lane) {
  if (!table_->index_.empty()) {
    if (LoadSegment(0).ok()) {
      valid_ = ParseNext();
    }
  }
}

Status SSTableReader::Iterator::LoadSegment(size_t block_idx) {
  segment_first_block_ = block_idx;
  segment_nr_blocks_ =
      std::min(kSegmentBlocks, table_->index_.size() - block_idx);
  segment_pos_ = 0;
  // Blocks are laid out back to back, so the segment is one contiguous
  // byte range — one large sequential read.
  const auto& first = table_->index_[block_idx];
  const auto& last = table_->index_[block_idx + segment_nr_blocks_ - 1];
  const uint64_t bytes = last.offset + last.size - first.offset;
  return table_->ReadBlock(lane_, first.offset, bytes, &segment_data_);
}

bool SSTableReader::Iterator::ParseNext() {
  // Records are contiguous within and across the blocks of a segment, so
  // parsing runs linearly through the whole segment.
  const uint8_t* base = segment_data_.data();
  const uint8_t* limit = base + segment_data_.size();
  const uint8_t* p = base + segment_pos_;
  if (p >= limit) {
    return false;
  }
  uint32_t klen = 0;
  uint32_t vlen = 0;
  size_t n = GetVarint32(p, limit, &klen);
  if (n == 0) {
    return false;
  }
  p += n;
  n = GetVarint32(p, limit, &vlen);
  if (n == 0 || p + n + 1 + klen + vlen > limit) {
    return false;
  }
  p += n;
  record_.tombstone = *p++ != 0;
  record_.key.assign(reinterpret_cast<const char*>(p), klen);
  record_.value.assign(reinterpret_cast<const char*>(p + klen), vlen);
  segment_pos_ = static_cast<size_t>(p + klen + vlen - base);
  return true;
}

Status SSTableReader::Iterator::Next() {
  if (!valid_) {
    return FailedPrecondition("iterator exhausted");
  }
  if (ParseNext()) {
    return OkStatus();
  }
  // Advance to the next segment.
  const size_t next_block = segment_first_block_ + segment_nr_blocks_;
  if (next_block < table_->index_.size()) {
    CACHE_EXT_RETURN_IF_ERROR(LoadSegment(next_block));
    valid_ = ParseNext();
  } else {
    valid_ = false;
  }
  return OkStatus();
}

Status SSTableReader::Iterator::Seek(std::string_view target) {
  auto it = std::lower_bound(table_->index_.begin(), table_->index_.end(),
                             target,
                             [](const IndexEntry& e, std::string_view k) {
                               return e.last_key < k;
                             });
  if (it == table_->index_.end()) {
    valid_ = false;
    return OkStatus();
  }
  CACHE_EXT_RETURN_IF_ERROR(
      LoadSegment(static_cast<size_t>(it - table_->index_.begin())));
  valid_ = ParseNext();
  while (valid_ && record_.key < target) {
    CACHE_EXT_RETURN_IF_ERROR(Next());
  }
  return OkStatus();
}

}  // namespace cache_ext::lsm
