// Skiplist: the memtable's ordered index (LevelDB-style).
//
// Single-writer/multi-reader is all the DB needs (writes are serialized by
// the DB mutex); we keep it simple and require external synchronization.
// Keys are owned strings; values carry a tombstone flag so deletes shadow
// older SSTable entries.

#ifndef SRC_LSM_SKIPLIST_H_
#define SRC_LSM_SKIPLIST_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "src/util/rng.h"

namespace cache_ext::lsm {

struct MemEntry {
  std::string value;
  bool tombstone = false;
};

class SkipList {
 private:
  struct Node;

 public:
  static constexpr int kMaxHeight = 12;

  SkipList() : rng_(0xdecafbadULL) {
    head_ = NewNode("", MemEntry{}, kMaxHeight);
  }
  ~SkipList() {
    Node* node = head_;
    while (node != nullptr) {
      Node* next = node->next[0];
      node->~Node();
      ::operator delete(node);
      node = next;
    }
  }
  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  // Insert or overwrite.
  void Put(std::string_view key, std::string_view value, bool tombstone) {
    Node* prev[kMaxHeight];
    Node* node = FindGreaterOrEqual(key, prev);
    if (node != nullptr && node->key == key) {
      node->entry.value.assign(value);
      node->entry.tombstone = tombstone;
      return;
    }
    const int height = RandomHeight();
    Node* fresh = NewNode(key, MemEntry{std::string(value), tombstone}, height);
    for (int level = 0; level < height; ++level) {
      fresh->next[level] = prev[level]->next[level];
      prev[level]->next[level] = fresh;
    }
    ++size_;
    bytes_ += key.size() + value.size() + 32;
  }

  // Returns the entry for key, or nullptr.
  const MemEntry* Get(std::string_view key) const {
    Node* node = FindGreaterOrEqual(key, nullptr);
    if (node != nullptr && node->key == key) {
      return &node->entry;
    }
    return nullptr;
  }

  size_t size() const { return size_; }
  uint64_t ApproximateBytes() const { return bytes_; }
  bool empty() const { return size_ == 0; }

  // Ordered iteration.
  class Iterator {
   public:
    explicit Iterator(const SkipList* list)
        : node_(list->head_->next[0]) {}

    bool Valid() const { return node_ != nullptr; }
    const std::string& key() const { return node_->key; }
    const MemEntry& entry() const { return node_->entry; }
    void Next() { node_ = node_->next[0]; }

    // Position at the first key >= target.
    void Seek(const SkipList* list, std::string_view target) {
      node_ = list->FindGreaterOrEqual(target, nullptr);
    }

   private:
    friend class SkipList;
    Node* node_;
  };

  Iterator NewIterator() const { return Iterator(this); }

 private:
  struct Node {  // definition of the forward-declared nested type
    std::string key;
    MemEntry entry;
    // Over-allocated flexible next array, height pointers.
    Node* next[1];
  };

  static Node* NewNode(std::string_view key, MemEntry entry, int height) {
    // Manual allocation of the flexible array.
    void* mem = ::operator new(sizeof(Node) +
                               sizeof(Node*) * (static_cast<size_t>(height) - 1));
    Node* node = new (mem) Node{std::string(key), std::move(entry), {nullptr}};
    for (int i = 0; i < height; ++i) {
      node->next[i] = nullptr;
    }
    return node;
  }

  int RandomHeight() {
    int height = 1;
    while (height < kMaxHeight && rng_.NextU64Below(4) == 0) {
      ++height;
    }
    return height;
  }

  Node* FindGreaterOrEqual(std::string_view key, Node** prev) const {
    Node* node = head_;
    int level = kMaxHeight - 1;
    while (true) {
      Node* next = node->next[level];
      if (next != nullptr && next->key < key) {
        node = next;
        continue;
      }
      if (prev != nullptr) {
        prev[level] = node;
      }
      if (level == 0) {
        return next;
      }
      --level;
    }
  }

  Node* head_;
  size_t size_ = 0;
  uint64_t bytes_ = 0;
  Rng rng_;
};

}  // namespace cache_ext::lsm

#endif  // SRC_LSM_SKIPLIST_H_
