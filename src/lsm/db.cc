#include "src/lsm/db.h"

#include <algorithm>
#include <cstdio>

#include "src/pagecache/current_task.h"

#include "src/util/logging.h"

namespace cache_ext::lsm {

namespace {

// A merge source: a stream of records in key order with a recency priority
// (lower = newer, wins on duplicate keys).
class Source {
 public:
  virtual ~Source() = default;
  virtual bool Valid() const = 0;
  virtual const std::string& key() const = 0;
  virtual const std::string& value() const = 0;
  virtual bool tombstone() const = 0;
  virtual Status Next() = 0;
};

class MemSource : public Source {
 public:
  MemSource(const SkipList* list, std::string_view start) : iter_(list) {
    iter_.Seek(list, start);
  }
  bool Valid() const override { return iter_.Valid(); }
  const std::string& key() const override { return iter_.key(); }
  const std::string& value() const override { return iter_.entry().value; }
  bool tombstone() const override { return iter_.entry().tombstone; }
  Status Next() override {
    iter_.Next();
    return OkStatus();
  }

 private:
  SkipList::Iterator iter_;
};

class TableSource : public Source {
 public:
  TableSource(SSTableReader* table, Lane& lane, std::string_view start)
      : iter_(table, lane) {
    status_ = iter_.Seek(start);
  }
  bool Valid() const override { return status_.ok() && iter_.Valid(); }
  const std::string& key() const override { return iter_.record().key; }
  const std::string& value() const override { return iter_.record().value; }
  bool tombstone() const override { return iter_.record().tombstone; }
  Status Next() override {
    status_ = iter_.Next();
    return status_;
  }

 private:
  SSTableReader::Iterator iter_;
  Status status_;
};

// Merges sources by (key, priority-index): index order in `sources` is the
// recency order, newest first. Emits the newest version of each key,
// including tombstones (the caller filters).
class MergingIterator {
 public:
  explicit MergingIterator(std::vector<std::unique_ptr<Source>> sources)
      : sources_(std::move(sources)) {
    Advance();
  }

  bool Valid() const { return current_ != nullptr; }
  const std::string& key() const { return current_->key(); }
  const std::string& value() const { return current_->value(); }
  bool tombstone() const { return current_->tombstone(); }

  Status Next() {
    const std::string current_key = key();
    // Pop the emitted key from every source that carries it.
    for (auto& src : sources_) {
      while (src->Valid() && src->key() == current_key) {
        CACHE_EXT_RETURN_IF_ERROR(src->Next());
      }
    }
    Advance();
    return OkStatus();
  }

 private:
  void Advance() {
    current_ = nullptr;
    for (auto& src : sources_) {
      if (!src->Valid()) {
        continue;
      }
      if (current_ == nullptr || src->key() < current_->key()) {
        current_ = src.get();
      }
      // Ties: the earlier (newer) source wins because we scan in order and
      // only replace on strictly-smaller keys.
    }
  }

  std::vector<std::unique_ptr<Source>> sources_;
  Source* current_ = nullptr;
};

}  // namespace

LsmDb::LsmDb(PageCache* pc, MemCgroup* cg, std::string name, DbOptions options)
    : pc_(pc),
      cg_(cg),
      name_(std::move(name)),
      options_(options),
      levels_(static_cast<size_t>(options.num_levels)),
      compaction_lane_(/*id=*/0xC0117AC7,
                       TaskContext{options.compaction_pid,
                                   options.compaction_tid},
                       /*seed=*/0x5eed) {}

LsmDb::~LsmDb() = default;

std::string LsmDb::NewFileName() {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/%s/sst_%08llu", name_.c_str(),
                static_cast<unsigned long long>(next_file_number_++));
  return std::string(buf);
}

Expected<std::shared_ptr<SSTableReader>> LsmDb::OpenTable(Lane& lane,
                                                          FileMeta* meta) {
  if (meta->reader == nullptr) {
    auto reader = SSTableReader::Open(pc_, cg_, meta->name, lane);
    CACHE_EXT_RETURN_IF_ERROR(reader.status());
    meta->reader = std::shared_ptr<SSTableReader>(std::move(*reader));
  }
  return meta->reader;
}

Status LsmDb::Put(Lane& lane, std::string_view key, std::string_view value) {
  lane.Charge(options_.op_cpu_ns);
  memtable_.Put(key, value);
  if (memtable_.ApproximateBytes() >= options_.memtable_bytes) {
    CACHE_EXT_RETURN_IF_ERROR(FlushMemtable(lane));
    CACHE_EXT_RETURN_IF_ERROR(MaybeCompact(lane));
  }
  return OkStatus();
}

Status LsmDb::Delete(Lane& lane, std::string_view key) {
  lane.Charge(options_.op_cpu_ns);
  memtable_.Delete(key);
  if (memtable_.ApproximateBytes() >= options_.memtable_bytes) {
    CACHE_EXT_RETURN_IF_ERROR(FlushMemtable(lane));
    CACHE_EXT_RETURN_IF_ERROR(MaybeCompact(lane));
  }
  return OkStatus();
}

Expected<std::string> LsmDb::Get(Lane& lane, std::string_view key) {
  lane.Charge(options_.op_cpu_ns);
  // 1. Memtable.
  if (const MemEntry* entry = memtable_.Get(key); entry != nullptr) {
    if (entry->tombstone) {
      return NotFound("deleted");
    }
    return entry->value;
  }
  // 2. L0, newest to oldest (files may overlap).
  for (auto& meta : levels_[0]) {
    if (key < meta.smallest || key > meta.largest) {
      continue;
    }
    auto table = OpenTable(lane, &meta);
    CACHE_EXT_RETURN_IF_ERROR(table.status());
    auto rec = (*table)->Get(lane, key);
    CACHE_EXT_RETURN_IF_ERROR(rec.status());
    if (rec->has_value()) {
      if ((*rec)->tombstone) {
        return NotFound("deleted");
      }
      return (*rec)->value;
    }
  }
  // 3. Deeper levels: at most one candidate file per level.
  for (size_t level = 1; level < levels_.size(); ++level) {
    auto& files = levels_[level];
    auto it = std::lower_bound(
        files.begin(), files.end(), key,
        [](const FileMeta& f, std::string_view k) { return f.largest < k; });
    if (it == files.end() || key < it->smallest) {
      continue;
    }
    auto table = OpenTable(lane, &*it);
    CACHE_EXT_RETURN_IF_ERROR(table.status());
    auto rec = (*table)->Get(lane, key);
    CACHE_EXT_RETURN_IF_ERROR(rec.status());
    if (rec->has_value()) {
      if ((*rec)->tombstone) {
        return NotFound("deleted");
      }
      return (*rec)->value;
    }
  }
  return NotFound("no such key");
}

Expected<std::vector<Record>> LsmDb::Scan(Lane& lane, std::string_view start,
                                          size_t count) {
  lane.Charge(options_.op_cpu_ns);
  std::vector<std::unique_ptr<Source>> sources;
  sources.push_back(std::make_unique<MemSource>(memtable_.list(), start));
  for (auto& meta : levels_[0]) {
    if (meta.largest < start) {
      continue;
    }
    auto table = OpenTable(lane, &meta);
    CACHE_EXT_RETURN_IF_ERROR(table.status());
    sources.push_back(
        std::make_unique<TableSource>(table->get(), lane, start));
  }
  for (size_t level = 1; level < levels_.size(); ++level) {
    // Non-overlapping files: open from the first file that can contain
    // `start` onward. (A LevelDB concatenating iterator would lazily open
    // them; for our scan lengths opening the overlapping suffix is fine
    // because Seek() only touches one block per file actually consulted.)
    auto& files = levels_[level];
    auto it = std::lower_bound(
        files.begin(), files.end(), start,
        [](const FileMeta& f, std::string_view k) { return f.largest < k; });
    for (; it != files.end(); ++it) {
      // Stop opening files that start far beyond what `count` can reach;
      // conservatively open at most 4 files per level.
      if (it - std::lower_bound(files.begin(), files.end(), start,
                                [](const FileMeta& f, std::string_view k) {
                                  return f.largest < k;
                                }) >=
          4) {
        break;
      }
      auto table = OpenTable(lane, &*it);
      CACHE_EXT_RETURN_IF_ERROR(table.status());
      sources.push_back(
          std::make_unique<TableSource>(table->get(), lane, start));
    }
  }

  MergingIterator merge(std::move(sources));
  std::vector<Record> out;
  out.reserve(count);
  while (merge.Valid() && out.size() < count) {
    if (!merge.tombstone()) {
      Record rec;
      rec.key = merge.key();
      rec.value = merge.value();
      out.push_back(std::move(rec));
    }
    CACHE_EXT_RETURN_IF_ERROR(merge.Next());
  }
  return out;
}

Status LsmDb::Flush(Lane& lane) {
  CACHE_EXT_RETURN_IF_ERROR(FlushMemtable(lane));
  return MaybeCompact(lane);
}

Status LsmDb::FlushMemtable(Lane& lane) {
  if (memtable_.empty()) {
    return OkStatus();
  }
  FileMeta meta;
  meta.number = next_file_number_;
  meta.name = NewFileName();
  SSTableBuilder builder(pc_, cg_, meta.name);
  for (auto iter = memtable_.NewIterator(); iter.Valid(); iter.Next()) {
    CACHE_EXT_RETURN_IF_ERROR(
        builder.Add(iter.key(), iter.entry().value, iter.entry().tombstone));
  }
  auto size = builder.Finish(lane);
  CACHE_EXT_RETURN_IF_ERROR(size.status());
  meta.size = *size;
  meta.smallest = builder.smallest_key();
  meta.largest = builder.largest_key();
  // L0 is newest-first.
  levels_[0].insert(levels_[0].begin(), std::move(meta));
  memtable_.Reset();
  return OkStatus();
}

uint64_t LsmDb::LevelBytes(int level) const {
  uint64_t total = 0;
  for (const auto& meta : levels_[static_cast<size_t>(level)]) {
    total += meta.size;
  }
  return total;
}

uint64_t LsmDb::MaxBytesForLevel(int level) const {
  uint64_t budget = options_.level_base_bytes;
  for (int l = 1; l < level; ++l) {
    budget *= 10;
  }
  return budget;
}

int LsmDb::NumFilesAtLevel(int level) const {
  return static_cast<int>(levels_[static_cast<size_t>(level)].size());
}

uint64_t LsmDb::TotalDataBytes() const {
  uint64_t total = 0;
  for (const auto& level : levels_) {
    for (const auto& meta : level) {
      total += meta.size;
    }
  }
  return total;
}

Status LsmDb::MaybeCompact(Lane& trigger_lane) {
  // Background compaction: runs on the compaction lane, whose clock is
  // synced forward to the trigger point (the thread was idle until now).
  compaction_lane_.AdvanceTo(trigger_lane.now_ns());

  int rounds = 0;
  while (rounds++ < 8) {
    if (NumFilesAtLevel(0) >= options_.l0_compaction_trigger) {
      CACHE_EXT_RETURN_IF_ERROR(CompactLevel(0));
      continue;
    }
    bool compacted = false;
    for (int level = 1; level < options_.num_levels - 1; ++level) {
      if (LevelBytes(level) > MaxBytesForLevel(level)) {
        CACHE_EXT_RETURN_IF_ERROR(CompactLevel(level));
        compacted = true;
        break;
      }
    }
    if (!compacted) {
      break;
    }
  }
  return OkStatus();
}

Status LsmDb::CompactLevel(int level) {
  ++compactions_run_;
  auto& inputs = levels_[static_cast<size_t>(level)];
  std::vector<size_t> input_indices;
  std::string smallest;
  std::string largest;
  if (level == 0) {
    // Compact all of L0 (files overlap).
    for (size_t i = 0; i < inputs.size(); ++i) {
      input_indices.push_back(i);
    }
  } else {
    // Pick the oldest (first) file.
    input_indices.push_back(0);
  }
  if (input_indices.empty()) {
    return OkStatus();
  }
  smallest = inputs[input_indices[0]].smallest;
  largest = inputs[input_indices[0]].largest;
  for (const size_t i : input_indices) {
    smallest = std::min(smallest, inputs[i].smallest);
    largest = std::max(largest, inputs[i].largest);
  }

  // Overlapping files in the output level.
  const int output_level = level + 1;
  std::vector<size_t> overlaps;
  auto& outputs = levels_[static_cast<size_t>(output_level)];
  for (size_t i = 0; i < outputs.size(); ++i) {
    if (outputs[i].largest >= smallest && outputs[i].smallest <= largest) {
      overlaps.push_back(i);
    }
  }
  return MergeFiles(level, std::move(input_indices), output_level,
                    std::move(overlaps));
}

Status LsmDb::MergeFiles(int input_level, std::vector<size_t> input_indices,
                         int output_level,
                         std::vector<size_t> overlap_indices) {
  Lane& lane = compaction_lane_;
  ScopedCurrentTask task(lane.task());

  // Sources, newest first: input level files (L0 already newest-first),
  // then the output level's overlapping (older) files.
  std::vector<std::unique_ptr<Source>> sources;
  auto& inputs = levels_[static_cast<size_t>(input_level)];
  auto& outputs = levels_[static_cast<size_t>(output_level)];
  for (const size_t i : input_indices) {
    auto table = OpenTable(lane, &inputs[i]);
    CACHE_EXT_RETURN_IF_ERROR(table.status());
    sources.push_back(std::make_unique<TableSource>(table->get(), lane, ""));
  }
  for (const size_t i : overlap_indices) {
    auto table = OpenTable(lane, &outputs[i]);
    CACHE_EXT_RETURN_IF_ERROR(table.status());
    sources.push_back(std::make_unique<TableSource>(table->get(), lane, ""));
  }

  const bool bottom_level = output_level == options_.num_levels - 1;
  MergingIterator merge(std::move(sources));
  std::vector<FileMeta> new_files;
  std::unique_ptr<SSTableBuilder> builder;
  FileMeta current;

  const auto finish_current = [&]() -> Status {
    if (builder == nullptr) {
      return OkStatus();
    }
    auto size = builder->Finish(lane);
    CACHE_EXT_RETURN_IF_ERROR(size.status());
    current.size = *size;
    current.smallest = builder->smallest_key();
    current.largest = builder->largest_key();
    new_files.push_back(std::move(current));
    builder.reset();
    return OkStatus();
  };

  while (merge.Valid()) {
    // Drop tombstones when merging into the bottom level.
    if (!(bottom_level && merge.tombstone())) {
      if (builder == nullptr) {
        current = FileMeta();
        current.number = next_file_number_;
        current.name = NewFileName();
        builder = std::make_unique<SSTableBuilder>(pc_, cg_, current.name);
      }
      CACHE_EXT_RETURN_IF_ERROR(
          builder->Add(merge.key(), merge.value(), merge.tombstone()));
      if (builder->EstimatedBytes() >= options_.target_file_bytes) {
        CACHE_EXT_RETURN_IF_ERROR(finish_current());
      }
    }
    CACHE_EXT_RETURN_IF_ERROR(merge.Next());
  }
  CACHE_EXT_RETURN_IF_ERROR(finish_current());

  // Delete the merged inputs (folio removal in circumvention of eviction).
  std::vector<std::string> doomed;
  for (const size_t i : input_indices) {
    doomed.push_back(inputs[i].name);
  }
  for (const size_t i : overlap_indices) {
    doomed.push_back(outputs[i].name);
  }

  // Rebuild the level file lists.
  std::vector<FileMeta> remaining_inputs;
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (std::find(input_indices.begin(), input_indices.end(), i) ==
        input_indices.end()) {
      remaining_inputs.push_back(std::move(inputs[i]));
    }
  }
  inputs = std::move(remaining_inputs);

  std::vector<FileMeta> remaining_outputs;
  for (size_t i = 0; i < outputs.size(); ++i) {
    if (std::find(overlap_indices.begin(), overlap_indices.end(), i) ==
        overlap_indices.end()) {
      remaining_outputs.push_back(std::move(outputs[i]));
    }
  }
  for (auto& meta : new_files) {
    remaining_outputs.push_back(std::move(meta));
  }
  std::sort(remaining_outputs.begin(), remaining_outputs.end(),
            [](const FileMeta& a, const FileMeta& b) {
              return a.smallest < b.smallest;
            });
  outputs = std::move(remaining_outputs);

  for (const std::string& name : doomed) {
    auto as = pc_->OpenFile(name);
    CACHE_EXT_RETURN_IF_ERROR(as.status());
    CACHE_EXT_RETURN_IF_ERROR(pc_->DeleteFile(lane, *as));
  }
  return OkStatus();
}

Status LsmDb::BulkLoad(
    Lane& lane,
    const std::function<bool(std::string*, std::string*)>& next) {
  if (TotalDataBytes() != 0 || !memtable_.empty()) {
    return FailedPrecondition("BulkLoad requires an empty DB");
  }
  const int bottom = options_.num_levels - 1;
  auto& level = levels_[static_cast<size_t>(bottom)];
  std::unique_ptr<SSTableBuilder> builder;
  FileMeta current;
  std::string key;
  std::string value;
  std::string prev_key;

  const auto finish_current = [&]() -> Status {
    if (builder == nullptr) {
      return OkStatus();
    }
    auto size = builder->Finish(lane);
    CACHE_EXT_RETURN_IF_ERROR(size.status());
    current.size = *size;
    current.smallest = builder->smallest_key();
    current.largest = builder->largest_key();
    level.push_back(std::move(current));
    builder.reset();
    return OkStatus();
  };

  while (next(&key, &value)) {
    if (!prev_key.empty() && key <= prev_key) {
      return InvalidArgument("BulkLoad keys must be strictly increasing");
    }
    prev_key = key;
    if (builder == nullptr) {
      current = FileMeta();
      current.number = next_file_number_;
      current.name = NewFileName();
      builder = std::make_unique<SSTableBuilder>(pc_, cg_, current.name);
    }
    CACHE_EXT_RETURN_IF_ERROR(builder->Add(key, value, /*tombstone=*/false));
    if (builder->EstimatedBytes() >= options_.target_file_bytes) {
      CACHE_EXT_RETURN_IF_ERROR(finish_current());
    }
  }
  return finish_current();
}

}  // namespace cache_ext::lsm
