// Fixed-point arithmetic helpers.
//
// eBPF programs cannot use floating point, so the paper's LHD policy scales
// values by a large constant (§5.2). Our policy implementations honor the
// same constraint and use these Q32.32 helpers instead of doubles.

#ifndef SRC_UTIL_FIXED_POINT_H_
#define SRC_UTIL_FIXED_POINT_H_

#include <cstdint>

namespace cache_ext {

// Q32.32: value = raw / 2^32.
class Fixed {
 public:
  static constexpr int kFracBits = 32;
  static constexpr uint64_t kOneRaw = 1ULL << kFracBits;

  constexpr Fixed() : raw_(0) {}

  static constexpr Fixed FromRaw(int64_t raw) {
    Fixed f;
    f.raw_ = raw;
    return f;
  }
  static constexpr Fixed FromInt(int64_t v) {
    return FromRaw(v << kFracBits);
  }
  // Ratio num/den as fixed point. den must be nonzero.
  static constexpr Fixed FromRatio(int64_t num, int64_t den) {
    return FromRaw(static_cast<int64_t>(
        (static_cast<__int128>(num) << kFracBits) / den));
  }

  constexpr int64_t raw() const { return raw_; }
  constexpr int64_t ToInt() const { return raw_ >> kFracBits; }
  constexpr double ToDouble() const {
    return static_cast<double>(raw_) / static_cast<double>(kOneRaw);
  }

  constexpr Fixed operator+(Fixed o) const { return FromRaw(raw_ + o.raw_); }
  constexpr Fixed operator-(Fixed o) const { return FromRaw(raw_ - o.raw_); }
  constexpr Fixed operator*(Fixed o) const {
    return FromRaw(static_cast<int64_t>(
        (static_cast<__int128>(raw_) * o.raw_) >> kFracBits));
  }
  constexpr Fixed operator/(Fixed o) const {
    return FromRaw(static_cast<int64_t>(
        (static_cast<__int128>(raw_) << kFracBits) / o.raw_));
  }

  constexpr bool operator==(Fixed o) const { return raw_ == o.raw_; }
  constexpr bool operator!=(Fixed o) const { return raw_ != o.raw_; }
  constexpr bool operator<(Fixed o) const { return raw_ < o.raw_; }
  constexpr bool operator<=(Fixed o) const { return raw_ <= o.raw_; }
  constexpr bool operator>(Fixed o) const { return raw_ > o.raw_; }
  constexpr bool operator>=(Fixed o) const { return raw_ >= o.raw_; }

  // Exponentially weighted moving average toward `sample` with weight
  // alpha (also fixed point, in [0,1]): this = alpha*sample + (1-alpha)*this.
  void Ewma(Fixed sample, Fixed alpha) {
    *this = alpha * sample + (Fixed::FromInt(1) - alpha) * *this;
  }

 private:
  int64_t raw_;
};

}  // namespace cache_ext

#endif  // SRC_UTIL_FIXED_POINT_H_
