#include "src/util/histogram.h"

#include <bit>
#include <limits>

#include "src/util/logging.h"

namespace cache_ext {

Histogram::Histogram()
    : buckets_(kNumBuckets),
      total_count_(0),
      sum_(0),
      min_(std::numeric_limits<uint64_t>::max()),
      max_(0) {}

int Histogram::BucketFor(uint64_t value) {
  if (value < kSubBuckets) {
    // Values below the sub-bucket count are exact (group 0 is linear).
    return static_cast<int>(value);
  }
  const int msb = 63 - std::countl_zero(value);
  const int group = msb - kSubBucketBits + 1;
  const int sub =
      static_cast<int>((value >> (msb - kSubBucketBits)) & (kSubBuckets - 1));
  const int bucket = group * kSubBuckets + sub;
  DCHECK(bucket < kNumBuckets);
  return bucket;
}

uint64_t Histogram::BucketUpperBound(int bucket) {
  const int group = bucket / kSubBuckets;
  const int sub = bucket % kSubBuckets;
  if (group == 0) {
    return static_cast<uint64_t>(sub);
  }
  const int shift = group - 1;
  // Reconstruct: value had MSB at (group + kSubBucketBits - 1), with the next
  // kSubBucketBits bits equal to `sub`'s low bits.
  const uint64_t base = (1ULL << (kSubBucketBits + shift)) |
                        (static_cast<uint64_t>(sub) << shift);
  return base + ((1ULL << shift) - 1);
}

void Histogram::Record(uint64_t value) { RecordMany(value, 1); }

void Histogram::RecordMany(uint64_t value, uint64_t count) {
  if (count == 0) {
    return;
  }
  buckets_[BucketFor(value)].fetch_add(count, std::memory_order_relaxed);
  total_count_.fetch_add(count, std::memory_order_relaxed);
  sum_.fetch_add(value * count, std::memory_order_relaxed);
  uint64_t prev_min = min_.load(std::memory_order_relaxed);
  while (value < prev_min &&
         !min_.compare_exchange_weak(prev_min, value,
                                     std::memory_order_relaxed)) {
  }
  uint64_t prev_max = max_.load(std::memory_order_relaxed);
  while (value > prev_max &&
         !max_.compare_exchange_weak(prev_max, value,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) {
      buckets_[i].fetch_add(n, std::memory_order_relaxed);
    }
  }
  total_count_.fetch_add(other.total_count_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  RecordMinMax(other);
}

void Histogram::RecordMinMax(const Histogram& other) {
  uint64_t other_min = other.min_.load(std::memory_order_relaxed);
  uint64_t prev_min = min_.load(std::memory_order_relaxed);
  while (other_min < prev_min &&
         !min_.compare_exchange_weak(prev_min, other_min,
                                     std::memory_order_relaxed)) {
  }
  uint64_t other_max = other.max_.load(std::memory_order_relaxed);
  uint64_t prev_max = max_.load(std::memory_order_relaxed);
  while (other_max > prev_max &&
         !max_.compare_exchange_weak(prev_max, other_max,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  total_count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<uint64_t>::max(), std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

uint64_t Histogram::min() const {
  const uint64_t v = min_.load(std::memory_order_relaxed);
  return v == std::numeric_limits<uint64_t>::max() ? 0 : v;
}

uint64_t Histogram::max() const { return max_.load(std::memory_order_relaxed); }

double Histogram::Mean() const {
  const uint64_t n = count();
  if (n == 0) {
    return 0.0;
  }
  return static_cast<double>(sum_.load(std::memory_order_relaxed)) /
         static_cast<double>(n);
}

uint64_t Histogram::Percentile(double q) const {
  const uint64_t n = count();
  if (n == 0) {
    return 0;
  }
  if (q < 0.0) {
    q = 0.0;
  }
  if (q > 1.0) {
    q = 1.0;
  }
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(n) + 0.5);
  if (target == 0) {
    target = 1;
  }
  if (target > n) {
    target = n;
  }
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= target) {
      const uint64_t bound = BucketUpperBound(i);
      // Never report beyond the recorded max.
      const uint64_t mx = max();
      return bound < mx ? bound : mx;
    }
  }
  return max();
}

}  // namespace cache_ext
