// Clang thread-safety annotations (-Wthread-safety) and an annotated mutex.
//
// The lock hierarchy introduced by the sharded page-cache hot path is easy
// to get wrong silently; these macros let Clang prove lock discipline at
// compile time when the build enables CACHE_EXT_THREAD_SAFETY (see the
// top-level CMakeLists). Under GCC — which has no thread-safety analysis —
// every macro expands to nothing and Mutex is a plain std::mutex wrapper.
//
// Usage mirrors the kernel's lockdep annotations and abseil's macros:
//   Mutex mu_;
//   Folio* head_ CACHE_EXT_GUARDED_BY(mu_);
//   void Drain() CACHE_EXT_REQUIRES(mu_);

#ifndef SRC_UTIL_THREAD_ANNOTATIONS_H_
#define SRC_UTIL_THREAD_ANNOTATIONS_H_

#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && defined(CACHE_EXT_THREAD_SAFETY_ANALYSIS)
#define CACHE_EXT_TSA(x) __attribute__((x))
#else
#define CACHE_EXT_TSA(x)
#endif

#define CACHE_EXT_CAPABILITY(x) CACHE_EXT_TSA(capability(x))
#define CACHE_EXT_SCOPED_CAPABILITY CACHE_EXT_TSA(scoped_lockable)
#define CACHE_EXT_GUARDED_BY(x) CACHE_EXT_TSA(guarded_by(x))
#define CACHE_EXT_PT_GUARDED_BY(x) CACHE_EXT_TSA(pt_guarded_by(x))
#define CACHE_EXT_ACQUIRED_BEFORE(...) CACHE_EXT_TSA(acquired_before(__VA_ARGS__))
#define CACHE_EXT_ACQUIRED_AFTER(...) CACHE_EXT_TSA(acquired_after(__VA_ARGS__))
#define CACHE_EXT_REQUIRES(...) CACHE_EXT_TSA(requires_capability(__VA_ARGS__))
#define CACHE_EXT_ACQUIRE(...) CACHE_EXT_TSA(acquire_capability(__VA_ARGS__))
#define CACHE_EXT_RELEASE(...) CACHE_EXT_TSA(release_capability(__VA_ARGS__))
#define CACHE_EXT_ACQUIRE_SHARED(...) \
  CACHE_EXT_TSA(acquire_shared_capability(__VA_ARGS__))
#define CACHE_EXT_RELEASE_SHARED(...) \
  CACHE_EXT_TSA(release_shared_capability(__VA_ARGS__))
#define CACHE_EXT_TRY_ACQUIRE(...) CACHE_EXT_TSA(try_acquire_capability(__VA_ARGS__))
#define CACHE_EXT_EXCLUDES(...) CACHE_EXT_TSA(locks_excluded(__VA_ARGS__))
#define CACHE_EXT_NO_TSA CACHE_EXT_TSA(no_thread_safety_analysis)

namespace cache_ext {

// std::mutex wrapped so it can carry the capability attribute. Methods are
// named after std::mutex so std::lock_guard-style adapters work, but the
// annotated MutexLock below is preferred.
class CACHE_EXT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CACHE_EXT_ACQUIRE() { mu_.lock(); }
  void unlock() CACHE_EXT_RELEASE() { mu_.unlock(); }
  bool try_lock() CACHE_EXT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// RAII lock with the scoped-capability annotation.
class CACHE_EXT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CACHE_EXT_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() CACHE_EXT_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// std::shared_mutex wrapped the same way, for read-mostly structures
// (e.g. the folio-storage slot directory, where every folio free is a
// reader and only map attach/detach writes).
class CACHE_EXT_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() CACHE_EXT_ACQUIRE() { mu_.lock(); }
  void unlock() CACHE_EXT_RELEASE() { mu_.unlock(); }
  void lock_shared() CACHE_EXT_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() CACHE_EXT_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

class CACHE_EXT_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) CACHE_EXT_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterMutexLock() CACHE_EXT_RELEASE() { mu_.unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

class CACHE_EXT_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) CACHE_EXT_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderMutexLock() CACHE_EXT_RELEASE() { mu_.unlock_shared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace cache_ext

#endif  // SRC_UTIL_THREAD_ANNOTATIONS_H_
