// Lightweight Status / Expected error-handling primitives.
//
// The library does not use exceptions (consistent with kernel-adjacent systems
// code); fallible operations return Status or Expected<T>.

#ifndef SRC_UTIL_STATUS_H_
#define SRC_UTIL_STATUS_H_

#include <cassert>
#include <string>
#include <string_view>
#include <utility>

namespace cache_ext {

// Error categories, loosely mirroring absl::StatusCode / kernel errno classes.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kUnavailable,
  kPermissionDenied,
  kIoError,
  kCorruption,
  kInternal,
};

std::string_view ErrorCodeName(ErrorCode code);

// A cheap, copyable status: an error code plus an optional human-readable
// message. The OK status carries no allocation.
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  explicit Status(ErrorCode code) : code_(code) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "NOT_FOUND: no such file" style rendering for logs and test failures.
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  ErrorCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }

inline Status InvalidArgument(std::string msg) {
  return Status(ErrorCode::kInvalidArgument, std::move(msg));
}
inline Status NotFound(std::string msg) {
  return Status(ErrorCode::kNotFound, std::move(msg));
}
inline Status AlreadyExists(std::string msg) {
  return Status(ErrorCode::kAlreadyExists, std::move(msg));
}
inline Status OutOfRange(std::string msg) {
  return Status(ErrorCode::kOutOfRange, std::move(msg));
}
inline Status ResourceExhausted(std::string msg) {
  return Status(ErrorCode::kResourceExhausted, std::move(msg));
}
inline Status FailedPrecondition(std::string msg) {
  return Status(ErrorCode::kFailedPrecondition, std::move(msg));
}
inline Status Unavailable(std::string msg) {
  return Status(ErrorCode::kUnavailable, std::move(msg));
}
inline Status PermissionDenied(std::string msg) {
  return Status(ErrorCode::kPermissionDenied, std::move(msg));
}
inline Status IoError(std::string msg) {
  return Status(ErrorCode::kIoError, std::move(msg));
}
inline Status Corruption(std::string msg) {
  return Status(ErrorCode::kCorruption, std::move(msg));
}
inline Status Internal(std::string msg) {
  return Status(ErrorCode::kInternal, std::move(msg));
}

// Expected<T>: either a value or a non-OK Status (std::expected is C++23, so
// we provide the minimal subset the library needs).
template <typename T>
class Expected {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Expected(T value) : ok_(true) { new (&value_) T(std::move(value)); }
  Expected(Status status) : ok_(false) {
    assert(!status.ok() && "Expected<T> requires a non-OK status");
    new (&status_) Status(std::move(status));
  }

  Expected(const Expected& other) : ok_(other.ok_) {
    if (ok_) {
      new (&value_) T(other.value_);
    } else {
      new (&status_) Status(other.status_);
    }
  }
  Expected(Expected&& other) noexcept : ok_(other.ok_) {
    if (ok_) {
      new (&value_) T(std::move(other.value_));
    } else {
      new (&status_) Status(std::move(other.status_));
    }
  }
  Expected& operator=(const Expected& other) {
    if (this != &other) {
      this->~Expected();
      new (this) Expected(other);
    }
    return *this;
  }
  Expected& operator=(Expected&& other) noexcept {
    if (this != &other) {
      this->~Expected();
      new (this) Expected(std::move(other));
    }
    return *this;
  }
  ~Expected() {
    if (ok_) {
      value_.~T();
    } else {
      status_.~Status();
    }
  }

  bool ok() const { return ok_; }
  explicit operator bool() const { return ok_; }

  Status status() const { return ok_ ? Status::Ok() : status_; }

  T& value() & {
    assert(ok_);
    return value_;
  }
  const T& value() const& {
    assert(ok_);
    return value_;
  }
  T&& value() && {
    assert(ok_);
    return std::move(value_);
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const {
    return ok_ ? value_ : std::move(fallback);
  }

 private:
  bool ok_;
  union {
    T value_;
    Status status_;
  };
};

// Propagation helpers (statement-expression free; usable in any function that
// returns Status or Expected<T>).
#define CACHE_EXT_RETURN_IF_ERROR(expr)            \
  do {                                             \
    ::cache_ext::Status _st = (expr);              \
    if (!_st.ok()) {                               \
      return _st;                                  \
    }                                              \
  } while (0)

#define CACHE_EXT_ASSIGN_OR_RETURN(lhs, expr)      \
  auto _expected_##__LINE__ = (expr);              \
  if (!_expected_##__LINE__.ok()) {                \
    return _expected_##__LINE__.status();          \
  }                                                \
  lhs = std::move(_expected_##__LINE__).value()

}  // namespace cache_ext

#endif  // SRC_UTIL_STATUS_H_
