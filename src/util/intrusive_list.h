// Intrusive doubly-linked list, modeled on the kernel's struct list_head.
//
// The page cache keeps folios on LRU lists without allocating per-entry
// nodes; the node is embedded in the object. The list does not own its
// elements. An unlinked node points to itself (kernel LIST_HEAD_INIT style)
// so IsLinked() is O(1) and double-unlink is detectable.

#ifndef SRC_UTIL_INTRUSIVE_LIST_H_
#define SRC_UTIL_INTRUSIVE_LIST_H_

#include <cstddef>
#include <cstdint>

#include "src/util/logging.h"

namespace cache_ext {

struct ListNode {
  ListNode() { Reset(); }
  ListNode(const ListNode&) = delete;
  ListNode& operator=(const ListNode&) = delete;

  void Reset() {
    prev = this;
    next = this;
  }

  bool IsLinked() const { return next != this; }

  ListNode* prev;
  ListNode* next;
};

// List of T with a ListNode member at the given offset. Usage:
//   struct Folio { ListNode lru; ... };
//   IntrusiveList<Folio, &Folio::lru> list;
template <typename T, ListNode T::* NodeMember>
class IntrusiveList {
 public:
  IntrusiveList() = default;
  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  bool empty() const { return !head_.IsLinked(); }
  size_t size() const { return size_; }

  static ListNode* NodeOf(T* obj) { return &(obj->*NodeMember); }

  static T* ObjectOf(ListNode* node) {
    // Compute the offset of the member within T without invoking UB on a
    // null pointer: use a dummy aligned buffer address.
    alignas(T) static char probe_storage[sizeof(T)];
    T* probe = reinterpret_cast<T*>(probe_storage);
    const auto offset = reinterpret_cast<uintptr_t>(&(probe->*NodeMember)) -
                        reinterpret_cast<uintptr_t>(probe);
    return reinterpret_cast<T*>(reinterpret_cast<uintptr_t>(node) - offset);
  }

  void PushFront(T* obj) { InsertAfter(&head_, NodeOf(obj)); }
  void PushBack(T* obj) { InsertAfter(head_.prev, NodeOf(obj)); }

  // Remove obj from this list. obj must be linked (in this list).
  void Remove(T* obj) {
    ListNode* node = NodeOf(obj);
    DCHECK(node->IsLinked());
    node->prev->next = node->next;
    node->next->prev = node->prev;
    node->Reset();
    DCHECK(size_ > 0);
    --size_;
  }

  T* Front() const {
    return empty() ? nullptr : ObjectOf(head_.next);
  }
  T* Back() const {
    return empty() ? nullptr : ObjectOf(head_.prev);
  }

  T* PopFront() {
    T* obj = Front();
    if (obj != nullptr) {
      Remove(obj);
    }
    return obj;
  }
  T* PopBack() {
    T* obj = Back();
    if (obj != nullptr) {
      Remove(obj);
    }
    return obj;
  }

  void MoveToFront(T* obj) {
    Remove(obj);
    PushFront(obj);
  }
  void MoveToBack(T* obj) {
    Remove(obj);
    PushBack(obj);
  }

  // Next element after obj, or nullptr at the end.
  T* Next(T* obj) const {
    ListNode* node = NodeOf(obj)->next;
    return node == &head_ ? nullptr : ObjectOf(node);
  }
  T* Prev(T* obj) const {
    ListNode* node = NodeOf(obj)->prev;
    return node == &head_ ? nullptr : ObjectOf(node);
  }

  // Splice all elements of other onto the back of this list.
  void SpliceBack(IntrusiveList* other) {
    if (other->empty()) {
      return;
    }
    ListNode* first = other->head_.next;
    ListNode* last = other->head_.prev;
    ListNode* tail = head_.prev;
    tail->next = first;
    first->prev = tail;
    last->next = &head_;
    head_.prev = last;
    size_ += other->size_;
    other->head_.Reset();
    other->size_ = 0;
  }

  // Range-for support.
  class Iterator {
   public:
    Iterator(ListNode* node, const ListNode* head) : node_(node), head_(head) {}
    T& operator*() const { return *ObjectOf(node_); }
    T* operator->() const { return ObjectOf(node_); }
    Iterator& operator++() {
      node_ = node_->next;
      return *this;
    }
    bool operator!=(const Iterator& other) const { return node_ != other.node_; }

   private:
    ListNode* node_;
    const ListNode* head_;
  };

  Iterator begin() { return Iterator(head_.next, &head_); }
  Iterator end() { return Iterator(&head_, &head_); }

 private:
  void InsertAfter(ListNode* pos, ListNode* node) {
    DCHECK(!node->IsLinked());
    node->next = pos->next;
    node->prev = pos;
    pos->next->prev = node;
    pos->next = node;
    ++size_;
  }

  ListNode head_;
  size_t size_ = 0;
};

}  // namespace cache_ext

#endif  // SRC_UTIL_INTRUSIVE_LIST_H_
