#include "src/util/ebr.h"

#include <array>
#include <atomic>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/util/logging.h"

namespace cache_ext::ebr {
namespace {

constexpr uint64_t kDefaultPhantomTtl = 64;

struct Retired {
  void* object;
  void (*deleter)(void*);
  uint64_t epoch;
};

class Domain {
 public:
  // Upper bound on threads that have ever held a Guard concurrently with
  // other live threads. Slots are recycled at thread exit.
  static constexpr size_t kMaxSlots = 64;

  struct alignas(64) Slot {
    // (epoch << 1) | active. Seq_cst on both sides: the reader's exit store
    // and the advancer's scan load form the happens-before edge that makes
    // the deferred free race-free (and visible to TSan, which does not
    // model standalone fences).
    std::atomic<uint64_t> state{0};
    std::atomic<bool> live{false};
  };

  // Leaked: retired objects may outlive every other static.
  static Domain& Get() {
    static Domain* domain = new Domain();
    return *domain;
  }

  Slot* AcquireSlot() {
    for (size_t i = 0; i < kMaxSlots; ++i) {
      bool expected = false;
      if (slots_[i].live.compare_exchange_strong(expected, true,
                                                 std::memory_order_acq_rel)) {
        size_t hw = high_water_.load(std::memory_order_relaxed);
        while (hw < i + 1 && !high_water_.compare_exchange_weak(
                                 hw, i + 1, std::memory_order_relaxed)) {
        }
        return &slots_[i];
      }
    }
    LOG_FATAL << "ebr: more than " << kMaxSlots << " concurrent reader threads";
    return nullptr;
  }

  void ReleaseSlot(Slot* slot) {
    slot->state.store(0, std::memory_order_seq_cst);
    slot->live.store(false, std::memory_order_release);
  }

  uint64_t Epoch() const { return epoch_.load(std::memory_order_seq_cst); }

  void Retire(void* object, void (*deleter)(void*)) {
    {
      std::lock_guard<std::mutex> lock(retire_mu_);
      // Tagging under retire_mu_ (which also serializes advances) keeps the
      // deque's epochs non-decreasing, so frees pop from the front.
      retired_.push_back({object, deleter, Epoch()});
      retired_count_.fetch_add(1, std::memory_order_relaxed);
    }
    // Opportunistic: two steps are a full grace period, so a quiescent
    // (reader-free) process frees the object before Retire returns —
    // matching the eager-delete semantics callers had before EBR. Any
    // active reader simply blocks the step and the object stays deferred.
    TryAdvance();
    TryAdvance();
  }

  bool TryAdvance() {
    std::vector<Retired> to_free;
    {
      std::lock_guard<std::mutex> lock(retire_mu_);
      // ebr.stall: a phantom reader pinned at the current epoch. The ttl
      // counts *blocked advance attempts* (reclaim-side retries), the
      // virtual-time analogue of a reader wedged in its critical section.
      if (!phantom_active_) {
        uint64_t magnitude = 0;
        if (fault::InjectFault(fault::points::kEbrStall, &magnitude)) {
          phantom_active_ = true;
          phantom_ttl_ = magnitude == 0 ? kDefaultPhantomTtl : magnitude;
        }
      }
      if (phantom_active_) {
        if (--phantom_ttl_ == 0) {
          phantom_active_ = false;
        }
        return false;
      }

      const uint64_t e = epoch_.load(std::memory_order_seq_cst);
      const size_t hw = high_water_.load(std::memory_order_relaxed);
      for (size_t i = 0; i < hw; ++i) {
        const uint64_t s = slots_[i].state.load(std::memory_order_seq_cst);
        if ((s & 1) != 0 && (s >> 1) != e) {
          // An active reader still pinned at the previous epoch: it may
          // hold references retired one grace period ago.
          return false;
        }
      }
      const uint64_t next = e + 1;
      epoch_.store(next, std::memory_order_seq_cst);
      while (!retired_.empty() && retired_.front().epoch + 2 <= next) {
        to_free.push_back(retired_.front());
        retired_.pop_front();
      }
    }
    // Deleters run outside retire_mu_: they may take their own locks
    // (~Folio walks the local-storage directory) and must not nest under
    // the reclamation lock.
    for (const Retired& r : to_free) {
      r.deleter(r.object);
    }
    if (!to_free.empty()) {
      retired_count_.fetch_sub(to_free.size(), std::memory_order_relaxed);
      freed_count_.fetch_add(to_free.size(), std::memory_order_relaxed);
    }
    return true;
  }

  uint64_t retired_count() const {
    return retired_count_.load(std::memory_order_relaxed);
  }
  uint64_t freed_count() const {
    return freed_count_.load(std::memory_order_relaxed);
  }

  size_t ActiveReaders() {
    size_t n = 0;
    const size_t hw = high_water_.load(std::memory_order_relaxed);
    for (size_t i = 0; i < hw; ++i) {
      if ((slots_[i].state.load(std::memory_order_seq_cst) & 1) != 0) {
        ++n;
      }
    }
    std::lock_guard<std::mutex> lock(retire_mu_);
    return n + (phantom_active_ ? 1 : 0);
  }

 private:
  // Starts at 2 so `epoch + 2 <= next` never deals with pre-history.
  std::atomic<uint64_t> epoch_{2};
  std::array<Slot, kMaxSlots> slots_{};
  std::atomic<size_t> high_water_{0};

  // Serializes advances and guards the deferred-free list + phantom state.
  // Leaf lock: nothing is acquired while it is held.
  std::mutex retire_mu_;
  std::deque<Retired> retired_;
  bool phantom_active_ = false;
  uint64_t phantom_ttl_ = 0;

  std::atomic<uint64_t> retired_count_{0};
  std::atomic<uint64_t> freed_count_{0};
};

struct ThreadState {
  Domain::Slot* slot = nullptr;
  int depth = 0;

  ~ThreadState() {
    if (slot != nullptr) {
      Domain::Get().ReleaseSlot(slot);
      slot = nullptr;
    }
  }
};

ThreadState& Tls() {
  thread_local ThreadState state;
  return state;
}

}  // namespace

Guard::Guard() {
  ThreadState& ts = Tls();
  if (ts.depth++ > 0) {
    return;  // nested: the outermost guard's pin covers us
  }
  if (ts.slot == nullptr) {
    ts.slot = Domain::Get().AcquireSlot();
  }
  Domain& domain = Domain::Get();
  // Publish-and-recheck: after announcing (e, active) the epoch is read
  // again; if an advancer moved it concurrently it cannot have relied on
  // this slot being inactive beyond the epoch we now re-publish.
  uint64_t e = domain.Epoch();
  for (;;) {
    ts.slot->state.store((e << 1) | 1, std::memory_order_seq_cst);
    const uint64_t now = domain.Epoch();
    if (now == e) {
      break;
    }
    e = now;
  }
}

Guard::~Guard() {
  ThreadState& ts = Tls();
  DCHECK(ts.depth > 0);
  if (--ts.depth > 0) {
    return;
  }
  ts.slot->state.store(0, std::memory_order_seq_cst);
}

void Retire(void* object, void (*deleter)(void*)) {
  Domain::Get().Retire(object, deleter);
}

bool TryAdvance() { return Domain::Get().TryAdvance(); }

void Synchronize() {
  // A thread inside its own read-side section can never observe a full
  // grace period: it would spin on its own pin forever.
  CHECK(Tls().depth == 0);
  Domain& domain = Domain::Get();
  const uint64_t target = domain.Epoch() + 2;
  while (domain.Epoch() < target) {
    if (!domain.TryAdvance()) {
      std::this_thread::yield();
    }
  }
}

uint64_t RetiredCount() { return Domain::Get().retired_count(); }
uint64_t FreedCount() { return Domain::Get().freed_count(); }
uint64_t GlobalEpoch() { return Domain::Get().Epoch(); }
size_t ActiveReaders() { return Domain::Get().ActiveReaders(); }

}  // namespace cache_ext::ebr
