// Epoch-based reclamation (EBR): the userspace analogue of RCU for the
// simulation's lockless read paths.
//
// Readers enter a critical section with ebr::Guard (rcu_read_lock); writers
// logically unlink an object under their usual locks and hand it to
// ebr::Retire (kfree_rcu). The object is destroyed only after every reader
// that could still hold a reference has left its critical section.
//
// Scheme: the classic three-epoch design. A global epoch E advances one step
// at a time; each thread owns a cache-line-padded slot publishing
// (epoch << 1) | active. The epoch may advance from E to E+1 only when every
// active reader is pinned at E, so an object retired in epoch r is
// unreachable by the time the epoch reaches r+2: readers that could have
// seen it entered at epoch <= r, and both intervening advances proved those
// readers gone. TryAdvance performs one step; Retire opportunistically
// attempts two so a quiescent (reader-free) process frees retired objects
// immediately, matching the eager-delete semantics the page cache had
// before EBR.
//
// Memory ordering: every epoch/slot access is seq_cst. The textbook
// formulation uses relaxed slot stores plus standalone seq_cst fences, but
// ThreadSanitizer does not model atomic_thread_fence — the all-seq_cst
// accesses keep the happens-before edges visible to TSan (reader exit
// store -> advancer scan load -> deferred free) at a cost that does not
// matter off the fast path. Guard entry re-checks the epoch after
// publishing its slot, so an advancer can never miss a reader that entered
// before the advance scanned its slot.
//
// The `ebr.stall` fault point (src/fault) injects a *phantom reader* pinned
// at the current epoch for `magnitude` blocked advance attempts (default
// 64) — the analogue of a reader wedged inside rcu_read_lock — so chaos
// tests can prove writers keep making progress while frees are deferred.

#ifndef SRC_UTIL_EBR_H_
#define SRC_UTIL_EBR_H_

#include <cstddef>
#include <cstdint>

namespace cache_ext::ebr {

// RAII read-side critical section (rcu_read_lock / rcu_read_unlock).
// Re-entrant: nested guards on the same thread are free and keep the
// outermost pin. Objects observed through an EBR-published pointer remain
// allocated until the outermost guard on this thread is destroyed.
class Guard {
 public:
  Guard();
  ~Guard();
  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;
};

// Defers `deleter(object)` until all current readers are gone (kfree_rcu).
// The caller must have already unlinked the object from every shared
// structure. Safe to call with or without locks held, but NOT from inside a
// Guard on the same thread if the caller then expects the free to have run.
void Retire(void* object, void (*deleter)(void*));

template <typename T>
void Retire(T* object) {
  Retire(static_cast<void*>(object),
         [](void* p) { delete static_cast<T*>(p); });
}

// One epoch step. Returns false when an active reader (or an injected
// phantom reader) is pinned at the current epoch. On success, frees every
// object whose grace period has elapsed.
bool TryAdvance();

// Blocks until every object retired before the call has been freed
// (synchronize_rcu + drain). Must not be called under a Guard.
void Synchronize();

// --- Introspection (tests, chaos assertions) -------------------------------

// Objects retired but not yet freed.
uint64_t RetiredCount();
// Objects freed since process start.
uint64_t FreedCount();
uint64_t GlobalEpoch();
// Threads currently inside a Guard (includes an active phantom reader).
size_t ActiveReaders();

}  // namespace cache_ext::ebr

#endif  // SRC_UTIL_EBR_H_
