#include "src/util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace cache_ext {

namespace {

std::atomic<LogLevel> g_min_level{LogLevel::kWarning};

// Serializes whole lines so concurrent lanes/threads don't interleave output.
std::mutex& OutputMutex() {
  static std::mutex mu;
  return mu;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_min_level.store(level); }
LogLevel GetLogLevel() { return g_min_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  {
    std::lock_guard<std::mutex> lock(OutputMutex());
    std::fprintf(stderr, "[%s %s:%d] %s\n", LevelTag(level_), Basename(file_),
                 line_, stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal

}  // namespace cache_ext
