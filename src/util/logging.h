// Minimal leveled logging plus CHECK macros.
//
// CHECK failures abort the process: they guard internal invariants whose
// violation means memory corruption is possible (mirroring kernel BUG_ON).

#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <sstream>
#include <string_view>

namespace cache_ext {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Global minimum level; messages below it are discarded. Default: kWarning so
// tests and benches stay quiet unless something is wrong.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the log level filters it out.
struct LogVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal

#define CACHE_EXT_LOG(level)                                                  \
  (::cache_ext::LogLevel::level < ::cache_ext::GetLogLevel())                 \
      ? (void)0                                                               \
      : ::cache_ext::internal::LogVoidify() &                                 \
            ::cache_ext::internal::LogMessage(::cache_ext::LogLevel::level,   \
                                              __FILE__, __LINE__)             \
                .stream()

#define LOG_DEBUG CACHE_EXT_LOG(kDebug)
#define LOG_INFO CACHE_EXT_LOG(kInfo)
#define LOG_WARNING CACHE_EXT_LOG(kWarning)
#define LOG_ERROR CACHE_EXT_LOG(kError)
#define LOG_FATAL                                                          \
  ::cache_ext::internal::LogMessage(::cache_ext::LogLevel::kFatal,         \
                                    __FILE__, __LINE__)                    \
      .stream()

#define CHECK(cond)                                     \
  ((cond) ? (void)0                                     \
          : (void)(LOG_FATAL << "CHECK failed: " #cond << " "))
#define CHECK_EQ(a, b) CHECK((a) == (b))
#define CHECK_NE(a, b) CHECK((a) != (b))
#define CHECK_LT(a, b) CHECK((a) < (b))
#define CHECK_LE(a, b) CHECK((a) <= (b))
#define CHECK_GT(a, b) CHECK((a) > (b))
#define CHECK_GE(a, b) CHECK((a) >= (b))
#define CHECK_NOTNULL(p) CHECK((p) != nullptr)

#ifndef NDEBUG
#define DCHECK(cond) CHECK(cond)
#else
#define DCHECK(cond) ((void)0)
#endif

}  // namespace cache_ext

#endif  // SRC_UTIL_LOGGING_H_
