// Log-linear latency histogram (HdrHistogram-style).
//
// Values are bucketed with ~3% relative precision over [1, 2^63) which is
// plenty for latency percentiles; recording is O(1) and lock-free via atomics
// so concurrent lanes can share one histogram.

#ifndef SRC_UTIL_HISTOGRAM_H_
#define SRC_UTIL_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace cache_ext {

class Histogram {
 public:
  Histogram();
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value);
  void RecordMany(uint64_t value, uint64_t count);

  // Merge another histogram's counts into this one.
  void Merge(const Histogram& other);

  void Reset();

  uint64_t count() const { return total_count_.load(std::memory_order_relaxed); }
  uint64_t min() const;
  uint64_t max() const;
  double Mean() const;

  // q in [0, 1]; returns a representative value for the bucket containing the
  // q-quantile (upper bucket bound, matching HdrHistogram's convention).
  uint64_t Percentile(double q) const;

  uint64_t P50() const { return Percentile(0.50); }
  uint64_t P90() const { return Percentile(0.90); }
  uint64_t P99() const { return Percentile(0.99); }
  uint64_t P999() const { return Percentile(0.999); }

 private:
  // 64 exponent groups x kSubBuckets linear sub-buckets per group.
  static constexpr int kSubBucketBits = 5;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;  // 32
  static constexpr int kNumBuckets = 64 * kSubBuckets;

  static int BucketFor(uint64_t value);
  static uint64_t BucketUpperBound(int bucket);
  void RecordMinMax(const Histogram& other);

  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> total_count_;
  std::atomic<uint64_t> sum_;
  std::atomic<uint64_t> min_;
  std::atomic<uint64_t> max_;
};

}  // namespace cache_ext

#endif  // SRC_UTIL_HISTOGRAM_H_
