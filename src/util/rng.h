// Deterministic pseudo-random number generation.
//
// All simulation randomness flows through Rng so experiments are reproducible
// from a single seed. The core generator is xoshiro256**, seeded via
// SplitMix64 (the construction recommended by the xoshiro authors).

#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cstdint>

#include "src/util/logging.h"

namespace cache_ext {

// SplitMix64 step; also useful as a cheap stateless hash/scrambler.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Stateless scrambler used e.g. by the scrambled-Zipfian key chooser.
inline uint64_t Mix64(uint64_t x) {
  uint64_t state = x;
  return SplitMix64(state);
}

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) {
      word = SplitMix64(sm);
    }
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0. Uses Lemire's multiply-shift
  // reduction with rejection to remove modulo bias.
  uint64_t NextU64Below(uint64_t bound) {
    DCHECK(bound > 0);
    // For simulation purposes, the bias of a single 128-bit multiply-shift is
    // negligible for bounds far below 2^64, but we reject to keep statistical
    // tests honest.
    uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<uint64_t>(m);
    if (low < bound) {
      const uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform in [lo, hi] inclusive.
  uint64_t NextU64InRange(uint64_t lo, uint64_t hi) {
    DCHECK(lo <= hi);
    return lo + NextU64Below(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  // Fork a statistically independent child stream (e.g., one per lane).
  Rng Fork() { return Rng(NextU64() ^ 0x9e3779b97f4a7c15ULL); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace cache_ext

#endif  // SRC_UTIL_RNG_H_
