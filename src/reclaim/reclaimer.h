// Per-cgroup background reclaimer lanes: the kswapd analogue.
//
// The paper's kernel counterpart keeps eviction off the fault path by letting
// kswapd run `balance_pgdat` between the low and high zone watermarks; a miss
// only does direct reclaim when allocation outruns the daemon. This module is
// that machinery for the simulated page cache:
//
//  - `CgroupReclaimControl` is the per-cgroup control block (one per
//    CgroupState, the lruvec analogue): the hysteresis latch that turns
//    watermark crossings into wakeups, the reclaimer's own virtual Lane
//    (eviction CPU time is charged here, not to the allocating reader),
//    the heartbeat the allocator-side watchdog reads, and every reclaim
//    counter surfaced through CgroupCacheStats — including PSI-style
//    `some`/`full` stall time (kernel: psi memory pressure, where `some` is
//    wall time at least one task spent stalled on reclaim and `full` is the
//    subset where no forward progress was made at all).
//
//  - `ReclaimerPool` owns the real threads of the MT harness. In the
//    single-threaded simulators there are no threads: the "lane" is purely
//    virtual and is ticked synchronously at allocation sites, which models
//    an always-prompt daemon (its CPU time still lands on its own clock).
//
// Robustness contract (the reason this file exists, ISSUE 7):
//  * Allocation NEVER blocks on a healthy reclaimer — it allocates from
//    pre-reclaimed headroom; only crossing the hard limit enters emergency
//    direct reclaim, which is bounded (stops at the limit, not the high
//    watermark) and never waits for the daemon.
//  * A stalled or dead reclaimer is detected by heartbeat comparison across
//    emergency entries (`NoteEmergencyEntry`), trips the watchdog, and is
//    re-probed with exponential backoff instead of being kicked on every
//    allocation.
//  * Fault points `reclaim.stall`, `reclaim.thread_death` and
//    `reclaim.overshoot` (armed by the chaos suite) wedge, kill, or
//    throttle a lane on demand; all InjectFault call sites live in
//    reclaimer.cc.

#ifndef SRC_RECLAIM_RECLAIMER_H_
#define SRC_RECLAIM_RECLAIMER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/reclaim/watermarks.h"
#include "src/sim/lane.h"

namespace cache_ext::reclaim {

// Master switches and robustness knobs, embedded in PageCacheOptions.
struct ReclaimOptions {
  // Enable background reclaim. False (the `reclaim.background=false`
  // ablation and the default) preserves the historical inline-only
  // behaviour: every over-limit allocation pays direct reclaim itself.
  bool background = false;
  // Real reclaimer threads (MT harness). False = virtual lanes: the daemon
  // is ticked synchronously at allocation sites in the single-threaded
  // simulators, charging its work to its own virtual clock.
  bool use_threads = false;
  uint32_t nr_threads = 2;
  // Thread poll period (microseconds of wall time) when no kick arrives;
  // the backstop that keeps a cgroup draining even if every allocator
  // gives up kicking a lane it believes stalled.
  uint32_t thread_poll_us = 200;
  // Batches one BackgroundTick may run before yielding the cgroup lock.
  uint32_t max_batches_per_tick = 64;
  // Emergency entries with an unchanged heartbeat before the allocator
  // watchdog declares the lane stalled (kernel: hung-task style detection).
  uint32_t watchdog_misses = 3;
  // Once stalled/dead, re-probe the lane only every Nth emergency entry,
  // doubling up to the cap — a dead daemon must not add a kick to every
  // single allocation.
  uint32_t probe_backoff_initial = 4;
  uint32_t probe_backoff_cap = 64;
  // Circuit-breaker feed: after this many CONSECUTIVE reclaim rounds where
  // the ext policy proposed nothing usable while the base-policy fallback
  // did evict, latch the watchdog detach (feeding the PR-2 PolicyManager
  // revert -> quarantine path). 0 disables — the default, because the
  // no-op policy legitimately proposes nothing and relies on fallback.
  uint32_t ext_failure_limit = 0;
};

enum class LaneHealth : uint8_t {
  kIdle = 0,     // below the low watermark, nothing to do
  kRunning = 1,  // actively reclaiming toward the high watermark
  kStalled = 2,  // watchdog: heartbeat stopped advancing under pressure
  kDead = 3,     // lane killed (reclaim.thread_death); never recovers
};
const char* LaneHealthName(LaneHealth health);

// Outcome of a tick attempt, decided before any eviction work.
enum class TickOutcome : uint8_t {
  kRun,      // proceed with eviction batches
  kStalled,  // wedged this tick (reclaim.stall): no progress, no heartbeat
  kDead,     // lane is dead: permanent no-op
};

// Counter snapshot, copied into CgroupCacheStats under the cgroup lock.
struct ReclaimCounterSnapshot {
  uint64_t wakeups = 0;
  uint64_t background_batches = 0;
  uint64_t background_evicted = 0;
  uint64_t background_reclaim_ns = 0;
  uint64_t direct_entries = 0;
  uint64_t direct_evicted = 0;
  uint64_t direct_reclaim_ns = 0;
  uint64_t emergency_entries = 0;
  uint64_t watchdog_trips = 0;
  uint64_t stalled_ticks = 0;
  uint64_t max_overshoot_pages = 0;
  uint64_t ext_reclaim_failures = 0;
  uint64_t psi_some_ns = 0;
  uint64_t psi_full_ns = 0;
  LaneHealth health = LaneHealth::kIdle;
};

// Per-cgroup reclaim control block. All fields are relaxed atomics: the
// heavy mutators (EnterTick, NoteBatch, NoteEmergencyEntry, NoteDirect) run
// under the owning cgroup's lock, but ShouldWake is also called from the
// ReclaimerPool's scan loop without it — a racy wake check at worst costs
// one spurious kick, never a missed limit (the hard limit is enforced by
// direct reclaim regardless).
class CgroupReclaimControl {
 public:
  explicit CgroupReclaimControl(uint32_t cgroup_id)
      : lane_(kLaneIdBase + cgroup_id, TaskContext{0, 0},
              kLaneSeed + cgroup_id) {}
  CgroupReclaimControl(const CgroupReclaimControl&) = delete;
  CgroupReclaimControl& operator=(const CgroupReclaimControl&) = delete;

  // The reclaimer's own virtual clock. Eviction work done by background
  // ticks is charged here — the whole point of the daemon is that this time
  // does NOT appear on any allocating reader's lane. Guarded by the owning
  // cgroup's lock, like the policies it drives.
  Lane& lane() { return lane_; }
  // Background eviction hooks run as the reclaimer task (pid 0/tid 0, a
  // kernel thread) — policies keying on CurrentPid see kswapd, not the
  // reader that happened to trip the wakeup. Matches kernel semantics.
  TaskContext task() const { return lane_.task(); }

  // ---- Allocator side (watermark check on the miss path) -----------------

  // Hysteresis latch: returns true while the reclaimer should be running.
  // Arms when headroom drops below the low watermark, stays armed until the
  // high watermark target is reached, and counts a wakeup only on the
  // idle->active edge — an allocation rate oscillating around one threshold
  // cannot thrash wakeups.
  bool ShouldWake(uint64_t charged_pages, const Watermarks& wm);

  // Whether a wake-path kick is worthwhile: true for a healthy lane, false
  // for one the watchdog declared stalled/dead (those are only re-probed
  // from emergency entries, with backoff).
  bool KickAllowed() const {
    const auto h = health();
    return h == LaneHealth::kIdle || h == LaneHealth::kRunning;
  }

  // Emergency direct-reclaim entry (allocation found the cgroup over its
  // hard limit despite background reclaim). Runs the allocator-side
  // watchdog: compares the lane heartbeat against the last entry, declares
  // kStalled after `watchdog_misses` unchanged observations, re-probes a
  // stalled lane with exponential backoff. Returns true when kicking the
  // lane (once more) is worthwhile before falling back to inline eviction.
  // Called under the cgroup lock.
  bool NoteEmergencyEntry(uint64_t overshoot_pages, const ReclaimOptions& opts);

  // Direct-reclaim accounting (both the inline-only ablation and the
  // emergency path): `ns` is lane time spent inside direct reclaim (PSI
  // `some`), `zero_progress_ns` the subset spent in rounds that evicted
  // nothing (PSI `full`).
  void NoteDirect(uint64_t ns, uint64_t zero_progress_ns, uint64_t evicted);

  // ---- Reclaimer side (BackgroundTick) -----------------------------------

  // Gate at the top of every tick; consults the chaos fault points.
  // reclaim.thread_death latches kDead permanently; reclaim.stall wedges
  // the next `magnitude` ticks (default 8). Called under the cgroup lock.
  TickOutcome EnterTick();
  // reclaim.overshoot: when armed, the tick stops before reaching the high
  // watermark so occupancy climbs toward the hard limit — the bounded
  // emergency path must contain the overshoot. Checked between batches.
  bool InjectedUnderReclaim();
  // One completed eviction batch: advances the heartbeat (the liveness
  // signal the allocator watchdog reads) and the progress counters.
  void NoteBatch(uint64_t evicted);
  void NoteBackgroundNs(uint64_t ns) {
    background_reclaim_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  // High-watermark headroom restored: release the hysteresis latch.
  void NoteTargetReached();

  // ---- Circuit-breaker feed (ext policy failing under reclaim) -----------

  // Called per reclaim round. A "failure" is the unambiguous signal that
  // the ext policy is broken *and* reclaim would work without it: it
  // proposed nothing usable while the base-policy fallback evicted fine.
  // Returns true when the consecutive-failure streak just hit `limit`
  // (caller latches the watchdog detach). limit == 0 disables.
  bool NoteExtRound(bool ext_made_progress, bool fallback_made_progress,
                    uint32_t limit);
  void ResetExtFailureStreak() {
    ext_failure_streak_.store(0, std::memory_order_relaxed);
  }

  // ---- Introspection -----------------------------------------------------

  LaneHealth health() const {
    return static_cast<LaneHealth>(health_.load(std::memory_order_relaxed));
  }
  uint64_t heartbeat() const {
    return heartbeat_.load(std::memory_order_relaxed);
  }
  bool dead() const { return dead_.load(std::memory_order_relaxed); }
  ReclaimCounterSnapshot Snapshot() const;

 private:
  static constexpr uint32_t kLaneIdBase = 0x6b000000;  // 'k' for kswapd
  static constexpr uint64_t kLaneSeed = 0x6b737764;    // "kswd"
  static constexpr uint64_t kDefaultStallTicks = 8;

  uint64_t Load(const std::atomic<uint64_t>& v) const {
    return v.load(std::memory_order_relaxed);
  }

  Lane lane_;

  // Hysteresis latch + health machine.
  std::atomic<bool> active_{false};
  std::atomic<uint8_t> health_{static_cast<uint8_t>(LaneHealth::kIdle)};
  std::atomic<bool> dead_{false};
  std::atomic<uint64_t> stall_ticks_remaining_{0};

  // Heartbeat (reclaimer writes, allocator watchdog reads) and the
  // watchdog's own state.
  std::atomic<uint64_t> heartbeat_{0};
  std::atomic<uint64_t> heartbeat_seen_{0};
  std::atomic<uint32_t> heartbeat_misses_{0};
  std::atomic<uint32_t> probe_backoff_{0};
  std::atomic<uint32_t> probe_countdown_{0};

  std::atomic<uint32_t> ext_failure_streak_{0};

  // Counters (ReclaimCounterSnapshot mirrors).
  std::atomic<uint64_t> wakeups_{0};
  std::atomic<uint64_t> background_batches_{0};
  std::atomic<uint64_t> background_evicted_{0};
  std::atomic<uint64_t> background_reclaim_ns_{0};
  std::atomic<uint64_t> direct_entries_{0};
  std::atomic<uint64_t> direct_evicted_{0};
  std::atomic<uint64_t> direct_reclaim_ns_{0};
  std::atomic<uint64_t> emergency_entries_{0};
  std::atomic<uint64_t> watchdog_trips_{0};
  std::atomic<uint64_t> stalled_ticks_{0};
  std::atomic<uint64_t> max_overshoot_pages_{0};
  std::atomic<uint64_t> ext_reclaim_failures_{0};
  std::atomic<uint64_t> psi_some_ns_{0};
  std::atomic<uint64_t> psi_full_ns_{0};
};

// The real reclaimer threads of the MT harness: N threads share the
// registered cgroup tokens round-robin, each parked on a condvar and woken
// by Kick() (or its poll-interval backstop). The pool knows nothing about
// the page cache — it calls back with the opaque token; the owner locks the
// cgroup and runs its BackgroundTick. Threads never touch tokens after
// Stop(), and the owner must Stop()/join before tearing down what the
// tokens point at (PageCache stops the pool before ebr::Synchronize()).
class ReclaimerPool {
 public:
  using TickFn = std::function<void(void*)>;

  ReclaimerPool(const ReclaimOptions& options, TickFn tick);
  ~ReclaimerPool();
  ReclaimerPool(const ReclaimerPool&) = delete;
  ReclaimerPool& operator=(const ReclaimerPool&) = delete;

  // Register a cgroup token; assigned to a shard round-robin. Tokens are
  // never unregistered individually — lifetime ends at Stop().
  void Register(void* token);
  // Wake the shard owning `token`. Cheap and async: allocation latency sees
  // a mutex+condvar signal, never reclaim work.
  void Kick(void* token);
  // Join all threads. Idempotent; called by the destructor.
  void Stop();

 private:
  struct Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<void*> tokens;
    bool kicked = false;
    std::thread thread;
  };

  void ThreadMain(Shard* shard);

  ReclaimOptions options_;
  TickFn tick_;
  std::atomic<bool> stopping_{false};
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<size_t> next_shard_{0};
};

}  // namespace cache_ext::reclaim

#endif  // SRC_RECLAIM_RECLAIMER_H_
