// Per-cgroup reclaim watermarks: the memcg analogue of the kernel's
// zone->_watermark[WMARK_LOW/WMARK_HIGH] pair that paces kswapd.
//
// Everything is expressed in *headroom* — free pages under the cgroup limit
// (limit_pages - charged_pages). The background reclaimer lane wakes when
// headroom falls below `low_pages` and keeps evicting until `high_pages` of
// headroom are restored, exactly like kswapd waking at zone low and going
// back to sleep at zone high (mm/vmscan.c balance_pgdat). The gap between
// the two thresholds is the hysteresis band: after a run finishes at high
// headroom, (high - low) pages must be allocated before the next wakeup, so
// an allocation rate oscillating near one threshold cannot thrash the lane.
//
// Watermarks are *derived* from the limit via per-1024 ratios (netdata's PGC
// evictor uses the same per-1000 style pressure ratios), never declared as
// absolute page counts, so they stay valid under limit and config churn:
// Derive() clamps any spec — zero, inverted, or >100% ratios included — into
// a state where Valid() holds for every limit >= 2 pages.

#ifndef SRC_RECLAIM_WATERMARKS_H_
#define SRC_RECLAIM_WATERMARKS_H_

#include <algorithm>
#include <cstdint>

#include "src/cgroup/memcg.h"

namespace cache_ext::reclaim {

// Watermark ratios in 1024ths of the cgroup limit. Defaults match
// MemCgroup's per-cgroup knobs (~1.6% wake headroom, ~4.7% sleep headroom).
struct WatermarkSpec {
  uint32_t low_per_1024 = kDefaultReclaimLowPer1024;
  uint32_t high_per_1024 = kDefaultReclaimHighPer1024;
};

struct Watermarks {
  uint64_t limit_pages = 0;
  uint64_t low_pages = 0;   // wake the reclaimer when headroom < low
  uint64_t high_pages = 0;  // reclaimer sleeps once headroom >= high

  // The invariant every derivation must uphold (and the property tests
  // hammer): 0 < low < high <= limit. A cgroup too small to carve two
  // distinct thresholds out of (limit < 2) has no valid watermarks and
  // runs inline-only.
  bool Valid() const {
    return limit_pages >= 2 && low_pages >= 1 && low_pages < high_pages &&
           high_pages <= limit_pages;
  }

  uint64_t HeadroomFor(uint64_t charged_pages) const {
    return charged_pages >= limit_pages ? 0 : limit_pages - charged_pages;
  }
  // Wake condition: headroom fell below the low watermark.
  bool NeedsWake(uint64_t charged_pages) const {
    return HeadroomFor(charged_pages) < low_pages;
  }
  // Sleep condition: the high-watermark headroom has been restored.
  bool TargetReached(uint64_t charged_pages) const {
    return HeadroomFor(charged_pages) >= high_pages;
  }
  // The occupancy the background reclaimer drives the cgroup down to.
  uint64_t target_charged() const { return limit_pages - high_pages; }

  // Derive watermarks from a limit and a spec. Total: any spec yields a
  // Valid() result for limit_pages >= 2 (ratios are clamped to at most
  // 1024/1024, low to [1, limit-1], high to [low+1, limit]).
  static Watermarks Derive(uint64_t limit_pages, WatermarkSpec spec) {
    Watermarks wm;
    wm.limit_pages = limit_pages;
    if (limit_pages < 2) {
      return wm;  // !Valid(): background reclaim cannot engage
    }
    wm.low_pages = std::clamp<uint64_t>(Scale(limit_pages, spec.low_per_1024),
                                        1, limit_pages - 1);
    wm.high_pages =
        std::clamp<uint64_t>(Scale(limit_pages, spec.high_per_1024),
                             wm.low_pages + 1, limit_pages);
    return wm;
  }

 private:
  // limit * per / 1024 without overflow for any uint64 limit (per <= 1024
  // after clamping, so each term stays below the input).
  static uint64_t Scale(uint64_t limit_pages, uint32_t per_1024) {
    const uint64_t per = std::min<uint64_t>(per_1024, 1024);
    return (limit_pages / 1024) * per + (limit_pages % 1024) * per / 1024;
  }
};

// Derive the watermarks for a cgroup from its current limit and its
// per-cgroup ratio knobs. Pure arithmetic on racy-relaxed config reads:
// re-deriving on every check is what keeps config churn (set_limit_pages /
// SetReclaimWatermarks at runtime) safe — there is no cached state to go
// stale.
inline Watermarks ForCgroup(const MemCgroup& cg) {
  return Watermarks::Derive(
      cg.limit_pages(),
      WatermarkSpec{cg.reclaim_low_per_1024(), cg.reclaim_high_per_1024()});
}

}  // namespace cache_ext::reclaim

#endif  // SRC_RECLAIM_WATERMARKS_H_
