#include "src/reclaim/reclaimer.h"

#include <algorithm>
#include <chrono>

#include "src/fault/fault_injector.h"

namespace cache_ext::reclaim {

const char* LaneHealthName(LaneHealth health) {
  switch (health) {
    case LaneHealth::kIdle:
      return "idle";
    case LaneHealth::kRunning:
      return "running";
    case LaneHealth::kStalled:
      return "stalled";
    case LaneHealth::kDead:
      return "dead";
  }
  return "?";
}

bool CgroupReclaimControl::ShouldWake(uint64_t charged_pages,
                                      const Watermarks& wm) {
  if (wm.TargetReached(charged_pages)) {
    NoteTargetReached();
    return false;
  }
  if (active_.load(std::memory_order_relaxed)) {
    // Mid-run: keep going until the high watermark, even though headroom may
    // already be back above low — that gap is the hysteresis band.
    return true;
  }
  if (!wm.NeedsWake(charged_pages)) {
    return false;  // inside the band with the latch released: stay asleep
  }
  if (!active_.exchange(true, std::memory_order_relaxed)) {
    wakeups_.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

void CgroupReclaimControl::NoteTargetReached() {
  active_.store(false, std::memory_order_relaxed);
  uint8_t running = static_cast<uint8_t>(LaneHealth::kRunning);
  health_.compare_exchange_strong(running,
                                  static_cast<uint8_t>(LaneHealth::kIdle),
                                  std::memory_order_relaxed);
}

TickOutcome CgroupReclaimControl::EnterTick() {
  if (dead_.load(std::memory_order_relaxed)) {
    return TickOutcome::kDead;
  }
  // Chaos: kill the lane for good. The death is latched here, but the
  // health transition (and the watchdog trip) belongs to the allocator
  // side: a daemon does not report its own demise — NoteEmergencyEntry
  // diagnoses it on the first over-limit allocation after the death.
  if (fault::InjectFault(fault::points::kReclaimThreadDeath)) {
    dead_.store(true, std::memory_order_relaxed);
    return TickOutcome::kDead;
  }
  // Chaos: wedge the lane for `magnitude` ticks (a policy stuck in an
  // unbounded loop, a D-state daemon). The tick makes no progress and does
  // NOT advance the heartbeat, which is what lets the watchdog see it.
  uint64_t magnitude = 0;
  if (fault::InjectFault(fault::points::kReclaimStall, &magnitude)) {
    stall_ticks_remaining_.fetch_add(
        magnitude == 0 ? kDefaultStallTicks : magnitude,
        std::memory_order_relaxed);
  }
  uint64_t remaining = stall_ticks_remaining_.load(std::memory_order_relaxed);
  while (remaining > 0) {
    if (stall_ticks_remaining_.compare_exchange_weak(
            remaining, remaining - 1, std::memory_order_relaxed)) {
      stalled_ticks_.fetch_add(1, std::memory_order_relaxed);
      return TickOutcome::kStalled;
    }
  }
  return TickOutcome::kRun;
}

bool CgroupReclaimControl::InjectedUnderReclaim() {
  // Chaos: the daemon gives up early, leaving the cgroup to drift toward
  // (and over) its hard limit — overshoot must stay bounded by the
  // emergency path.
  return fault::InjectFault(fault::points::kReclaimOvershoot);
}

void CgroupReclaimControl::NoteBatch(uint64_t evicted) {
  // Heartbeat means liveness, not success: an alive lane that found every
  // folio pinned still beats, and the watchdog correctly does not trip —
  // detaching or probing it would not make folios evictable.
  heartbeat_.fetch_add(1, std::memory_order_relaxed);
  background_batches_.fetch_add(1, std::memory_order_relaxed);
  background_evicted_.fetch_add(evicted, std::memory_order_relaxed);
  if (!dead_.load(std::memory_order_relaxed)) {
    health_.store(static_cast<uint8_t>(LaneHealth::kRunning),
                  std::memory_order_relaxed);
  }
}

bool CgroupReclaimControl::NoteEmergencyEntry(uint64_t overshoot_pages,
                                              const ReclaimOptions& opts) {
  emergency_entries_.fetch_add(1, std::memory_order_relaxed);
  uint64_t prev = max_overshoot_pages_.load(std::memory_order_relaxed);
  while (overshoot_pages > prev &&
         !max_overshoot_pages_.compare_exchange_weak(
             prev, overshoot_pages, std::memory_order_relaxed)) {
  }

  const bool is_dead = dead_.load(std::memory_order_relaxed);
  if (!is_dead) {
    const uint64_t hb = heartbeat_.load(std::memory_order_relaxed);
    if (hb != heartbeat_seen_.load(std::memory_order_relaxed)) {
      // The lane moved since we last looked: healthy (or recovered).
      heartbeat_seen_.store(hb, std::memory_order_relaxed);
      heartbeat_misses_.store(0, std::memory_order_relaxed);
      uint8_t stalled = static_cast<uint8_t>(LaneHealth::kStalled);
      health_.compare_exchange_strong(
          stalled, static_cast<uint8_t>(LaneHealth::kRunning),
          std::memory_order_relaxed);
      return true;
    }
    if (health() != LaneHealth::kStalled) {
      const uint32_t misses =
          heartbeat_misses_.fetch_add(1, std::memory_order_relaxed) + 1;
      if (misses < opts.watchdog_misses) {
        return true;  // give the lane another chance before judging it
      }
      // Watchdog trip: heartbeat flat across `watchdog_misses` emergency
      // entries while the cgroup is over its hard limit.
      health_.store(static_cast<uint8_t>(LaneHealth::kStalled),
                    std::memory_order_relaxed);
      watchdog_trips_.fetch_add(1, std::memory_order_relaxed);
      probe_backoff_.store(opts.probe_backoff_initial,
                           std::memory_order_relaxed);
      probe_countdown_.store(opts.probe_backoff_initial,
                             std::memory_order_relaxed);
      return false;
    }
  } else if (health() != LaneHealth::kDead) {
    // First emergency entry to observe the death: trip once, then back off.
    health_.store(static_cast<uint8_t>(LaneHealth::kDead),
                  std::memory_order_relaxed);
    watchdog_trips_.fetch_add(1, std::memory_order_relaxed);
    probe_backoff_.store(opts.probe_backoff_initial, std::memory_order_relaxed);
    probe_countdown_.store(opts.probe_backoff_initial,
                           std::memory_order_relaxed);
    return false;
  }

  // Stalled or dead: exponential-backoff probing so a wedged daemon does
  // not add a futile kick to every over-limit allocation.
  uint32_t countdown = probe_countdown_.load(std::memory_order_relaxed);
  while (countdown > 0) {
    if (probe_countdown_.compare_exchange_weak(countdown, countdown - 1,
                                               std::memory_order_relaxed)) {
      return false;  // still backing off
    }
  }
  const uint32_t backoff =
      std::min(probe_backoff_.load(std::memory_order_relaxed) * 2,
               std::max<uint32_t>(opts.probe_backoff_cap, 1));
  probe_backoff_.store(backoff, std::memory_order_relaxed);
  probe_countdown_.store(backoff, std::memory_order_relaxed);
  // Probe: a stall may have healed, so one kick is worth it; a dead lane
  // never comes back — skip even the probe.
  return !is_dead;
}

void CgroupReclaimControl::NoteDirect(uint64_t ns, uint64_t zero_progress_ns,
                                      uint64_t evicted) {
  direct_entries_.fetch_add(1, std::memory_order_relaxed);
  direct_evicted_.fetch_add(evicted, std::memory_order_relaxed);
  direct_reclaim_ns_.fetch_add(ns, std::memory_order_relaxed);
  // PSI mapping: `some` is time at least one task stalled on reclaim — in
  // this model, exactly the lane time the allocator spent inside direct
  // reclaim. `full` is the unproductive subset (rounds that evicted
  // nothing): everyone stalled AND nothing moved.
  psi_some_ns_.fetch_add(ns, std::memory_order_relaxed);
  psi_full_ns_.fetch_add(zero_progress_ns, std::memory_order_relaxed);
}

bool CgroupReclaimControl::NoteExtRound(bool ext_made_progress,
                                        bool fallback_made_progress,
                                        uint32_t limit) {
  if (ext_made_progress) {
    ext_failure_streak_.store(0, std::memory_order_relaxed);
    return false;
  }
  if (!fallback_made_progress) {
    // Nothing evictable at all (everything pinned, cache empty): not the
    // ext policy's fault — detaching it would change nothing. Streak holds.
    return false;
  }
  ext_reclaim_failures_.fetch_add(1, std::memory_order_relaxed);
  const uint32_t streak =
      ext_failure_streak_.fetch_add(1, std::memory_order_relaxed) + 1;
  return limit > 0 && streak == limit;
}

ReclaimCounterSnapshot CgroupReclaimControl::Snapshot() const {
  ReclaimCounterSnapshot s;
  s.wakeups = Load(wakeups_);
  s.background_batches = Load(background_batches_);
  s.background_evicted = Load(background_evicted_);
  s.background_reclaim_ns = Load(background_reclaim_ns_);
  s.direct_entries = Load(direct_entries_);
  s.direct_evicted = Load(direct_evicted_);
  s.direct_reclaim_ns = Load(direct_reclaim_ns_);
  s.emergency_entries = Load(emergency_entries_);
  s.watchdog_trips = Load(watchdog_trips_);
  s.stalled_ticks = Load(stalled_ticks_);
  s.max_overshoot_pages = Load(max_overshoot_pages_);
  s.ext_reclaim_failures = Load(ext_reclaim_failures_);
  s.psi_some_ns = Load(psi_some_ns_);
  s.psi_full_ns = Load(psi_full_ns_);
  s.health = health();
  return s;
}

ReclaimerPool::ReclaimerPool(const ReclaimOptions& options, TickFn tick)
    : options_(options), tick_(std::move(tick)) {
  const uint32_t nr = std::max<uint32_t>(options_.nr_threads, 1);
  shards_.reserve(nr);
  for (uint32_t i = 0; i < nr; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  for (auto& shard : shards_) {
    shard->thread = std::thread(&ReclaimerPool::ThreadMain, this, shard.get());
  }
}

ReclaimerPool::~ReclaimerPool() { Stop(); }

void ReclaimerPool::Register(void* token) {
  Shard& shard =
      *shards_[next_shard_.fetch_add(1, std::memory_order_relaxed) %
               shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.tokens.push_back(token);
}

void ReclaimerPool::Kick(void* token) {
  // Wake every shard that owns the token (round-robin assignment means at
  // most one does; scanning is cheap at these shard counts).
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      bool owns = false;
      for (void* t : shard->tokens) {
        if (t == token) {
          owns = true;
          break;
        }
      }
      if (!owns) {
        continue;
      }
      shard->kicked = true;
    }
    shard->cv.notify_one();
    return;
  }
}

void ReclaimerPool::Stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->kicked = true;
    }
    shard->cv.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) {
      shard->thread.join();
    }
  }
}

void ReclaimerPool::ThreadMain(Shard* shard) {
  const auto poll = std::chrono::microseconds(
      std::max<uint32_t>(options_.thread_poll_us, 1));
  while (!stopping_.load(std::memory_order_acquire)) {
    std::vector<void*> tokens;
    {
      std::unique_lock<std::mutex> lock(shard->mu);
      shard->cv.wait_for(lock, poll, [&] {
        return shard->kicked || stopping_.load(std::memory_order_acquire);
      });
      shard->kicked = false;
      tokens = shard->tokens;  // copy: ticks run without the shard lock
    }
    if (stopping_.load(std::memory_order_acquire)) {
      break;
    }
    for (void* token : tokens) {
      tick_(token);
    }
  }
}

}  // namespace cache_ext::reclaim
